//! End-to-end engine tests: selective symbolic execution and all six
//! consistency models exercised against small assembled guests.

use s2e_core::analyzers::PathKiller;
use s2e_core::selectors::{make_mem_symbolic, make_reg_symbolic};
use s2e_core::{
    Annotation, BugKind, CodeRanges, ConsistencyModel, Engine, EngineConfig, StopReason,
    TerminationReason,
};
use s2e_expr::{eval, Width};
use s2e_vm::asm::{Assembler, Program};
use s2e_vm::isa::{reg, vector, Instr, Opcode, S2Op};
use s2e_vm::machine::Machine;
use s2e_vm::value::Value;

/// Syscall numbers implemented by the test kernel.
const SYS_RET42: u32 = 1;
const SYS_BRANCHY: u32 = 2;

/// A miniature kernel: dispatches on the syscall number in KR.
///
/// - `SYS_RET42`: returns 42 in r0.
/// - `SYS_BRANCHY`: branches on r0 (`r0 < 10 → r0=1 else r0=0`) — used to
///   probe environment-branch policies.
fn test_kernel() -> Program {
    let mut a = Assembler::new(0x1100);
    a.label("handler");
    a.movi(reg::R10, SYS_RET42);
    a.beq(reg::KR, reg::R10, "ret42");
    a.movi(reg::R10, SYS_BRANCHY);
    a.beq(reg::KR, reg::R10, "branchy");
    a.iret();
    a.label("ret42");
    a.movi(reg::R0, 42);
    a.iret();
    a.label("branchy");
    a.movi(reg::R10, 10);
    a.bltu(reg::R0, reg::R10, "small");
    a.movi(reg::R0, 0);
    a.iret();
    a.label("small");
    a.movi(reg::R0, 1);
    a.iret();
    a.finish()
}

/// Builds a machine with the test kernel installed and a user program.
fn machine_with(build: impl FnOnce(&mut Assembler)) -> Machine {
    let kernel = test_kernel();
    let mut a = Assembler::new(0x4000);
    build(&mut a);
    let prog = a.finish();
    let mut m = Machine::new();
    m.load_aux(&kernel);
    m.mem.write_u32(vector::SYSCALL, kernel.symbol("handler")).unwrap();
    m.load(&prog);
    m
}

fn engine_with(model: ConsistencyModel, build: impl FnOnce(&mut Assembler)) -> Engine {
    let m = machine_with(build);
    let mut e = Engine::new(m, EngineConfig::with_model(model));
    e.set_retain_terminated(true);
    e
}

fn symbolize_r0(e: &mut Engine, name: &str) -> s2e_expr::ExprRef {
    let id = e.sole_state().unwrap();
    let b = e.builder_arc();
    make_reg_symbolic(e.state_mut(id).unwrap(), &b, reg::R0, name)
}

fn exit_codes(e: &Engine) -> Vec<u32> {
    let mut codes: Vec<u32> = e
        .terminated()
        .iter()
        .filter_map(|(_, r)| match r {
            TerminationReason::Halted(c) => Some(*c),
            _ => None,
        })
        .collect();
    codes.sort();
    codes
}

#[test]
fn concrete_program_single_path() {
    let mut e = engine_with(ConsistencyModel::ScSe, |a| {
        a.movi(reg::R0, 0);
        a.movi(reg::R1, 100);
        a.label("loop");
        a.addi(reg::R0, reg::R0, 1);
        a.bltu(reg::R0, reg::R1, "loop");
        a.halt_code(7);
    });
    let summary = e.run(100_000);
    assert_eq!(summary.stop, StopReason::Exhausted);
    assert_eq!(exit_codes(&e), vec![7]);
    assert_eq!(e.stats().forks, 0);
    assert!(e.stats().instrs_concrete > 200);
    assert_eq!(e.stats().instrs_symbolic, 0);
}

#[test]
fn symbolic_branch_forks_and_constrains() {
    let mut e = engine_with(ConsistencyModel::ScSe, |a| {
        a.movi(reg::R1, 5);
        a.bltu(reg::R0, reg::R1, "small");
        a.halt_code(1); // r0 >= 5
        a.label("small");
        a.halt_code(2); // r0 < 5
    });
    let x = symbolize_r0(&mut e, "x");
    e.run(10_000);
    assert_eq!(exit_codes(&e), vec![1, 2]);
    assert_eq!(e.stats().forks, 1);

    // Each retained path's constraints must pin x to the right side.
    let paths: Vec<_> = e.terminated_states().to_vec();
    for st in &paths {
        let code = match st.status.as_ref().unwrap() {
            TerminationReason::Halted(c) => *c,
            other => panic!("unexpected {other:?}"),
        };
        let model = match e.solver_mut().check(&st.constraints) {
            s2e_solver::SatResult::Sat(m) => m,
            other => panic!("path constraints unsat: {other:?}"),
        };
        let xv = eval(&x, &model).unwrap();
        if code == 2 {
            assert!(xv < 5, "x={xv} on the <5 path");
        } else {
            assert!(xv >= 5, "x={xv} on the >=5 path");
        }
    }
}

#[test]
fn nested_branches_make_four_paths() {
    let mut e = engine_with(ConsistencyModel::ScSe, |a| {
        a.movi(reg::R2, 10);
        a.movi(reg::R3, 20);
        a.movi(reg::R4, 0);
        a.bltu(reg::R0, reg::R2, "b1");
        a.ori(reg::R4, reg::R4, 1);
        a.label("b1");
        a.bltu(reg::R1, reg::R3, "b2");
        a.ori(reg::R4, reg::R4, 2);
        a.label("b2");
        a.mov(reg::R0, reg::R4);
        a.s2e(S2Op::KillPath); // exit with status r0
    });
    {
        let id = e.sole_state().unwrap();
        let b = e.builder_arc();
        make_reg_symbolic(e.state_mut(id).unwrap(), &b, reg::R0, "x");
        make_reg_symbolic(e.state_mut(id).unwrap(), &b, reg::R1, "y");
    }
    e.run(10_000);
    let mut statuses: Vec<u32> = e
        .terminated()
        .iter()
        .filter_map(|(_, r)| match r {
            TerminationReason::Killed(c) => Some(*c),
            _ => None,
        })
        .collect();
    statuses.sort();
    assert_eq!(statuses, vec![0, 1, 2, 3]);
    assert_eq!(e.stats().forks, 3);
}

#[test]
fn disable_forking_follows_single_path() {
    let mut e = engine_with(ConsistencyModel::ScSe, |a| {
        a.s2e(S2Op::DisableForking);
        a.movi(reg::R1, 5);
        a.bltu(reg::R0, reg::R1, "small");
        a.halt_code(1);
        a.label("small");
        a.halt_code(2);
    });
    symbolize_r0(&mut e, "x");
    e.run(10_000);
    assert_eq!(e.terminated().len(), 1);
    assert_eq!(e.stats().forks, 0);
    // The taken side was chosen under a soft constraint.
    let st = &e.terminated_states()[0];
    assert_eq!(st.soft_constraint_count(), 1);
}

#[test]
fn code_ranges_corset_forking() {
    // The branch lives at 0x4008..; exclude the program region.
    let m = machine_with(|a| {
        a.movi(reg::R1, 5);
        a.bltu(reg::R0, reg::R1, "small");
        a.halt_code(1);
        a.label("small");
        a.halt_code(2);
    });
    let mut config = EngineConfig::with_model(ConsistencyModel::ScSe);
    config.code_ranges = CodeRanges::all().include(0x9000..0xa000); // elsewhere
    let mut e = Engine::new(m, config);
    e.set_retain_terminated(true);
    symbolize_r0(&mut e, "x");
    e.run(10_000);
    assert_eq!(e.terminated().len(), 1);
    assert_eq!(e.stats().forks, 0);
}

#[test]
fn sc_ue_concretizes_env_args_hard() {
    // Unit passes symbolic r0 to SYS_BRANCHY; the kernel branches on it.
    let mut e = engine_with(ConsistencyModel::ScUe, |a| {
        a.syscall(SYS_BRANCHY);
        a.halt_code(9);
    });
    symbolize_r0(&mut e, "x");
    e.run(10_000);
    assert_eq!(exit_codes(&e), vec![9]);
    // The argument concretization must be a HARD constraint (no soft).
    let st = &e.terminated_states()[0];
    assert_eq!(st.soft_constraint_count(), 0);
    assert!(!st.constraints.is_empty());
}

#[test]
fn lc_aborts_on_env_branch_on_symbolic() {
    let mut e = engine_with(ConsistencyModel::Lc, |a| {
        a.syscall(SYS_BRANCHY);
        a.halt_code(9);
    });
    symbolize_r0(&mut e, "x");
    e.run(10_000);
    assert_eq!(e.terminated().len(), 1);
    assert!(matches!(
        e.terminated()[0].1,
        TerminationReason::EnvInconsistency
    ));
}

#[test]
fn sc_se_forks_inside_environment() {
    let mut e = engine_with(ConsistencyModel::ScSe, |a| {
        a.syscall(SYS_BRANCHY);
        a.halt_code(9);
    });
    symbolize_r0(&mut e, "x");
    e.run(10_000);
    // The kernel's branch on symbolic r0 forks: two complete paths.
    assert_eq!(exit_codes(&e), vec![9, 9]);
    assert_eq!(e.stats().forks, 1);
}

#[test]
fn rc_oc_unconstrains_env_returns() {
    let guest = |a: &mut Assembler| {
        a.syscall(SYS_RET42);
        a.movi(reg::R1, 42);
        a.beq(reg::R0, reg::R1, "was42");
        a.halt_code(1); // impossible in a strict world
        a.label("was42");
        a.halt_code(2);
    };
    // Under LC with no annotation the return stays concrete 42: one path.
    let mut lc = engine_with(ConsistencyModel::Lc, guest);
    lc.run(10_000);
    assert_eq!(exit_codes(&lc), vec![2]);

    // Under RC-OC the return is unconstrained: both paths, including the
    // locally-infeasible one.
    let mut oc = engine_with(ConsistencyModel::RcOc, guest);
    oc.run(10_000);
    assert_eq!(exit_codes(&oc), vec![1, 2]);
}

#[test]
fn lc_annotation_symbolifies_within_contract() {
    let m = machine_with(|a| {
        a.syscall(SYS_RET42);
        a.movi(reg::R1, 42);
        a.beq(reg::R0, reg::R1, "ok");
        // Contract says ret ∈ {0, 42}: the failure path must also exist.
        a.halt_code(1);
        a.label("ok");
        a.halt_code(2);
    });
    let mut config = EngineConfig::with_model(ConsistencyModel::Lc);
    config.annotations.push(Annotation::on_return(SYS_RET42, |state, ctx| {
        // ret ∈ {0, 42}: λ = ite(c, 42, 0)
        let b = ctx.builder;
        let c = b.var("ret42_ok", Width::BOOL);
        let v = b.ite(
            c,
            b.constant(42, Width::W32),
            b.constant(0, Width::W32),
        );
        state.machine.cpu.set_reg(reg::R0, Value::Symbolic(v));
    }));
    let mut e = Engine::new(m, config);
    e.set_retain_terminated(true);
    e.run(10_000);
    assert_eq!(exit_codes(&e), vec![1, 2]);
}

#[test]
fn rc_cc_explores_locally_infeasible_paths() {
    let guest = |a: &mut Assembler| {
        a.movi(reg::R1, 5);
        a.movi(reg::R2, 100);
        a.bltu(reg::R0, reg::R1, "first_lt");
        a.halt_code(1);
        a.label("first_lt");
        // Given r0 < 5, r0 > 100 is infeasible.
        a.bltu(reg::R2, reg::R0, "impossible");
        a.halt_code(2);
        a.label("impossible");
        a.halt_code(3);
    };
    let mut se = engine_with(ConsistencyModel::ScSe, guest);
    symbolize_r0(&mut se, "x");
    se.run(10_000);
    assert_eq!(exit_codes(&se), vec![1, 2]); // 3 pruned as infeasible

    let mut cc = engine_with(ConsistencyModel::RcCc, guest);
    symbolize_r0(&mut cc, "x");
    cc.run(10_000);
    let codes = exit_codes(&cc);
    assert!(codes.contains(&3), "RC-CC must reach the infeasible block: {codes:?}");
}

#[test]
fn max_states_curtails_forking() {
    let m = machine_with(|a| {
        // 8 independent symbolic branches → up to 256 paths.
        for k in 0..8 {
            a.movi(reg::R2, k);
            let lbl = format!("b{k}");
            a.beq(reg::R1, reg::R2, &lbl);
            a.label(&lbl);
        }
        a.halt_code(0);
    });
    let mut config = EngineConfig::with_model(ConsistencyModel::ScSe);
    config.max_states = 4;
    let mut e = Engine::new(m, config);
    let id = e.sole_state().unwrap();
    let b = e.builder_arc();
    make_reg_symbolic(e.state_mut(id).unwrap(), &b, reg::R1, "x");
    e.run(100_000);
    assert!(e.stats().max_live_states <= 4, "{}", e.stats().max_live_states);
    // Completed paths may exceed the live cap (slots recycle), but far
    // fewer than the unconstrained 256.
    assert!(e.terminated().len() < 256);
}

#[test]
fn fuel_exhaustion_terminates_path() {
    let m = machine_with(|a| {
        a.label("forever");
        a.jmp("forever");
    });
    let config = EngineConfig {
        max_instrs_per_path: 100,
        ..EngineConfig::default()
    };
    let mut e = Engine::new(m, config);
    e.run(10_000);
    assert!(matches!(
        e.terminated()[0].1,
        TerminationReason::FuelExhausted
    ));
}

#[test]
fn symbolic_pointer_load_reads_table() {
    // table[4] = {11,22,33,44}; load table[x & 3] and branch on result.
    let mut e = engine_with(ConsistencyModel::ScSe, |a| {
        a.movi_label(reg::R5, "table");
        a.andi(reg::R0, reg::R0, 3);
        a.muli(reg::R0, reg::R0, 4);
        a.add(reg::R5, reg::R5, reg::R0);
        a.ld32(reg::R6, reg::R5, 0);
        a.movi(reg::R7, 33);
        a.beq(reg::R6, reg::R7, "got33");
        a.halt_code(1);
        a.label("got33");
        a.halt_code(2);
        a.align(8);
        a.label("table");
        a.word(11);
        a.word(22);
        a.word(33);
        a.word(44);
    });
    let x = symbolize_r0(&mut e, "x");
    e.run(100_000);
    let codes = exit_codes(&e);
    assert!(codes.contains(&2), "index 2 must reach the 33 path: {codes:?}");
    assert!(codes.contains(&1), "other indices reach the other path: {codes:?}");
    assert!(e.stats().symbolic_ptr_accesses >= 1);

    // On the 33-path, x & 3 must equal 2.
    let paths: Vec<_> = e.terminated_states().to_vec();
    for st in &paths {
        if st.status == Some(TerminationReason::Halted(2)) {
            let model = match e.solver_mut().check(&st.constraints) {
                s2e_solver::SatResult::Sat(m) => m,
                other => panic!("unsat 33-path: {other:?}"),
            };
            let xv = eval(&x, &model).unwrap();
            assert_eq!(xv & 3, 2, "x={xv:#x}");
        }
    }
}

#[test]
fn bug_inputs_reproduce_crash() {
    // Crash iff x == 1234: the engine must synthesize that input.
    let mut e = engine_with(ConsistencyModel::ScSe, |a| {
        a.movi(reg::R1, 1234);
        a.bne(reg::R0, reg::R1, "safe");
        a.movi(reg::R2, 0);
        a.st32(reg::R2, 4, reg::R3); // null write
        a.label("safe");
        a.halt_code(0);
    });
    e.add_plugin(Box::new(s2e_core::analyzers::BugCheck::new()));
    let x = symbolize_r0(&mut e, "x");
    e.run(10_000);
    let bugs = e.bugs();
    assert_eq!(bugs.len(), 1);
    assert_eq!(bugs[0].kind, BugKind::NullDereference);
    let inputs = bugs[0].inputs.as_ref().expect("solver model for the bug");
    assert_eq!(eval(&x, inputs).unwrap(), 1234);
}

#[test]
fn pathkiller_breaks_polling_loops() {
    let m = machine_with(|a| {
        a.label("poll");
        a.jmp("poll");
    });
    let mut e = Engine::new(m, EngineConfig::default());
    e.add_plugin(Box::new(PathKiller::new(5)));
    e.run(10_000);
    assert!(matches!(e.terminated()[0].1, TerminationReason::Killed(_)));
    // Killed long before fuel would run out.
    assert!(e.stats().blocks_executed < 100);
}

#[test]
fn kill_all_except_keeps_one() {
    let mut e = engine_with(ConsistencyModel::ScSe, |a| {
        a.movi(reg::R1, 5);
        a.bltu(reg::R0, reg::R1, "small");
        a.label("spin1");
        a.jmp("spin1");
        a.label("small");
        a.label("spin2");
        a.jmp("spin2");
    });
    symbolize_r0(&mut e, "x");
    for _ in 0..50 {
        e.step();
        if e.live_count() >= 2 {
            break;
        }
    }
    assert!(e.live_count() >= 2);
    let keep = e.live_states().next().unwrap().id;
    e.kill_all_except(keep);
    assert_eq!(e.live_count(), 1);
    assert_eq!(e.sole_state(), Some(keep));
}

#[test]
fn interrupts_delivered_under_engine() {
    use s2e_vm::device::ports;
    let mut e = engine_with(ConsistencyModel::Lc, |a| {
        a.movi_label(reg::R1, "tick");
        a.movi(reg::R2, vector::TIMER);
        a.st32(reg::R2, 0, reg::R1);
        a.movi(reg::R3, ports::TIMER_LOAD as u32);
        a.movi(reg::R4, 32);
        a.outp(reg::R3, reg::R4);
        a.movi(reg::R3, ports::TIMER_CTRL as u32);
        a.movi(reg::R4, 1);
        a.outp(reg::R3, reg::R4);
        a.movi(reg::R5, 0);
        a.sti();
        a.label("spin");
        a.movi(reg::R6, 2);
        a.bne(reg::R5, reg::R6, "spin");
        a.halt_code(0);
        a.label("tick");
        a.addi(reg::R5, reg::R5, 1);
        a.iret();
    });
    e.run(100_000);
    assert_eq!(exit_codes(&e), vec![0]);
    assert!(e.stats().interrupts_delivered >= 2);
}

#[test]
fn symbolic_memory_buffer_drives_forks() {
    // Branch on a symbolic byte loaded from memory.
    let mut e = engine_with(ConsistencyModel::ScSe, |a| {
        a.movi(reg::R1, 0x8000);
        a.ld8(reg::R2, reg::R1, 0);
        a.movi(reg::R3, b'A' as u32);
        a.beq(reg::R2, reg::R3, "is_a");
        a.halt_code(1);
        a.label("is_a");
        a.halt_code(2);
    });
    let id = e.sole_state().unwrap();
    let b = e.builder_arc();
    make_mem_symbolic(e.state_mut(id).unwrap(), &b, 0x8000, 1, "buf");
    e.run(10_000);
    assert_eq!(exit_codes(&e), vec![1, 2]);
}

#[test]
fn infeasible_second_branch_pruned() {
    // if x < 5 and then x == 7 → second branch infeasible on the <5 path.
    let mut e = engine_with(ConsistencyModel::ScSe, |a| {
        a.movi(reg::R1, 5);
        a.bgeu(reg::R0, reg::R1, "big");
        a.movi(reg::R2, 7);
        a.beq(reg::R0, reg::R2, "seven");
        a.halt_code(1);
        a.label("seven");
        a.halt_code(2); // unreachable: x<5 && x==7
        a.label("big");
        a.halt_code(3);
    });
    symbolize_r0(&mut e, "x");
    e.run(10_000);
    assert_eq!(exit_codes(&e), vec![1, 3]);
    assert_eq!(e.stats().forks, 1);
}

#[test]
fn stats_and_memory_watermark_populate() {
    let mut e = engine_with(ConsistencyModel::ScSe, |a| {
        a.movi(reg::R1, 5);
        a.bltu(reg::R0, reg::R1, "x");
        a.halt_code(1);
        a.label("x");
        a.halt_code(2);
    });
    symbolize_r0(&mut e, "x");
    e.run(10_000);
    let st = e.stats();
    assert_eq!(st.states_created, 2);
    assert_eq!(st.states_terminated, 2);
    assert!(st.blocks_executed >= 2);
    assert!(st.memory_watermark_bytes > 0);
    assert!(st.total_instrs() > 0);
    assert!(e.solver_stats().queries > 0);
}

#[test]
fn s2e_opcodes_log_and_markers() {
    let mut e = engine_with(ConsistencyModel::Lc, |a| {
        // Log a message through S2OUT.
        a.movi_label(reg::R0, "msg");
        a.s2e(S2Op::LogMessage);
        // EnterEnv/LeaveEnv markers toggle the unit/environment boundary.
        a.s2e(S2Op::EnterEnv);
        a.s2e(S2Op::LeaveEnv);
        a.halt_code(0);
        a.label("msg");
        a.asciiz("hello from the guest");
    });
    e.run(10_000);
    assert!(e.log().iter().any(|m| m == "hello from the guest"));
    assert_eq!(exit_codes(&e), vec![0]);
}

#[test]
fn enter_env_marker_suppresses_forking() {
    // A symbolic branch between EnterEnv/LeaveEnv is environment code:
    // under LC it aborts the path instead of forking.
    let mut e = engine_with(ConsistencyModel::Lc, |a| {
        a.s2e(S2Op::EnterEnv);
        a.movi(reg::R1, 5);
        a.bltu(reg::R0, reg::R1, "x");
        a.label("x");
        a.s2e(S2Op::LeaveEnv);
        a.halt_code(0);
    });
    symbolize_r0(&mut e, "x");
    e.run(10_000);
    assert_eq!(e.terminated().len(), 1);
    assert!(matches!(
        e.terminated()[0].1,
        TerminationReason::EnvInconsistency
    ));
}

#[test]
fn symbolic_mem_opcode_injects_bytes() {
    let mut e = engine_with(ConsistencyModel::ScSe, |a| {
        a.movi(reg::R0, 0x8000);
        a.movi(reg::R1, 2);
        a.s2e(S2Op::SymbolicMem);
        a.movi(reg::R2, 0x8000);
        a.ld8(reg::R3, reg::R2, 0);
        a.movi(reg::R4, 7);
        a.beq(reg::R3, reg::R4, "seven");
        a.halt_code(1);
        a.label("seven");
        a.halt_code(2);
    });
    e.run(10_000);
    assert_eq!(exit_codes(&e), vec![1, 2]);
}

#[test]
fn symbolic_assert_reports_when_falsifiable() {
    let mut e = engine_with(ConsistencyModel::ScSe, |a| {
        // assert(x != 3): falsifiable for symbolic x.
        a.movi(reg::R1, 3);
        a.sub(reg::R0, reg::R0, reg::R1);
        a.s2e(S2Op::Assert);
        a.halt_code(0);
    });
    symbolize_r0(&mut e, "x");
    e.run(10_000);
    assert_eq!(e.bugs().len(), 1);
    assert_eq!(e.bugs()[0].kind, BugKind::AssertionFailure);
    // The reproducing input pins x to 3.
    let inputs = e.bugs()[0].inputs.as_ref().unwrap();
    let (_, v) = inputs.iter().next().unwrap();
    assert_eq!(v, 3);
}

#[test]
fn symbolic_assert_passes_when_provable() {
    let mut e = engine_with(ConsistencyModel::ScSe, |a| {
        // assert(x | 1 != 0): always true.
        a.ori(reg::R0, reg::R0, 1);
        a.s2e(S2Op::Assert);
        a.halt_code(0);
    });
    symbolize_r0(&mut e, "x");
    e.run(10_000);
    assert!(e.bugs().is_empty());
    assert_eq!(exit_codes(&e), vec![0]);
}

#[test]
fn rc_cc_forces_untaken_concrete_edges() {
    // A concrete branch whose not-taken side is never reached normally:
    // RC-CC's edge forcing explores it anyway (dynamic disassembly).
    let mut e = engine_with(ConsistencyModel::RcCc, |a| {
        a.movi(reg::R0, 1);
        a.movi(reg::R1, 1);
        a.beq(reg::R0, reg::R1, "taken"); // always taken concretely
        a.halt_code(9); // dead code under any consistent model
        a.label("taken");
        a.halt_code(0);
    });
    e.run(10_000);
    let codes = exit_codes(&e);
    assert!(codes.contains(&0));
    assert!(
        codes.contains(&9),
        "RC-CC must force the dead edge: {codes:?}"
    );
}

#[test]
fn smc_overwrite_of_chained_successor_retranslates() {
    // Iteration 1 chains loop→body, then overwrites body's first
    // instruction (movi r4,10 → movi r4,90). Iteration 2 must run the
    // patched code: the invalidation has to sever the chain links and
    // force a retranslation even though the run is mid-chain.
    let patched = Instr::new(Opcode::MovI, 4, 0, 0, 90).encode();
    let lo = u32::from_le_bytes(patched[0..4].try_into().unwrap());
    let hi = u32::from_le_bytes(patched[4..8].try_into().unwrap());
    let mut e = engine_with(ConsistencyModel::ScSe, |a| {
        a.movi(reg::R5, 0);
        a.movi(reg::R6, 0);
        a.movi_label(reg::R8, "body");
        a.movi(reg::R9, lo);
        a.movi(reg::R10, hi);
        a.label("loop");
        a.jmp("body");
        a.label("body");
        a.movi(reg::R4, 10);
        a.add(reg::R5, reg::R5, reg::R4);
        a.addi(reg::R6, reg::R6, 1);
        a.movi(reg::R7, 2);
        a.bltu(reg::R6, reg::R7, "patch");
        a.mov(reg::R0, reg::R5);
        a.s2e(S2Op::KillPath);
        a.label("patch");
        a.st32(reg::R8, 0, reg::R9);
        a.st32(reg::R8, 4, reg::R10);
        a.jmp("loop");
    });
    e.run(10_000);
    // 10 (original body) + 90 (patched body) — a stale chained block
    // would yield 20.
    assert!(
        matches!(e.terminated()[0].1, TerminationReason::Killed(100)),
        "{:?}",
        e.terminated()[0].1
    );
    let dbt = e.dbt_stats();
    assert!(dbt.invalidations >= 1, "{dbt:?}");
    assert!(dbt.chains_formed >= 1, "{dbt:?}");
    assert!(dbt.chain_entries >= 1, "{dbt:?}");
    assert!(dbt.unlinks >= 1, "{dbt:?}");
}

#[test]
fn page_spanning_smc_write_invalidates_chained_block() {
    // The victim block sits exactly on a 4 KiB page boundary and the
    // 4-byte store starts 2 bytes before it: invalidate_write must
    // cover the whole [addr, addr+width) span, not just addr's page,
    // to discard (and unlink) the chained victim on the next page.
    let v = u32::from_le_bytes([0, 0, Opcode::Nop as u8, 0]);
    let mut e = engine_with(ConsistencyModel::ScSe, |a| {
        a.movi(reg::R4, 77);
        a.movi(reg::R5, 0);
        a.movi(reg::R6, 0);
        a.movi_label(reg::R8, "victim");
        a.subi(reg::R3, reg::R8, 2);
        a.movi(reg::R9, v);
        a.label("loop");
        a.jmp("victim");
        a.align(4096);
        a.label("victim");
        a.movi(reg::R4, 10);
        a.add(reg::R5, reg::R5, reg::R4);
        a.addi(reg::R6, reg::R6, 1);
        a.movi(reg::R7, 2);
        a.bltu(reg::R6, reg::R7, "patch");
        a.mov(reg::R0, reg::R5);
        a.s2e(S2Op::KillPath);
        a.label("patch");
        a.st32(reg::R3, 0, reg::R9); // spans the page boundary
        a.movi(reg::R4, 77);
        a.jmp("loop");
    });
    e.run(10_000);
    // Iter 1: movi r4,10 → +10. Patch turns that movi into a nop, so
    // iter 2 adds the r4=77 set by the patch block: 87 total. A stale
    // victim block would yield 20.
    assert!(
        matches!(e.terminated()[0].1, TerminationReason::Killed(87)),
        "{:?}",
        e.terminated()[0].1
    );
    let dbt = e.dbt_stats();
    assert!(dbt.invalidations >= 1, "{dbt:?}");
    assert!(dbt.unlinks >= 1, "{dbt:?}");
}

#[test]
fn virtual_time_slows_in_symbolic_mode() {
    // Two identical loops, one on concrete data, one symbolic: the
    // symbolic state's virtual clock advances more slowly (§5).
    let build = |a: &mut Assembler| {
        a.movi(reg::R1, 0);
        a.movi(reg::R2, 50);
        a.label("loop");
        a.add(reg::R0, reg::R0, reg::R0); // touches r0 (maybe symbolic)
        a.addi(reg::R1, reg::R1, 1);
        a.bltu(reg::R1, reg::R2, "loop");
        a.halt_code(0);
    };
    let mut conc = engine_with(ConsistencyModel::ScSe, build);
    conc.set_retain_terminated(true);
    conc.run(10_000);
    let vt_concrete = conc.terminated_states()[0].machine.vtime;

    let mut sym = engine_with(ConsistencyModel::ScSe, build);
    sym.set_retain_terminated(true);
    symbolize_r0(&mut sym, "x");
    sym.run(10_000);
    let vt_symbolic = sym.terminated_states()[0].machine.vtime;

    assert!(
        vt_symbolic < vt_concrete,
        "symbolic vtime {vt_symbolic} should lag concrete {vt_concrete}"
    );
}
