//! The span taxonomy: where a worker's time goes.

use std::time::Duration;

/// The phases of Fig. 9, plus the two the parallel explorer adds.
///
/// `Concrete` and `Symbolic` classify whole translation blocks by
/// whether any instruction in them dispatched to the embedded symbolic
/// executor; `Solve` is carved out of them using the solver's own
/// per-query clock, and `Translate` is the nested span around the block
/// cache. `Fork` covers state copy-on-write plus fork plugin dispatch;
/// `Migrate` is work-stealing scheduler interaction (export, steal,
/// completion detection); `Idle` is time parked on the scheduler's
/// condition variable waiting for work.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Phase {
    /// Decoding guest code into translation blocks (cache misses).
    Translate,
    /// Executing blocks in which every instruction ran concretely.
    Concrete,
    /// Executing blocks in which at least one instruction touched
    /// symbolic data.
    Symbolic,
    /// Inside the constraint solver (attributed from `SolverStats`'s
    /// per-query clock, excluded from the enclosing block span).
    Solve,
    /// Forking: state copy-on-write, constraint push, fork plugins.
    Fork,
    /// Work-stealing migration: exporting surplus states, stealing,
    /// completion detection.
    Migrate,
    /// Parked waiting for work (excluded from busy time).
    Idle,
    /// Rehydrating a compact state: deterministic re-execution from its
    /// checkpoint with journaled nondeterminism substituted (§13).
    Replay,
}

impl Phase {
    /// Number of phases.
    pub const COUNT: usize = 8;

    /// Every phase, in report order.
    pub const ALL: [Phase; Phase::COUNT] = [
        Phase::Translate,
        Phase::Concrete,
        Phase::Symbolic,
        Phase::Solve,
        Phase::Fork,
        Phase::Migrate,
        Phase::Idle,
        Phase::Replay,
    ];

    /// Dense index for per-phase arrays.
    pub fn index(self) -> usize {
        match self {
            Phase::Translate => 0,
            Phase::Concrete => 1,
            Phase::Symbolic => 2,
            Phase::Solve => 3,
            Phase::Fork => 4,
            Phase::Migrate => 5,
            Phase::Idle => 6,
            Phase::Replay => 7,
        }
    }

    /// Stable report/JSON name.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Translate => "translate",
            Phase::Concrete => "concrete",
            Phase::Symbolic => "symbolic",
            Phase::Solve => "solve",
            Phase::Fork => "fork",
            Phase::Migrate => "migrate",
            Phase::Idle => "idle",
            Phase::Replay => "replay",
        }
    }

    /// Inverse of [`Phase::name`].
    pub fn from_name(name: &str) -> Option<Phase> {
        Phase::ALL.into_iter().find(|p| p.name() == name)
    }
}

/// Accumulated self-time and span count per phase.
///
/// Self-time: a span's children (nested spans and externally-attributed
/// solver time) are subtracted from it, so summing all phases never
/// double-counts and approximates the worker's wall clock.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseTotals {
    /// Self-time per phase in nanoseconds, indexed by [`Phase::index`].
    pub nanos: [u64; Phase::COUNT],
    /// Completed spans per phase (external attributions not counted).
    pub spans: [u64; Phase::COUNT],
}

impl PhaseTotals {
    /// Adds `nanos` of self-time to `phase` without counting a span.
    pub fn add_nanos(&mut self, phase: Phase, nanos: u64) {
        self.nanos[phase.index()] += nanos;
    }

    /// Adds one completed span of `nanos` self-time to `phase`.
    pub fn add_span(&mut self, phase: Phase, nanos: u64) {
        self.nanos[phase.index()] += nanos;
        self.spans[phase.index()] += 1;
    }

    /// Folds another worker's totals into this one.
    pub fn merge(&mut self, other: &PhaseTotals) {
        for i in 0..Phase::COUNT {
            self.nanos[i] += other.nanos[i];
            self.spans[i] += other.spans[i];
        }
    }

    /// Self-time of one phase.
    pub fn duration(&self, phase: Phase) -> Duration {
        Duration::from_nanos(self.nanos[phase.index()])
    }

    /// Total recorded time excluding [`Phase::Idle`].
    pub fn busy(&self) -> Duration {
        let idle = self.nanos[Phase::Idle.index()];
        let total: u64 = self.nanos.iter().sum();
        Duration::from_nanos(total - idle)
    }

    /// Time parked on the scheduler.
    pub fn idle(&self) -> Duration {
        self.duration(Phase::Idle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for p in Phase::ALL {
            assert_eq!(Phase::from_name(p.name()), Some(p));
            assert_eq!(Phase::ALL[p.index()], p);
        }
        assert_eq!(Phase::from_name("nonsense"), None);
    }

    #[test]
    fn totals_merge_and_busy() {
        let mut a = PhaseTotals::default();
        a.add_span(Phase::Solve, 100);
        a.add_nanos(Phase::Solve, 50);
        a.add_span(Phase::Idle, 1_000);
        let mut b = PhaseTotals::default();
        b.add_span(Phase::Concrete, 200);
        a.merge(&b);
        assert_eq!(a.duration(Phase::Solve), Duration::from_nanos(150));
        assert_eq!(a.spans[Phase::Solve.index()], 1);
        assert_eq!(a.busy(), Duration::from_nanos(350));
        assert_eq!(a.idle(), Duration::from_nanos(1_000));
    }
}
