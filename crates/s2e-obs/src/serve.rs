//! Std-only TCP endpoint over a live [`MetricsRegistry`]
//! (DESIGN.md §16): `GET /metrics` serves the Prometheus text
//! exposition, `GET /report` the current merged snapshot as JSON. One
//! accept thread, nonblocking listener polled every few milliseconds,
//! each connection handled on a bounded short-lived thread — a scrape
//! endpoint, not a web server. This is the substrate the distributed
//! tier's job API streams `RunReport` snapshots over (DESIGN.md §17).

use crate::metrics::MetricsRegistry;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How long the accept loop sleeps between nonblocking polls.
const ACCEPT_POLL: Duration = Duration::from_millis(5);
/// Per-connection read/write deadline.
const CONN_TIMEOUT: Duration = Duration::from_millis(500);
/// Largest request we bother reading.
const MAX_REQUEST: usize = 4096;
/// Connection threads allowed in flight at once. Past this the accept
/// loop joins the oldest before taking another connection, so a burst
/// of wedged scrapers degrades to the old serialized behavior instead
/// of unbounded thread growth.
const MAX_INFLIGHT: usize = 8;

/// Background scrape endpoint. Dropping (or [`TelemetryServer::stop`])
/// shuts the accept thread down; in-flight connections finish first.
pub struct TelemetryServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl TelemetryServer {
    /// Binds `addr` (use `127.0.0.1:0` for an ephemeral port) and
    /// starts serving snapshots of `registry`.
    pub fn start(registry: Arc<MetricsRegistry>, addr: &str) -> io::Result<TelemetryServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("s2e-telemetry-serve".into())
            .spawn(move || {
                // One short-lived thread per connection: a scraper that
                // stalls inside its CONN_TIMEOUT window must not block
                // other scrapes (or stop() latency) behind it.
                let mut inflight: Vec<JoinHandle<()>> = Vec::new();
                while !thread_stop.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            inflight.retain(|h| !h.is_finished());
                            while inflight.len() >= MAX_INFLIGHT {
                                let _ = inflight.remove(0).join();
                            }
                            let registry = Arc::clone(&registry);
                            let conn = std::thread::Builder::new()
                                .name("s2e-telemetry-conn".into())
                                .spawn(move || {
                                    // Scrape errors (slow clients,
                                    // resets) are the client's problem,
                                    // never the run's.
                                    let _ = handle_connection(stream, &registry);
                                });
                            match conn {
                                Ok(h) => inflight.push(h),
                                Err(_) => {} // spawn failure drops the connection
                            }
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            std::thread::sleep(ACCEPT_POLL);
                        }
                        Err(_) => std::thread::sleep(ACCEPT_POLL),
                    }
                }
                for h in inflight {
                    let _ = h.join();
                }
            })?;
        Ok(TelemetryServer { addr: local, stop, thread: Some(thread) })
    }

    /// The bound address (with the real port when `:0` was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept thread and waits for it.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for TelemetryServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn handle_connection(mut stream: TcpStream, registry: &MetricsRegistry) -> io::Result<()> {
    // On BSD-lineage platforms an accepted stream inherits the
    // listener's nonblocking mode (Rust does not normalize this), which
    // would turn the blocking read loop below into a spurious-WouldBlock
    // generator. Force blocking mode before arming the timeouts.
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(CONN_TIMEOUT))?;
    stream.set_write_timeout(Some(CONN_TIMEOUT))?;
    let mut request = Vec::new();
    let mut chunk = [0u8; 512];
    while !request.windows(4).any(|w| w == b"\r\n\r\n") && request.len() < MAX_REQUEST {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => request.extend_from_slice(&chunk[..n]),
            // A read deadline expiring (surfaced as TimedOut, or as
            // WouldBlock on platforms where the timeout reuses the
            // nonblocking machinery) means the client has sent all it
            // is going to: answer what we have rather than hard-fail.
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                break
            }
            Err(e) => return Err(e),
        }
    }
    let head = String::from_utf8_lossy(&request);
    let mut parts = head.lines().next().unwrap_or("").split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let (status, content_type, body) = if method != "GET" {
        ("405 Method Not Allowed", "text/plain", "only GET is supported\n".to_string())
    } else {
        match path {
            "/metrics" => {
                ("200 OK", "text/plain; version=0.0.4", registry.snapshot().prometheus())
            }
            "/report" => {
                let mut body = registry.snapshot().to_json().render();
                body.push('\n');
                ("200 OK", "application/json", body)
            }
            _ => ("404 Not Found", "text/plain", "try /metrics or /report\n".to_string()),
        }
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

/// Minimal HTTP/1.1 GET against a telemetry endpoint; returns the body.
/// Used by `live-top --url` and the endpoint tests.
pub fn http_get(addr: &str, path: &str) -> io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let request = format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    stream.write_all(request.as_bytes())?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let Some(split) = raw.find("\r\n\r\n") else {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "malformed HTTP response"));
    };
    let status = raw.lines().next().unwrap_or("");
    if !status.contains("200") {
        return Err(io::Error::new(
            io::ErrorKind::Other,
            format!("endpoint returned: {status}"),
        ));
    }
    Ok(raw[split + 4..].to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use crate::metrics::Counter;

    #[test]
    fn serves_metrics_and_report() {
        let reg = MetricsRegistry::new(1);
        reg.handle(0).set_counter(Counter::EngineForks, 21);
        let server = TelemetryServer::start(Arc::clone(&reg), "127.0.0.1:0").unwrap();
        let addr = server.addr().to_string();
        let metrics = http_get(&addr, "/metrics").unwrap();
        assert!(metrics.contains("s2e_engine_forks 21"));
        let report = http_get(&addr, "/report").unwrap();
        let parsed = json::parse(report.trim()).unwrap();
        assert_eq!(
            parsed.get("counters").and_then(|c| c.get("engine.forks")).and_then(|v| v.as_u64()),
            Some(21)
        );
        assert!(http_get(&addr, "/nope").is_err());
        server.stop();
    }

    #[test]
    fn stalled_scraper_does_not_serialize_endpoint() {
        let reg = MetricsRegistry::new(1);
        reg.handle(0).set_counter(Counter::EngineForks, 7);
        let server = TelemetryServer::start(Arc::clone(&reg), "127.0.0.1:0").unwrap();
        let addr = server.addr().to_string();
        // A client that connects and then goes silent pins its
        // connection thread for the full CONN_TIMEOUT...
        let stalled = TcpStream::connect(&addr).unwrap();
        std::thread::sleep(ACCEPT_POLL * 4); // let the accept loop take it
        // ...while a well-behaved scrape still completes promptly.
        let started = std::time::Instant::now();
        let metrics = http_get(&addr, "/metrics").unwrap();
        assert!(metrics.contains("s2e_engine_forks 7"));
        assert!(
            started.elapsed() < CONN_TIMEOUT,
            "scrape serialized behind a stalled client: {:?}",
            started.elapsed()
        );
        drop(stalled);
        server.stop();
    }
}
