//! Std-only TCP endpoint over a live [`MetricsRegistry`]
//! (DESIGN.md §16): `GET /metrics` serves the Prometheus text
//! exposition, `GET /report` the current merged snapshot as JSON. One
//! accept thread, nonblocking listener polled every few milliseconds,
//! one short-lived connection handled at a time — a scrape endpoint,
//! not a web server. This is the substrate the ROADMAP's distributed
//! job API streams `RunReport` snapshots over.

use crate::metrics::MetricsRegistry;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How long the accept loop sleeps between nonblocking polls.
const ACCEPT_POLL: Duration = Duration::from_millis(5);
/// Per-connection read/write deadline.
const CONN_TIMEOUT: Duration = Duration::from_millis(500);
/// Largest request we bother reading.
const MAX_REQUEST: usize = 4096;

/// Background scrape endpoint. Dropping (or [`TelemetryServer::stop`])
/// shuts the accept thread down; in-flight connections finish first.
pub struct TelemetryServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl TelemetryServer {
    /// Binds `addr` (use `127.0.0.1:0` for an ephemeral port) and
    /// starts serving snapshots of `registry`.
    pub fn start(registry: Arc<MetricsRegistry>, addr: &str) -> io::Result<TelemetryServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("s2e-telemetry-serve".into())
            .spawn(move || {
                while !thread_stop.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            // Scrape errors (slow clients, resets) are
                            // the client's problem, never the run's.
                            let _ = handle_connection(stream, &registry);
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            std::thread::sleep(ACCEPT_POLL);
                        }
                        Err(_) => std::thread::sleep(ACCEPT_POLL),
                    }
                }
            })?;
        Ok(TelemetryServer { addr: local, stop, thread: Some(thread) })
    }

    /// The bound address (with the real port when `:0` was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept thread and waits for it.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for TelemetryServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn handle_connection(mut stream: TcpStream, registry: &MetricsRegistry) -> io::Result<()> {
    stream.set_read_timeout(Some(CONN_TIMEOUT))?;
    stream.set_write_timeout(Some(CONN_TIMEOUT))?;
    let mut request = Vec::new();
    let mut chunk = [0u8; 512];
    while !request.windows(4).any(|w| w == b"\r\n\r\n") && request.len() < MAX_REQUEST {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => request.extend_from_slice(&chunk[..n]),
            Err(e) => return Err(e),
        }
    }
    let head = String::from_utf8_lossy(&request);
    let mut parts = head.lines().next().unwrap_or("").split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let (status, content_type, body) = if method != "GET" {
        ("405 Method Not Allowed", "text/plain", "only GET is supported\n".to_string())
    } else {
        match path {
            "/metrics" => {
                ("200 OK", "text/plain; version=0.0.4", registry.snapshot().prometheus())
            }
            "/report" => {
                let mut body = registry.snapshot().to_json().render();
                body.push('\n');
                ("200 OK", "application/json", body)
            }
            _ => ("404 Not Found", "text/plain", "try /metrics or /report\n".to_string()),
        }
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

/// Minimal HTTP/1.1 GET against a telemetry endpoint; returns the body.
/// Used by `live-top --url` and the endpoint tests.
pub fn http_get(addr: &str, path: &str) -> io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let request = format!("GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n");
    stream.write_all(request.as_bytes())?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    let Some(split) = raw.find("\r\n\r\n") else {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "malformed HTTP response"));
    };
    let status = raw.lines().next().unwrap_or("");
    if !status.contains("200") {
        return Err(io::Error::new(
            io::ErrorKind::Other,
            format!("endpoint returned: {status}"),
        ));
    }
    Ok(raw[split + 4..].to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use crate::metrics::Counter;

    #[test]
    fn serves_metrics_and_report() {
        let reg = MetricsRegistry::new(1);
        reg.handle(0).set_counter(Counter::EngineForks, 21);
        let server = TelemetryServer::start(Arc::clone(&reg), "127.0.0.1:0").unwrap();
        let addr = server.addr().to_string();
        let metrics = http_get(&addr, "/metrics").unwrap();
        assert!(metrics.contains("s2e_engine_forks 21"));
        let report = http_get(&addr, "/report").unwrap();
        let parsed = json::parse(report.trim()).unwrap();
        assert_eq!(
            parsed.get("counters").and_then(|c| c.get("engine.forks")).and_then(|v| v.as_u64()),
            Some(21)
        );
        assert!(http_get(&addr, "/nope").is_err());
        server.stop();
    }
}
