//! Lock-free, per-worker-sharded live metrics registry (DESIGN.md §16).
//!
//! One [`MetricsRegistry`] per run holds one shard per worker; each
//! worker writes only its own shard through a cloned
//! [`TelemetryHandle`], so the hot path never takes a lock and never
//! shares a cache line with another writer's counters. Readers (the
//! sampler thread, the TCP endpoint) merge all shards on demand into a
//! plain [`MetricsSnapshot`].
//!
//! Writers come in two shapes:
//!
//! * **Published counters** — the engine already maintains plain
//!   (non-atomic) `EngineStats`/`SolverStats`/`DbtStats` structs on its
//!   hot path. At batch boundaries the worker *publishes* the current
//!   cumulative values into its shard with relaxed atomic stores. The
//!   per-event cost is zero; freshness is one batch.
//! * **Histogram samples** — rare, latency-bearing events (solver
//!   queries, translations, steals, parks, replays) record directly:
//!   one relaxed `fetch_add` per sample into a log2 bucket.
//!
//! Merge rules per metric, applied on read:
//!
//! * [`MergeKind::Sum`] — per-worker quantities; the merged value is
//!   the sum of the shards' last-published values. Exact at any
//!   instant for whatever each worker last published.
//! * [`MergeKind::Max`] — mirrors of *global monotonic* values (the
//!   shared TB cache, the cross-worker query cache) that every worker
//!   re-publishes. The max across shards is the most recent read, and
//!   after the last worker's final flush it equals the global final
//!   value exactly.
//! * [`MergeKind::Latest`] — non-monotonic globals (queue depth).
//!   Every store is stamped from a registry-wide sequence; the merged
//!   value is the one with the highest stamp.
//!
//! Counter names are `section.key`, matching the end-of-run
//! [`crate::RunReport`] sections byte-for-byte wherever a counter has
//! an exact report twin ([`Counter::runreport_twin`]); the
//! `telemetry_overhead` bench asserts that equality at run end.

use crate::hist::{bucket_hi, AtomicHistogram, HistogramSnapshot};
use crate::json::Json;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How a metric's per-shard values combine into one merged value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MergeKind {
    /// Sum across shards (per-worker quantities).
    Sum,
    /// Max across shards (mirrors of global monotonic values).
    Max,
    /// Value with the highest publish stamp (non-monotonic globals).
    Latest,
}

macro_rules! define_metric_enum {
    ($enum_name:ident, $count_const:ident, $( $variant:ident => ($name:literal, $merge:ident) ),* $(,)?) => {
        #[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
        #[repr(usize)]
        pub enum $enum_name {
            $($variant),*
        }

        impl $enum_name {
            pub const ALL: &'static [$enum_name] = &[$($enum_name::$variant),*];

            #[inline]
            pub fn index(self) -> usize {
                self as usize
            }

            pub fn name(self) -> &'static str {
                match self {
                    $($enum_name::$variant => $name),*
                }
            }

            pub fn merge(self) -> MergeKind {
                match self {
                    $($enum_name::$variant => MergeKind::$merge),*
                }
            }
        }

        pub const $count_const: usize = $enum_name::ALL.len();
    };
}

define_metric_enum!(
    Counter,
    COUNTER_COUNT,
    // Engine — per-worker, published cumulatively at batch cadence.
    EngineStatesCreated => ("engine.states_created", Sum),
    EngineStatesTerminated => ("engine.states_terminated", Sum),
    EngineForks => ("engine.forks", Sum),
    EngineBlocksExecuted => ("engine.blocks_executed", Sum),
    EngineInstrsConcrete => ("engine.instrs_concrete", Sum),
    EngineInstrsSymbolic => ("engine.instrs_symbolic", Sum),
    EngineConcreteOnlyBlocks => ("engine.concrete_only_blocks", Sum),
    EngineLeanInstrs => ("engine.lean_instrs", Sum),
    EngineDeadWritesSkipped => ("engine.dead_writes_skipped", Sum),
    EngineFeasibilityProbesSkipped => ("engine.feasibility_probes_skipped", Sum),
    EngineSymbolicPtrAccesses => ("engine.symbolic_ptr_accesses", Sum),
    EngineConcretizations => ("engine.concretizations", Sum),
    EngineInterruptsDelivered => ("engine.interrupts_delivered", Sum),
    EngineSyscalls => ("engine.syscalls", Sum),
    EngineIndirectRetirements => ("engine.indirect_retirements", Sum),
    EngineIndirectTargetsResolved => ("engine.indirect_targets_resolved", Sum),
    EngineIndirectTargetsEscaped => ("engine.indirect_targets_escaped", Sum),
    EngineIndirectTargetsDiscovered => ("engine.indirect_targets_discovered", Sum),
    EngineEvictions => ("engine.evictions", Sum),
    EngineRehydrations => ("engine.rehydrations", Sum),
    EngineReplayedInstrs => ("engine.replayed_instrs", Sum),
    EngineJournalBytes => ("engine.journal_bytes", Sum),
    EngineCpuTimeNs => ("engine.cpu_time_ns", Sum),
    EngineMaxLiveStates => ("engine.max_live_states", Max),
    EngineMemoryWatermarkBytes => ("engine.memory_watermark_bytes", Max),
    // Sum of per-worker coverage-set sizes: an upper bound on the true
    // block-set union (blocks seen by several workers count once per
    // worker). No exact RunReport twin.
    EngineSeenBlocks => ("engine.seen_blocks", Sum),
    // Solver — per-worker, published from SolverStats.
    SolverQueries => ("solver.queries", Sum),
    SolverSat => ("solver.sat", Sum),
    SolverUnsat => ("solver.unsat", Sum),
    SolverUnknown => ("solver.unknown", Sum),
    SolverCacheHits => ("solver.cache_hits", Sum),
    SolverSharedHits => ("solver.shared_hits", Sum),
    SolverPoolHits => ("solver.pool_hits", Sum),
    SolverSubsumptionHits => ("solver.subsumption_hits", Sum),
    SolverCoreSolves => ("solver.core_solves", Sum),
    SolverSlicedQueries => ("solver.sliced_queries", Sum),
    SolverComponentsSolved => ("solver.components_solved", Sum),
    SolverCacheEvictions => ("solver.cache_evictions", Sum),
    SolverCacheEntries => ("solver.cache_entries", Sum),
    SolverTotalTimeNs => ("solver.total_time_ns", Sum),
    SolverMaxQueryTimeNs => ("solver.max_query_time_ns", Max),
    // Per-kind solver share (the Fig 9 axes, live).
    SolverFeasibilityQueries => ("solver_by_kind.feasibility.queries", Sum),
    SolverFeasibilityTimeNs => ("solver_by_kind.feasibility.time_ns", Sum),
    SolverConcretizeQueries => ("solver_by_kind.concretize.queries", Sum),
    SolverConcretizeTimeNs => ("solver_by_kind.concretize.time_ns", Sum),
    SolverOtherQueries => ("solver_by_kind.other.queries", Sum),
    SolverOtherTimeNs => ("solver_by_kind.other.time_ns", Sum),
    // DBT — worker-local L1/chain counters (summed) plus mirrors of the
    // shared translation cache (monotonic, max-merged).
    DbtL1Hits => ("dbt.l1_hits", Sum),
    DbtLocalHits => ("dbt.local_hits", Sum),
    DbtChainEntries => ("dbt.chain_entries", Sum),
    DbtChainExits => ("dbt.chain_exits", Sum),
    DbtTranslations => ("dbt.translations", Max),
    DbtSharedHits => ("dbt.shared_hits", Max),
    DbtInstrsTranslated => ("dbt.instrs_translated", Max),
    DbtInvalidations => ("dbt.invalidations", Max),
    DbtChainsFormed => ("dbt.chains_formed", Max),
    DbtUnlinks => ("dbt.unlinks", Max),
    DbtTranslationTimeNs => ("dbt.translation_time_ns", Max),
    // Cross-worker solver cache mirrors (monotonic fields only; the
    // non-monotonic entry count is Gauge::SharedCacheEntries).
    SharedCacheHits => ("shared_cache.hits", Max),
    SharedCacheSubsumptionHits => ("shared_cache.subsumption_hits", Max),
    SharedCacheInserts => ("shared_cache.inserts", Max),
    SharedCacheEvictions => ("shared_cache.evictions", Max),
    // Scheduler — per-worker loop counters.
    ParallelSteals => ("parallel.steals", Sum),
    ParallelReclaims => ("parallel.reclaims", Sum),
    ParallelExports => ("parallel.exports", Sum),
);

impl Counter {
    /// The `(section, key)` of this counter's exact end-of-run
    /// [`crate::RunReport`] twin, or `None` for counters that are
    /// live-only (components or bounds with no report equivalent).
    /// Twin-ness is what the `telemetry_overhead` bench asserts: after
    /// the final flush, the merged registry value equals the report
    /// counter exactly.
    pub fn runreport_twin(self) -> Option<(&'static str, &'static str)> {
        match self {
            // `dbt.hits` in the report is shared hits + per-worker L1
            // locals; the live registry keeps the components instead.
            Counter::DbtLocalHits | Counter::DbtSharedHits => None,
            Counter::EngineSeenBlocks => None,
            _ => self.name().split_once('.'),
        }
    }
}

define_metric_enum!(
    Gauge,
    GAUGE_COUNT,
    // Instantaneous values; Sum gauges are per-worker, Latest gauges
    // mirror one global (stamped, newest store wins).
    GaugeLiveStates => ("live_states", Sum),
    GaugeQueueDepth => ("queue_depth", Latest),
    GaugeQueueBytes => ("queue_bytes", Latest),
    GaugeIdlePressure => ("idle_pressure", Latest),
    GaugeHungryWorkers => ("hungry_workers", Latest),
    GaugeSharedCacheEntries => ("shared_cache.entries", Latest),
);

define_metric_enum!(
    Hist,
    HIST_COUNT,
    // Latency histograms, all in nanoseconds. Merge kind is nominal —
    // histograms always merge by bucket-wise addition.
    HistSolveFeasibility => ("latency.solve_feasibility", Sum),
    HistSolveConcretize => ("latency.solve_concretize", Sum),
    HistSolveOther => ("latency.solve_other", Sum),
    HistTranslate => ("latency.translate", Sum),
    HistSteal => ("latency.steal", Sum),
    HistPark => ("latency.park", Sum),
    HistReplay => ("latency.replay", Sum),
);

impl Hist {
    /// Histogram for a solver query kind, by `QueryKind::index()`
    /// (0 = feasibility, 1 = concretize, 2 = other).
    pub fn solve_kind(index: usize) -> Hist {
        match index {
            0 => Hist::HistSolveFeasibility,
            1 => Hist::HistSolveConcretize,
            _ => Hist::HistSolveOther,
        }
    }
}

/// One worker's private slice of the registry.
#[derive(Debug)]
pub struct MetricsShard {
    counters: Box<[AtomicU64]>,
    gauges: Box<[AtomicU64]>,
    gauge_stamps: Box<[AtomicU64]>,
    hists: Box<[AtomicHistogram]>,
}

fn atomic_slice(n: usize) -> Box<[AtomicU64]> {
    (0..n).map(|_| AtomicU64::new(0)).collect()
}

impl MetricsShard {
    fn new() -> Self {
        MetricsShard {
            counters: atomic_slice(COUNTER_COUNT),
            gauges: atomic_slice(GAUGE_COUNT),
            gauge_stamps: atomic_slice(GAUGE_COUNT),
            hists: (0..HIST_COUNT).map(|_| AtomicHistogram::new()).collect(),
        }
    }
}

/// The per-run registry: one shard per worker, merged on read.
#[derive(Debug)]
pub struct MetricsRegistry {
    shards: Box<[MetricsShard]>,
    stamp: AtomicU64,
}

impl MetricsRegistry {
    /// Creates a registry with `shards` independent writer slots
    /// (typically one per worker; a sequential engine uses shard 0).
    pub fn new(shards: usize) -> Arc<MetricsRegistry> {
        let shards = shards.max(1);
        Arc::new(MetricsRegistry {
            shards: (0..shards).map(|_| MetricsShard::new()).collect(),
            stamp: AtomicU64::new(0),
        })
    }

    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Writer handle for shard `shard`. Panics on out-of-range.
    pub fn handle(self: &Arc<MetricsRegistry>, shard: usize) -> TelemetryHandle {
        assert!(shard < self.shards.len(), "telemetry shard out of range");
        TelemetryHandle { registry: Arc::clone(self), shard }
    }

    /// Merges all shards into a plain snapshot (see [`MergeKind`]).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut counters = vec![0u64; COUNTER_COUNT];
        for &c in Counter::ALL {
            let i = c.index();
            let mut acc = 0u64;
            for shard in self.shards.iter() {
                let v = shard.counters[i].load(Ordering::Relaxed);
                acc = match c.merge() {
                    MergeKind::Sum => acc + v,
                    MergeKind::Max | MergeKind::Latest => acc.max(v),
                };
            }
            counters[i] = acc;
        }
        let mut gauges = vec![0u64; GAUGE_COUNT];
        for &g in Gauge::ALL {
            let i = g.index();
            match g.merge() {
                MergeKind::Sum => {
                    gauges[i] = self
                        .shards
                        .iter()
                        .map(|s| s.gauges[i].load(Ordering::Relaxed))
                        .sum();
                }
                MergeKind::Max => {
                    gauges[i] = self
                        .shards
                        .iter()
                        .map(|s| s.gauges[i].load(Ordering::Relaxed))
                        .max()
                        .unwrap_or(0);
                }
                MergeKind::Latest => {
                    let mut best_stamp = 0u64;
                    let mut best = 0u64;
                    for shard in self.shards.iter() {
                        let stamp = shard.gauge_stamps[i].load(Ordering::Acquire);
                        if stamp >= best_stamp {
                            best_stamp = stamp;
                            best = shard.gauges[i].load(Ordering::Relaxed);
                        }
                    }
                    gauges[i] = best;
                }
            }
        }
        let mut hists = vec![HistogramSnapshot::default(); HIST_COUNT];
        for &h in Hist::ALL {
            let i = h.index();
            for shard in self.shards.iter() {
                hists[i].merge(&shard.hists[i].snapshot());
            }
        }
        MetricsSnapshot { counters, gauges, hists }
    }
}

/// Cloneable writer handle bound to one shard. All writes are relaxed
/// atomics on that shard only; clones share the shard (the engine and
/// its solver both write worker `w`'s shard).
#[derive(Clone, Debug)]
pub struct TelemetryHandle {
    registry: Arc<MetricsRegistry>,
    shard: usize,
}

impl TelemetryHandle {
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    pub fn shard(&self) -> usize {
        self.shard
    }

    /// Publishes a cumulative counter value (relaxed store).
    #[inline]
    pub fn set_counter(&self, c: Counter, value: u64) {
        self.registry.shards[self.shard].counters[c.index()].store(value, Ordering::Relaxed);
    }

    /// Event-increments a counter (relaxed add). Prefer `set_counter`
    /// publishes from batch-cadence stats; this is for counters with no
    /// plain-struct source.
    #[inline]
    pub fn add_counter(&self, c: Counter, delta: u64) {
        self.registry.shards[self.shard].counters[c.index()].fetch_add(delta, Ordering::Relaxed);
    }

    /// Publishes a gauge. `Latest` gauges take a registry-wide stamp so
    /// the merge can pick the newest store.
    #[inline]
    pub fn set_gauge(&self, g: Gauge, value: u64) {
        let shard = &self.registry.shards[self.shard];
        shard.gauges[g.index()].store(value, Ordering::Relaxed);
        if g.merge() == MergeKind::Latest {
            let stamp = self.registry.stamp.fetch_add(1, Ordering::Relaxed) + 1;
            shard.gauge_stamps[g.index()].store(stamp, Ordering::Release);
        }
    }

    /// Records one histogram sample — a single relaxed `fetch_add`.
    #[inline]
    pub fn observe(&self, h: Hist, value: u64) {
        self.registry.shards[self.shard].hists[h.index()].record(value);
    }

    /// Records a duration sample in nanoseconds.
    #[inline]
    pub fn observe_duration(&self, h: Hist, d: Duration) {
        self.observe(h, d.as_nanos().min(u64::MAX as u128) as u64);
    }
}

/// Plain merged view of the registry at one instant.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    pub counters: Vec<u64>,
    pub gauges: Vec<u64>,
    pub hists: Vec<HistogramSnapshot>,
}

impl MetricsSnapshot {
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c.index()]
    }

    pub fn gauge(&self, g: Gauge) -> u64 {
        self.gauges[g.index()]
    }

    pub fn hist(&self, h: Hist) -> &HistogramSnapshot {
        &self.hists[h.index()]
    }

    /// JSON object with `counters`, `gauges`, and `hists` sub-objects;
    /// histogram buckets are emitted sparsely as `[index, count]`
    /// pairs. Served by `/report` and embedded in the JSONL stream.
    pub fn to_json(&self) -> Json {
        let mut counters = Json::obj();
        for &c in Counter::ALL {
            counters = counters.set(c.name(), self.counter(c));
        }
        let mut gauges = Json::obj();
        for &g in Gauge::ALL {
            gauges = gauges.set(g.name(), self.gauge(g));
        }
        let mut hists = Json::obj();
        for &h in Hist::ALL {
            let s = self.hist(h);
            let mut buckets = Vec::new();
            for (i, &n) in s.buckets.iter().enumerate() {
                if n > 0 {
                    buckets.push(Json::Arr(vec![Json::from(i), Json::from(n)]));
                }
            }
            let mut entry = Json::obj()
                .set("count", s.count())
                .set("buckets", Json::Arr(buckets));
            if let Some(p50) = s.quantile(0.5) {
                entry = entry
                    .set("p50", p50)
                    .set("p90", s.quantile(0.9).unwrap())
                    .set("p99", s.quantile(0.99).unwrap());
            }
            hists = hists.set(h.name(), entry);
        }
        Json::obj()
            .set("counters", counters)
            .set("gauges", gauges)
            .set("hists", hists)
    }

    /// Prometheus text exposition of the snapshot: every counter and
    /// gauge as a single sample, every histogram in cumulative
    /// `_bucket{le=...}` form with `_sum`/`_count` (the sum is the
    /// bucket-midpoint approximation — exact time totals live in the
    /// `*_time_ns` counters).
    pub fn prometheus(&self) -> String {
        fn sanitize(name: &str) -> String {
            let mut out = String::with_capacity(name.len() + 4);
            out.push_str("s2e_");
            for ch in name.chars() {
                out.push(if ch == '.' { '_' } else { ch });
            }
            out
        }
        let mut out = String::new();
        for &c in Counter::ALL {
            let name = sanitize(c.name());
            out.push_str(&format!("# TYPE {name} counter\n{name} {}\n", self.counter(c)));
        }
        for &g in Gauge::ALL {
            let name = sanitize(g.name());
            out.push_str(&format!("# TYPE {name} gauge\n{name} {}\n", self.gauge(g)));
        }
        for &h in Hist::ALL {
            let name = sanitize(h.name());
            let s = self.hist(h);
            out.push_str(&format!("# TYPE {name} histogram\n"));
            let mut cum = 0u64;
            let last = s
                .buckets
                .iter()
                .rposition(|&n| n > 0)
                .unwrap_or(0);
            for (i, &n) in s.buckets.iter().enumerate().take(last + 1) {
                cum += n;
                out.push_str(&format!(
                    "{name}_bucket{{le=\"{}\"}} {cum}\n",
                    bucket_hi(i)
                ));
            }
            out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", s.count()));
            out.push_str(&format!("{name}_sum {}\n", s.approx_sum()));
            out.push_str(&format!("{name}_count {}\n", s.count()));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_indexed() {
        let mut seen = std::collections::HashSet::new();
        for &c in Counter::ALL {
            assert!(seen.insert(c.name()), "duplicate counter {}", c.name());
        }
        for (i, &c) in Counter::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
        for (i, &g) in Gauge::ALL.iter().enumerate() {
            assert_eq!(g.index(), i);
        }
        for (i, &h) in Hist::ALL.iter().enumerate() {
            assert_eq!(h.index(), i);
        }
    }

    #[test]
    fn twins_point_into_known_sections() {
        let sections =
            ["engine", "solver", "solver_by_kind", "shared_cache", "dbt", "parallel"];
        let mut twins = 0;
        for &c in Counter::ALL {
            if let Some((section, key)) = c.runreport_twin() {
                assert!(sections.contains(&section), "unknown section {section}");
                assert!(!key.is_empty());
                twins += 1;
            }
        }
        assert!(twins > 50, "most counters should have report twins, got {twins}");
    }

    #[test]
    fn sum_and_max_merge() {
        let reg = MetricsRegistry::new(3);
        reg.handle(0).set_counter(Counter::EngineForks, 5);
        reg.handle(2).set_counter(Counter::EngineForks, 7);
        reg.handle(0).set_counter(Counter::DbtTranslations, 100);
        reg.handle(1).set_counter(Counter::DbtTranslations, 140);
        let snap = reg.snapshot();
        assert_eq!(snap.counter(Counter::EngineForks), 12);
        assert_eq!(snap.counter(Counter::DbtTranslations), 140);
    }

    #[test]
    fn latest_gauge_wins_by_stamp() {
        let reg = MetricsRegistry::new(2);
        reg.handle(0).set_gauge(Gauge::GaugeQueueDepth, 9);
        reg.handle(1).set_gauge(Gauge::GaugeQueueDepth, 2);
        assert_eq!(reg.snapshot().gauge(Gauge::GaugeQueueDepth), 2);
        reg.handle(0).set_gauge(Gauge::GaugeQueueDepth, 4);
        assert_eq!(reg.snapshot().gauge(Gauge::GaugeQueueDepth), 4);
        // Sum gauges add across shards.
        reg.handle(0).set_gauge(Gauge::GaugeLiveStates, 3);
        reg.handle(1).set_gauge(Gauge::GaugeLiveStates, 4);
        assert_eq!(reg.snapshot().gauge(Gauge::GaugeLiveStates), 7);
    }

    #[test]
    fn histograms_merge_across_shards() {
        let reg = MetricsRegistry::new(2);
        reg.handle(0).observe(Hist::HistSteal, 1000);
        reg.handle(1).observe(Hist::HistSteal, 1000);
        reg.handle(1).observe_duration(Hist::HistSteal, Duration::from_nanos(3));
        let snap = reg.snapshot();
        assert_eq!(snap.hist(Hist::HistSteal).count(), 3);
    }

    #[test]
    fn json_and_prometheus_render() {
        let reg = MetricsRegistry::new(1);
        let h = reg.handle(0);
        h.set_counter(Counter::SolverQueries, 42);
        h.set_gauge(Gauge::GaugeLiveStates, 3);
        h.observe(Hist::HistSolveFeasibility, 512);
        let snap = reg.snapshot();
        let json = snap.to_json();
        assert_eq!(
            json.get("counters").and_then(|c| c.get("solver.queries")).and_then(|v| v.as_u64()),
            Some(42)
        );
        let hist = json.get("hists").and_then(|h| h.get("latency.solve_feasibility")).unwrap();
        assert_eq!(hist.get("count").and_then(|v| v.as_u64()), Some(1));
        let text = snap.prometheus();
        assert!(text.contains("s2e_solver_queries 42"));
        assert!(text.contains("# TYPE s2e_live_states gauge"));
        assert!(text.contains("s2e_latency_solve_feasibility_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("s2e_latency_solve_feasibility_count 1"));
    }
}
