//! The unified end-of-run report.

use crate::json::{parse, Json, ParseError};
use crate::phase::{Phase, PhaseTotals};
use crate::ring::{Event, EventKind, WorkerTimeline};

/// Schema tag stamped into every serialized report.
pub const SCHEMA: &str = "s2e-run-report-v1";

/// One named group of counters snapshotted from a subsystem's stats
/// (`EngineStats`, `SolverStats`, block-cache, cache hierarchy, ...).
///
/// Counters are `(name, value)` pairs in insertion order; values are
/// f64 so one section type carries counts, ratios, and seconds alike.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricSection {
    /// Section name, e.g. `"engine"`, `"solver"`, `"dbt"`.
    pub name: String,
    /// Counters in insertion order.
    pub counters: Vec<(String, f64)>,
}

impl MetricSection {
    /// An empty section.
    pub fn new(name: &str) -> MetricSection {
        MetricSection {
            name: name.to_string(),
            counters: Vec::new(),
        }
    }

    /// Appends a counter (builder-style).
    pub fn counter(mut self, name: &str, value: impl Into<f64>) -> MetricSection {
        self.counters.push((name.to_string(), value.into()));
        self
    }

    /// Looks a counter up by name.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.counters.iter().find(|(k, _)| k == name).map(|(_, v)| *v)
    }
}

/// Everything one run produced: wall clock, merged Fig.-9-style phase
/// totals, per-worker timelines, and named metric sections.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunReport {
    /// End-to-end wall-clock time of the run, in nanoseconds.
    pub wall_ns: u64,
    /// Phase totals summed over all workers.
    pub phases: PhaseTotals,
    /// Per-worker recordings, ordered by worker index.
    pub workers: Vec<WorkerTimeline>,
    /// Snapshotted subsystem counters.
    pub sections: Vec<MetricSection>,
}

impl RunReport {
    /// An empty report for a run that took `wall_ns`.
    pub fn new(wall_ns: u64) -> RunReport {
        RunReport {
            wall_ns,
            ..RunReport::default()
        }
    }

    /// Adds one worker's timeline, folding its totals into the
    /// report-wide phase totals and keeping `workers` sorted.
    pub fn add_worker(&mut self, timeline: WorkerTimeline) {
        self.phases.merge(&timeline.totals);
        let at = self
            .workers
            .partition_point(|t| t.worker <= timeline.worker);
        self.workers.insert(at, timeline);
    }

    /// Adds a metric section.
    pub fn add_section(&mut self, section: MetricSection) {
        self.sections.push(section);
    }

    /// Looks a section up by name.
    pub fn section(&self, name: &str) -> Option<&MetricSection> {
        self.sections.iter().find(|s| s.name == name)
    }

    /// Serializes to the in-repo JSON harness.
    pub fn to_json(&self) -> Json {
        let mut workers = Vec::with_capacity(self.workers.len());
        for t in &self.workers {
            let mut events = Vec::with_capacity(t.events.len());
            for e in &t.events {
                events.push(event_to_json(e));
            }
            workers.push(
                Json::obj()
                    .set("worker", t.worker)
                    .set("dropped", t.dropped)
                    .set("phases", totals_to_json(&t.totals))
                    .set("events", Json::Arr(events)),
            );
        }
        let mut metrics = Vec::with_capacity(self.sections.len());
        for s in &self.sections {
            let mut counters = Json::obj();
            for (k, v) in &s.counters {
                counters = counters.set(k, *v);
            }
            metrics.push(Json::obj().set("name", s.name.as_str()).set("counters", counters));
        }
        Json::obj()
            .set("schema", SCHEMA)
            .set("wall_ns", self.wall_ns)
            .set("phases", totals_to_json(&self.phases))
            .set("workers", Json::Arr(workers))
            .set("metrics", Json::Arr(metrics))
    }

    /// Renders [`RunReport::to_json`] to text.
    pub fn render(&self) -> String {
        self.to_json().render()
    }

    /// Parses a serialized report back. Inverse of [`RunReport::render`].
    pub fn from_json(text: &str) -> Result<RunReport, ParseError> {
        let j = parse(text)?;
        let fail = |message: &str| ParseError {
            offset: 0,
            message: message.to_string(),
        };
        match j.get("schema").and_then(Json::as_str) {
            Some(SCHEMA) => {}
            Some(other) => return Err(fail(&format!("unknown schema '{other}'"))),
            None => return Err(fail("missing schema tag")),
        }
        let wall_ns = j
            .get("wall_ns")
            .and_then(Json::as_u64)
            .ok_or_else(|| fail("missing wall_ns"))?;
        let phases = totals_from_json(
            j.get("phases").ok_or_else(|| fail("missing phases"))?,
        )
        .ok_or_else(|| fail("malformed phases"))?;
        let mut workers = Vec::new();
        for w in j
            .get("workers")
            .and_then(Json::as_arr)
            .ok_or_else(|| fail("missing workers"))?
        {
            let worker = w
                .get("worker")
                .and_then(Json::as_u64)
                .ok_or_else(|| fail("worker missing index"))? as usize;
            let dropped = w.get("dropped").and_then(Json::as_u64).unwrap_or(0);
            let totals = w
                .get("phases")
                .and_then(totals_from_json)
                .ok_or_else(|| fail("worker missing phases"))?;
            let mut events = Vec::new();
            for e in w.get("events").and_then(Json::as_arr).unwrap_or(&[]) {
                events.push(event_from_json(e).ok_or_else(|| fail("malformed event"))?);
            }
            workers.push(WorkerTimeline {
                worker,
                totals,
                events,
                dropped,
            });
        }
        let mut sections = Vec::new();
        for s in j.get("metrics").and_then(Json::as_arr).unwrap_or(&[]) {
            let name = s
                .get("name")
                .and_then(Json::as_str)
                .ok_or_else(|| fail("metric section missing name"))?;
            let mut section = MetricSection::new(name);
            for (k, v) in s
                .get("counters")
                .and_then(Json::as_obj)
                .unwrap_or(&[])
            {
                let v = v.as_f64().ok_or_else(|| fail("non-numeric counter"))?;
                section.counters.push((k.clone(), v));
            }
            sections.push(section);
        }
        Ok(RunReport {
            wall_ns,
            phases,
            workers,
            sections,
        })
    }
}

fn totals_to_json(t: &PhaseTotals) -> Json {
    let mut obj = Json::obj();
    for p in Phase::ALL {
        obj = obj.set(
            p.name(),
            Json::obj()
                .set("ns", t.nanos[p.index()])
                .set("spans", t.spans[p.index()]),
        );
    }
    obj
}

fn totals_from_json(j: &Json) -> Option<PhaseTotals> {
    let mut t = PhaseTotals::default();
    for p in Phase::ALL {
        let entry = j.get(p.name())?;
        t.nanos[p.index()] = entry.get("ns")?.as_u64()?;
        t.spans[p.index()] = entry.get("spans")?.as_u64()?;
    }
    Some(t)
}

fn event_to_json(e: &Event) -> Json {
    let base = Json::obj()
        .set("seq", e.seq)
        .set("ts_ns", e.ts_ns)
        .set("kind", e.kind.name());
    match e.kind {
        EventKind::Span { phase, dur_ns } => {
            base.set("phase", phase.name()).set("dur_ns", dur_ns)
        }
        EventKind::Fork { parent, child } => base.set("parent", parent).set("child", child),
        EventKind::PathEnd { state } => base.set("state", state),
        EventKind::QueueDepth { depth } => base.set("depth", depth),
        EventKind::Steal { state } => base.set("state", state),
        EventKind::Export { count } => base.set("count", count),
        EventKind::ExportDecision {
            keep,
            idle_pressure,
            hungry,
        } => base
            .set("keep", keep)
            .set("idle_pressure", idle_pressure)
            .set("hungry", hungry),
        EventKind::CacheSnapshot {
            tb_hits,
            tb_translations,
            query_cache_hits,
            queries,
        } => base
            .set("tb_hits", tb_hits)
            .set("tb_translations", tb_translations)
            .set("query_cache_hits", query_cache_hits)
            .set("queries", queries),
        EventKind::Evict {
            state,
            journal_bytes,
        } => base.set("state", state).set("journal_bytes", journal_bytes),
        EventKind::Rehydrate {
            state,
            replayed_blocks,
        } => base
            .set("state", state)
            .set("replayed_blocks", replayed_blocks),
    }
}

fn event_from_json(j: &Json) -> Option<Event> {
    let seq = j.get("seq")?.as_u64()?;
    let ts_ns = j.get("ts_ns")?.as_u64()?;
    let field = |name: &str| j.get(name).and_then(Json::as_u64);
    let kind = match j.get("kind")?.as_str()? {
        "span" => EventKind::Span {
            phase: Phase::from_name(j.get("phase")?.as_str()?)?,
            dur_ns: field("dur_ns")?,
        },
        "fork" => EventKind::Fork {
            parent: field("parent")?,
            child: field("child")?,
        },
        "path_end" => EventKind::PathEnd {
            state: field("state")?,
        },
        "queue_depth" => EventKind::QueueDepth {
            depth: field("depth")? as u32,
        },
        "steal" => EventKind::Steal {
            state: field("state")?,
        },
        "export" => EventKind::Export {
            count: field("count")? as u32,
        },
        "export_decision" => EventKind::ExportDecision {
            keep: field("keep")? as u32,
            idle_pressure: field("idle_pressure")? as u32,
            hungry: field("hungry")? as u32,
        },
        "cache_snapshot" => EventKind::CacheSnapshot {
            tb_hits: field("tb_hits")?,
            tb_translations: field("tb_translations")?,
            query_cache_hits: field("query_cache_hits")?,
            queries: field("queries")?,
        },
        "evict" => EventKind::Evict {
            state: field("state")?,
            journal_bytes: field("journal_bytes")?,
        },
        "rehydrate" => EventKind::Rehydrate {
            state: field("state")?,
            replayed_blocks: field("replayed_blocks")?,
        },
        _ => return None,
    };
    Some(Event { seq, ts_ns, kind })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> RunReport {
        let mut t0 = WorkerTimeline::empty(0);
        t0.totals.add_span(Phase::Concrete, 1_000);
        t0.totals.add_span(Phase::Solve, 250);
        t0.events = vec![
            Event {
                seq: 0,
                ts_ns: 10,
                kind: EventKind::Span {
                    phase: Phase::Concrete,
                    dur_ns: 1_000,
                },
            },
            Event {
                seq: 1,
                ts_ns: 1_020,
                kind: EventKind::Fork {
                    parent: 0,
                    child: 1,
                },
            },
        ];
        let mut t1 = WorkerTimeline::empty(1);
        t1.totals.add_span(Phase::Idle, 5_000);
        t1.dropped = 2;
        t1.events = vec![
            Event {
                seq: 7,
                ts_ns: 3,
                kind: EventKind::CacheSnapshot {
                    tb_hits: 10,
                    tb_translations: 2,
                    query_cache_hits: 4,
                    queries: 9,
                },
            },
            Event {
                seq: 8,
                ts_ns: 5,
                kind: EventKind::ExportDecision {
                    keep: 4,
                    idle_pressure: 512,
                    hungry: 1,
                },
            },
        ];
        let mut r = RunReport::new(123_456);
        // Out of order on purpose: add_worker keeps them sorted.
        r.add_worker(t1);
        r.add_worker(t0);
        r.add_section(
            MetricSection::new("engine")
                .counter("paths_completed", 33u32)
                .counter("cpu_seconds", 0.125),
        );
        r
    }

    #[test]
    fn add_worker_merges_totals_and_sorts() {
        let r = sample_report();
        assert_eq!(r.workers[0].worker, 0);
        assert_eq!(r.workers[1].worker, 1);
        assert_eq!(r.phases.nanos[Phase::Concrete.index()], 1_000);
        assert_eq!(r.phases.nanos[Phase::Idle.index()], 5_000);
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let r = sample_report();
        let text = r.render();
        assert!(text.contains(SCHEMA));
        let back = RunReport::from_json(&text).expect("parse back");
        assert_eq!(back, r);
    }

    #[test]
    fn section_lookup() {
        let r = sample_report();
        let engine = r.section("engine").expect("engine section");
        assert_eq!(engine.get("paths_completed"), Some(33.0));
        assert_eq!(engine.get("cpu_seconds"), Some(0.125));
        assert!(r.section("nope").is_none());
    }

    #[test]
    fn from_json_rejects_wrong_schema() {
        assert!(RunReport::from_json("{\"schema\": \"v999\"}").is_err());
        assert!(RunReport::from_json("{}").is_err());
        assert!(RunReport::from_json("not json").is_err());
    }
}
