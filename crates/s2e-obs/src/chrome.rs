//! Chrome trace-event export.
//!
//! Emits the Trace Event Format's JSON object form (`traceEvents`
//! array), loadable in `chrome://tracing` and Perfetto. Span events
//! become complete ("X") events with microsecond start/duration; point
//! events become instant ("i") events with their payload under `args`.
//! One process (pid 0), one track per worker (tid = worker index).
//! [`chrome_trace_report`] additionally emits one counter ("C") event
//! per [`RunReport`] metric section, so every end-of-run counter is
//! visible as a counter track in the viewer.

use crate::json::Json;
use crate::report::RunReport;
use crate::ring::{EventKind, WorkerTimeline};

/// Renders per-worker timelines as a Chrome trace-event JSON document.
pub fn chrome_trace(timelines: &[WorkerTimeline]) -> String {
    finish(timeline_events(timelines))
}

/// Renders a full [`RunReport`] as a Chrome trace: the per-worker
/// timelines plus one counter ("C") event per metric section at
/// end-of-run, carrying every counter of that section under `args`.
pub fn chrome_trace_report(report: &RunReport) -> String {
    let mut events = timeline_events(&report.workers);
    let ts_us = report.wall_ns as f64 / 1_000.0;
    for section in &report.sections {
        let mut args = Json::obj();
        for (key, value) in &section.counters {
            args = args.set(key.as_str(), *value);
        }
        events.push(
            Json::obj()
                .set("name", section.name.as_str())
                .set("cat", "counter")
                .set("ph", "C")
                .set("ts", ts_us)
                .set("pid", 0u32)
                .set("tid", 0u32)
                .set("args", args),
        );
    }
    finish(events)
}

fn finish(events: Vec<Json>) -> String {
    Json::obj()
        .set("traceEvents", Json::Arr(events))
        .set("displayTimeUnit", "ms")
        .render()
}

fn timeline_events(timelines: &[WorkerTimeline]) -> Vec<Json> {
    let mut order: Vec<&WorkerTimeline> = timelines.iter().collect();
    order.sort_by_key(|t| t.worker);
    let mut events = Vec::new();
    for t in order {
        events.push(
            Json::obj()
                .set("name", "thread_name")
                .set("ph", "M")
                .set("pid", 0u32)
                .set("tid", t.worker)
                .set(
                    "args",
                    Json::obj().set("name", format!("worker {}", t.worker)),
                ),
        );
        for e in &t.events {
            let ts_us = e.ts_ns as f64 / 1_000.0;
            let ev = match e.kind {
                EventKind::Span { phase, dur_ns } => Json::obj()
                    .set("name", phase.name())
                    .set("cat", "phase")
                    .set("ph", "X")
                    .set("ts", ts_us)
                    .set("dur", dur_ns as f64 / 1_000.0)
                    .set("pid", 0u32)
                    .set("tid", t.worker),
                kind => {
                    let args = match kind {
                        EventKind::Span { .. } => unreachable!(),
                        EventKind::Fork { parent, child } => {
                            Json::obj().set("parent", parent).set("child", child)
                        }
                        EventKind::PathEnd { state } => Json::obj().set("state", state),
                        EventKind::QueueDepth { depth } => Json::obj().set("depth", depth),
                        EventKind::Steal { state } => Json::obj().set("state", state),
                        EventKind::Export { count } => Json::obj().set("count", count),
                        EventKind::ExportDecision {
                            keep,
                            idle_pressure,
                            hungry,
                        } => Json::obj()
                            .set("keep", keep)
                            .set("idle_pressure", idle_pressure)
                            .set("hungry", hungry),
                        EventKind::CacheSnapshot {
                            tb_hits,
                            tb_translations,
                            query_cache_hits,
                            queries,
                        } => Json::obj()
                            .set("tb_hits", tb_hits)
                            .set("tb_translations", tb_translations)
                            .set("query_cache_hits", query_cache_hits)
                            .set("queries", queries),
                        EventKind::Evict {
                            state,
                            journal_bytes,
                        } => Json::obj()
                            .set("state", state)
                            .set("journal_bytes", journal_bytes),
                        EventKind::Rehydrate {
                            state,
                            replayed_blocks,
                        } => Json::obj()
                            .set("state", state)
                            .set("replayed_blocks", replayed_blocks),
                    };
                    Json::obj()
                        .set("name", kind.name())
                        .set("cat", "event")
                        .set("ph", "i")
                        .set("ts", ts_us)
                        .set("pid", 0u32)
                        .set("tid", t.worker)
                        .set("s", "t")
                        .set("args", args)
                }
            };
            events.push(ev);
        }
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;
    use crate::phase::Phase;
    use crate::ring::Event;

    #[test]
    fn trace_is_valid_json_with_expected_events() {
        let mut t = WorkerTimeline::empty(3);
        t.events = vec![
            Event {
                seq: 0,
                ts_ns: 2_500,
                kind: EventKind::Span {
                    phase: Phase::Translate,
                    dur_ns: 1_000,
                },
            },
            Event {
                seq: 1,
                ts_ns: 4_000,
                kind: EventKind::Steal { state: 42 },
            },
        ];
        let text = chrome_trace(&[t]);
        let j = parse(&text).expect("valid json");
        let events = j.get("traceEvents").unwrap().as_arr().unwrap();
        // Thread-name metadata + one X + one i.
        assert_eq!(events.len(), 3);
        let span = &events[1];
        assert_eq!(span.get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(span.get("name").unwrap().as_str(), Some("translate"));
        assert_eq!(span.get("ts").unwrap().as_f64(), Some(2.5));
        assert_eq!(span.get("dur").unwrap().as_f64(), Some(1.0));
        assert_eq!(span.get("tid").unwrap().as_u64(), Some(3));
        let instant = &events[2];
        assert_eq!(instant.get("ph").unwrap().as_str(), Some("i"));
        assert_eq!(
            instant.get("args").unwrap().get("state").unwrap().as_u64(),
            Some(42)
        );
    }

    #[test]
    fn report_trace_carries_every_section_counter() {
        let mut report = RunReport::new(3_000);
        report.add_worker(WorkerTimeline::empty(0));
        report.add_section(
            crate::report::MetricSection::new("engine")
                .counter("forks", 5.0)
                .counter("blocks_executed", 90.0),
        );
        let text = chrome_trace_report(&report);
        let j = parse(&text).expect("valid json");
        let events = j.get("traceEvents").unwrap().as_arr().unwrap();
        let counter = events.last().unwrap();
        assert_eq!(counter.get("ph").unwrap().as_str(), Some("C"));
        assert_eq!(counter.get("name").unwrap().as_str(), Some("engine"));
        assert_eq!(counter.get("ts").unwrap().as_f64(), Some(3.0));
        let args = counter.get("args").unwrap();
        assert_eq!(args.get("forks").unwrap().as_f64(), Some(5.0));
        assert_eq!(args.get("blocks_executed").unwrap().as_f64(), Some(90.0));
    }
}
