//! Engine self-observability (DESIGN.md §11).
//!
//! The paper's performance envelope (§6.2, Fig. 9) explains S2E's cost by
//! breaking a run down into where time actually goes — translation,
//! concrete execution, symbolic interpretation, constraint solving — and
//! none of the remaining performance work on this reproduction can be
//! attributed without the same breakdown. This crate provides the three
//! pieces the rest of the workspace instruments itself with:
//!
//! - **[`Recorder`]** — hierarchical phase timers (span enter/exit on a
//!   monotonic clock) over the [`Phase`] taxonomy, plus a bounded
//!   per-worker [`EventRing`] of span / fork / kill / queue-depth /
//!   cache-snapshot events. A disabled recorder is a near-no-op: every
//!   entry point checks one boolean and returns without reading the
//!   clock, so the default (observability off) configuration costs a
//!   handful of predictable branches per *block*, never per instruction.
//! - **[`WorkerTimeline`]** — one worker's finished recording, merged
//!   deterministically across workers by [`merge_timelines`] (ordered by
//!   `(worker, seq)`, never by wall-clock timestamps, so the merged
//!   stream does not depend on the thread schedule).
//! - **[`RunReport`]** — the unified end-of-run artifact: wall clock,
//!   Fig.-9-style phase totals, per-worker timelines, and a registry of
//!   named metric sections snapshotting engine / solver / cache counters.
//!   Serializes to the in-repo [`json`] harness (which this crate hosts,
//!   including the parser) and to the Chrome trace-event format
//!   ([`chrome_trace`]) for external viewers.
//!
//! The crate is std-only and dependency-free by policy (DESIGN.md §7);
//! `s2e-core`, `s2e-tools`, and `bench` build on it.

pub mod chrome;
pub mod json;
pub mod phase;
pub mod recorder;
pub mod report;
pub mod ring;

pub use chrome::chrome_trace;
pub use phase::{Phase, PhaseTotals};
pub use recorder::{ObsConfig, Recorder};
pub use report::{MetricSection, RunReport};
pub use ring::{merge_timelines, Event, EventKind, EventRing, MergedEvent, WorkerTimeline};
