//! Engine self-observability (DESIGN.md §11).
//!
//! The paper's performance envelope (§6.2, Fig. 9) explains S2E's cost by
//! breaking a run down into where time actually goes — translation,
//! concrete execution, symbolic interpretation, constraint solving — and
//! none of the remaining performance work on this reproduction can be
//! attributed without the same breakdown. This crate provides the three
//! pieces the rest of the workspace instruments itself with:
//!
//! - **[`Recorder`]** — hierarchical phase timers (span enter/exit on a
//!   monotonic clock) over the [`Phase`] taxonomy, plus a bounded
//!   per-worker [`EventRing`] of span / fork / kill / queue-depth /
//!   cache-snapshot events. A disabled recorder is a near-no-op: every
//!   entry point checks one boolean and returns without reading the
//!   clock, so the default (observability off) configuration costs a
//!   handful of predictable branches per *block*, never per instruction.
//! - **[`WorkerTimeline`]** — one worker's finished recording, merged
//!   deterministically across workers by [`merge_timelines`] (ordered by
//!   `(worker, seq)`, never by wall-clock timestamps, so the merged
//!   stream does not depend on the thread schedule).
//! - **[`RunReport`]** — the unified end-of-run artifact: wall clock,
//!   Fig.-9-style phase totals, per-worker timelines, and a registry of
//!   named metric sections snapshotting engine / solver / cache counters.
//!   Serializes to the in-repo [`json`] harness (which this crate hosts,
//!   including the parser) and to the Chrome trace-event format
//!   ([`chrome_trace`]) for external viewers.
//!
//! PR 9 adds the *live* half (DESIGN.md §16): a lock-free,
//! per-worker-sharded [`MetricsRegistry`] of counters, gauges, and
//! log2-bucketed latency [`hist`]ograms merged on read; a [`Sampler`]
//! thread streaming periodic delta snapshots as `s2e-live-v1` JSONL; a
//! std-only TCP [`TelemetryServer`] exposing `/metrics` (Prometheus
//! text) and `/report` (JSON snapshot); and the [`LiveTelemetry`]
//! lifecycle wrapper tying the three together.
//!
//! The crate is std-only and dependency-free by policy (DESIGN.md §7);
//! `s2e-core`, `s2e-solver`, `s2e-tools`, and `bench` build on it.

pub mod chrome;
pub mod hist;
pub mod json;
pub mod live;
pub mod metrics;
pub mod phase;
pub mod recorder;
pub mod report;
pub mod ring;
pub mod sampler;
pub mod serve;

pub use chrome::{chrome_trace, chrome_trace_report};
pub use hist::{
    bucket_hi, bucket_index, bucket_lo, bucket_mid, AtomicHistogram, HistogramSnapshot,
    HIST_BUCKETS,
};
pub use live::{LiveConfig, LiveSummary, LiveTelemetry};
pub use metrics::{
    Counter, Gauge, Hist, MergeKind, MetricsRegistry, MetricsSnapshot, TelemetryHandle,
};
pub use phase::{Phase, PhaseTotals};
pub use recorder::{ObsConfig, Recorder};
pub use report::{MetricSection, RunReport};
pub use ring::{merge_timelines, Event, EventKind, EventRing, MergedEvent, WorkerTimeline};
pub use sampler::{snapshot_line, Sampler, SamplerSummary, LIVE_SCHEMA};
pub use serve::{http_get, TelemetryServer};
