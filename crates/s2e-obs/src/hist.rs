//! Log2-bucketed latency histograms (DESIGN.md §16).
//!
//! The recording side is [`AtomicHistogram`]: a fixed array of 64
//! relaxed `AtomicU64` buckets, one per power-of-two value range.
//! Recording a sample is exactly one `fetch_add` on the owning worker's
//! shard — no locks, no allocation, no clock reads beyond the sample
//! itself — so it is safe to leave enabled on hot paths (solver
//! queries, translations, steals, parks, replays).
//!
//! The read side is [`HistogramSnapshot`]: a plain copy of the bucket
//! counts that merges across shards by element-wise addition and
//! estimates quantiles by rank-walking the buckets. Estimates are
//! bracketed by the true bucket bounds: for any quantile `q`, the
//! brute-force sorted sample at that rank lands in the same bucket the
//! estimate was taken from, so estimate and truth differ by at most the
//! bucket width (a factor of two) — the property suite in
//! `tests/hist_props.rs` pins this against sorted raw samples.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of log2 buckets. Bucket 0 holds exact zeros; bucket `i`
/// (1..=62) holds values in `[2^(i-1), 2^i)`; bucket 63 is the
/// overflow bucket `[2^62, u64::MAX]`.
pub const HIST_BUCKETS: usize = 64;

/// Index of the bucket a value lands in (see [`HIST_BUCKETS`]).
#[inline]
pub fn bucket_index(value: u64) -> usize {
    ((64 - value.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
}

/// Inclusive lower bound of bucket `i`.
pub fn bucket_lo(i: usize) -> u64 {
    match i {
        0 => 0,
        _ => 1u64 << (i - 1),
    }
}

/// Exclusive upper bound of bucket `i` (saturated for the overflow
/// bucket, whose range is closed at `u64::MAX`).
pub fn bucket_hi(i: usize) -> u64 {
    if i == 0 {
        1
    } else if i >= HIST_BUCKETS - 1 {
        u64::MAX
    } else {
        1u64 << i
    }
}

/// Representative value reported for bucket `i`: the midpoint of its
/// range (0 for the zero bucket). Quantile estimates return this.
pub fn bucket_mid(i: usize) -> u64 {
    let lo = bucket_lo(i);
    let hi = bucket_hi(i);
    lo + (hi - lo) / 2
}

/// Lock-free recording side of one histogram. Lives inside a worker's
/// metrics shard; every `record` is a single relaxed `fetch_add`.
#[derive(Debug)]
pub struct AtomicHistogram {
    buckets: [AtomicU64; HIST_BUCKETS],
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl AtomicHistogram {
    pub fn new() -> Self {
        const ZERO: AtomicU64 = AtomicU64::new(0);
        AtomicHistogram { buckets: [ZERO; HIST_BUCKETS] }
    }

    /// Records one sample. One atomic add, relaxed ordering — counts
    /// are only ever read as a monotonic snapshot, never synchronized
    /// against.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// Copies the current bucket counts. Concurrent recorders may race
    /// ahead mid-copy; each bucket is individually exact and monotonic,
    /// which is all the delta sampler needs.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; HIST_BUCKETS];
        for (dst, src) in buckets.iter_mut().zip(self.buckets.iter()) {
            *dst = src.load(Ordering::Relaxed);
        }
        HistogramSnapshot { buckets }
    }
}

/// Plain-data histogram: merged view of one or more shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub buckets: [u64; HIST_BUCKETS],
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self { buckets: [0; HIST_BUCKETS] }
    }
}

impl HistogramSnapshot {
    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Element-wise merge of another shard's counts into this one.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (dst, src) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *dst += *src;
        }
    }

    /// Element-wise difference (`self - earlier`); both must come from
    /// the same monotonic histogram, earlier first.
    pub fn delta(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let mut out = *self;
        for (dst, src) in out.buckets.iter_mut().zip(earlier.buckets.iter()) {
            *dst -= *src;
        }
        out
    }

    /// Approximate sum of all samples (Σ count × bucket midpoint),
    /// saturating — overflow-bucket samples alone exceed `u64`.
    pub fn approx_sum(&self) -> u64 {
        self.buckets
            .iter()
            .enumerate()
            .map(|(i, &c)| c.saturating_mul(bucket_mid(i)))
            .fold(0u64, u64::saturating_add)
    }

    /// Estimated quantile `q` in `[0, 1]`: the midpoint of the bucket
    /// containing the sample of rank `ceil(q · count)` (1-based, so
    /// `q = 0.5` of 10 samples is the 5th smallest). Returns `None`
    /// when the histogram is empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let count = self.count();
        if count == 0 {
            return None;
        }
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(bucket_mid(i));
            }
        }
        Some(bucket_mid(HIST_BUCKETS - 1))
    }

    /// Index of the bucket holding the sample of rank `ceil(q · count)`
    /// — the bracket a brute-force quantile must land in.
    pub fn quantile_bucket(&self, q: f64) -> Option<usize> {
        let count = self.count();
        if count == 0 {
            return None;
        }
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(i);
            }
        }
        Some(HIST_BUCKETS - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), HIST_BUCKETS - 1);
        // Every value lands inside its bucket's [lo, hi) range.
        for v in [0u64, 1, 2, 7, 255, 4096, 1 << 40, u64::MAX] {
            let i = bucket_index(v);
            assert!(v >= bucket_lo(i));
            assert!(v < bucket_hi(i) || i == HIST_BUCKETS - 1);
        }
    }

    #[test]
    fn record_and_count() {
        let h = AtomicHistogram::new();
        for v in [0u64, 1, 5, 5, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 5);
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[bucket_index(5)], 2);
    }

    #[test]
    fn quantile_of_uniform_singletons() {
        let h = AtomicHistogram::new();
        h.record(10);
        let s = h.snapshot();
        let q = s.quantile(0.5).unwrap();
        let i = bucket_index(10);
        assert!(q >= bucket_lo(i) && q < bucket_hi(i));
        assert!(HistogramSnapshot::default().quantile(0.5).is_none());
    }

    #[test]
    fn merge_and_delta_roundtrip() {
        let a = AtomicHistogram::new();
        let b = AtomicHistogram::new();
        a.record(3);
        a.record(100);
        b.record(3);
        let earlier = a.snapshot();
        a.record(7);
        let later = a.snapshot();
        let d = later.delta(&earlier);
        assert_eq!(d.count(), 1);
        assert_eq!(d.buckets[bucket_index(7)], 1);
        let mut m = later;
        m.merge(&b.snapshot());
        assert_eq!(m.count(), 4);
    }
}
