//! One-stop lifecycle for live telemetry: registry + sampler thread +
//! scrape endpoint (DESIGN.md §16).
//!
//! ```text
//! let live = LiveTelemetry::start(LiveConfig {
//!     workers,
//!     jsonl_path: Some("results/run_live.jsonl".into()),
//!     serve_addr: Some("127.0.0.1:0".into()),
//!     ..LiveConfig::default()
//! })?;
//! // ... run, handing live.handle(w) to each worker ...
//! let summary = live.finish()?; // final flush line + joined threads
//! ```
//!
//! `finish` must be called after the run completes (workers flushed);
//! the sampler's final JSONL line is taken after that point, which is
//! what makes its cumulative values exactly equal the end-of-run
//! `RunReport` twins.

use crate::metrics::{MetricsRegistry, MetricsSnapshot, TelemetryHandle};
use crate::sampler::{Sampler, SamplerSummary};
use crate::serve::TelemetryServer;
use std::io;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// Configuration for [`LiveTelemetry::start`].
#[derive(Clone, Debug)]
pub struct LiveConfig {
    /// Writer shards — one per worker (min 1).
    pub workers: usize,
    /// Delta-snapshot cadence for the JSONL stream.
    pub sample_interval: Duration,
    /// JSONL sink; `None` runs without a sampler thread.
    pub jsonl_path: Option<PathBuf>,
    /// Scrape endpoint bind address (e.g. `127.0.0.1:0`); `None` runs
    /// without the endpoint.
    pub serve_addr: Option<String>,
}

impl Default for LiveConfig {
    fn default() -> Self {
        LiveConfig {
            workers: 1,
            sample_interval: Duration::from_millis(50),
            jsonl_path: None,
            serve_addr: None,
        }
    }
}

/// Result of [`LiveTelemetry::finish`].
#[derive(Debug)]
pub struct LiveSummary {
    /// Merged registry state after the final flush.
    pub final_snapshot: MetricsSnapshot,
    /// JSONL lines written (0 when no sampler ran).
    pub lines: u64,
    /// The JSONL file, when a sampler ran.
    pub jsonl_path: Option<PathBuf>,
}

/// A running telemetry stack. Threads stop on `finish` (or drop).
pub struct LiveTelemetry {
    registry: Arc<MetricsRegistry>,
    sampler: Option<Sampler>,
    server: Option<TelemetryServer>,
}

impl LiveTelemetry {
    pub fn start(cfg: LiveConfig) -> io::Result<LiveTelemetry> {
        let registry = MetricsRegistry::new(cfg.workers);
        let sampler = match &cfg.jsonl_path {
            Some(path) => {
                Some(Sampler::start(Arc::clone(&registry), path, cfg.sample_interval)?)
            }
            None => None,
        };
        let server = match &cfg.serve_addr {
            Some(addr) => Some(TelemetryServer::start(Arc::clone(&registry), addr)?),
            None => None,
        };
        Ok(LiveTelemetry { registry, sampler, server })
    }

    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// Writer handle for worker `shard`.
    pub fn handle(&self, shard: usize) -> TelemetryHandle {
        self.registry.handle(shard)
    }

    /// Bound endpoint address, when serving.
    pub fn serve_addr(&self) -> Option<SocketAddr> {
        self.server.as_ref().map(|s| s.addr())
    }

    /// Current merged snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }

    /// Stops the sampler (writing its final line) and the endpoint.
    pub fn finish(self) -> io::Result<LiveSummary> {
        let LiveTelemetry { registry, sampler, server } = self;
        let summary = match sampler {
            Some(s) => {
                let SamplerSummary { final_snapshot, lines, path } = s.finish()?;
                LiveSummary { final_snapshot, lines, jsonl_path: Some(path) }
            }
            None => LiveSummary {
                final_snapshot: registry.snapshot(),
                lines: 0,
                jsonl_path: None,
            },
        };
        if let Some(server) = server {
            server.stop();
        }
        Ok(summary)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Counter;

    #[test]
    fn bare_registry_lifecycle() {
        let live = LiveTelemetry::start(LiveConfig { workers: 2, ..Default::default() }).unwrap();
        live.handle(1).set_counter(Counter::EngineForks, 4);
        assert!(live.serve_addr().is_none());
        let summary = live.finish().unwrap();
        assert_eq!(summary.lines, 0);
        assert_eq!(summary.final_snapshot.counter(Counter::EngineForks), 4);
    }
}
