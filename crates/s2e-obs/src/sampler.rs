//! Periodic delta snapshots of a [`MetricsRegistry`], streamed as
//! JSONL (`s2e-live-v1`) — the Fig 6–9 axes over wall time, live.
//!
//! A [`Sampler`] owns one background thread. Every `interval` it merges
//! the registry's shards and appends one line to the configured file:
//! cumulative counters/gauges/histograms, the delta since the previous
//! line, and derived rates (paths/s, forks/s, solver share). On
//! [`Sampler::finish`] the thread is woken, takes one last snapshot —
//! by then every worker has done its final flush, so the line's
//! cumulative values equal the end-of-run `RunReport` exactly for every
//! counter with a report twin — marks it `"final": true`, and exits.
//!
//! Line schema (`s2e-live-v1`): `seq` (monotonic line number),
//! `wall_ns` (since sampler start), `final`, `workers` (shard count),
//! `counters`/`gauges`/`hists` (cumulative, as in
//! [`MetricsSnapshot::to_json`]), `delta` (wall window + per-counter
//! and per-histogram-count increments, nonzero entries only), and
//! `derived` rates computed over the delta window.

use crate::json::Json;
use crate::metrics::{Counter, Gauge, Hist, MetricsRegistry, MetricsSnapshot};
use std::fs::File;
use std::io::{self, BufWriter, Write as _};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Schema tag stamped on every JSONL line.
pub const LIVE_SCHEMA: &str = "s2e-live-v1";

/// Builds one `s2e-live-v1` line. Pure — the unit tests and `live-top`
/// rendering both lean on this being deterministic in its inputs.
/// `prev` is the previous tick's cumulative snapshot and wall clock
/// (zeros for the first line).
pub fn snapshot_line(
    seq: u64,
    wall_ns: u64,
    workers: usize,
    snap: &MetricsSnapshot,
    prev: Option<(&MetricsSnapshot, u64)>,
    is_final: bool,
) -> Json {
    let (prev_counters, prev_hists, prev_wall): (Option<&MetricsSnapshot>, _, u64) = match prev {
        Some((p, w)) => (Some(p), Some(p), w),
        None => (None, None, 0),
    };
    let dt_ns = wall_ns.saturating_sub(prev_wall);

    let mut delta_counters = Json::obj();
    let d = |c: Counter| -> u64 {
        let before = prev_counters.map_or(0, |p| p.counter(c));
        snap.counter(c).saturating_sub(before)
    };
    for &c in Counter::ALL {
        let dv = d(c);
        if dv > 0 {
            delta_counters = delta_counters.set(c.name(), dv);
        }
    }
    let mut delta_hists = Json::obj();
    for &h in Hist::ALL {
        let before = prev_hists.map_or(0, |p: &MetricsSnapshot| p.hist(h).count());
        let dv = snap.hist(h).count().saturating_sub(before);
        if dv > 0 {
            delta_hists = delta_hists.set(h.name(), dv);
        }
    }
    let delta = Json::obj()
        .set("wall_ns", dt_ns)
        .set("counters", delta_counters)
        .set("hists", delta_hists);

    let dt_s = (dt_ns as f64 / 1e9).max(1e-12);
    let rate = |c: Counter| -> f64 {
        let before = prev_counters.map_or(0, |p| p.counter(c));
        snap.counter(c).saturating_sub(before) as f64 / dt_s
    };
    let solver_dt = snap.counter(Counter::SolverTotalTimeNs).saturating_sub(
        prev_counters.map_or(0, |p| p.counter(Counter::SolverTotalTimeNs)),
    );
    let derived = Json::obj()
        .set("paths_per_s", rate(Counter::EngineStatesTerminated))
        .set("forks_per_s", rate(Counter::EngineForks))
        .set("blocks_per_s", rate(Counter::EngineBlocksExecuted))
        .set("queries_per_s", rate(Counter::SolverQueries))
        // Fraction of total worker-time the window spent inside the
        // solver (Fig 9's y-axis, live).
        .set(
            "solver_share",
            solver_dt as f64 / (dt_ns.max(1) as f64 * workers.max(1) as f64),
        )
        // Upper bound: sum of per-worker coverage sets, not their union.
        .set("covered_blocks_ub", snap.counter(Counter::EngineSeenBlocks))
        .set("live_states", snap.gauge(Gauge::GaugeLiveStates))
        .set("queue_depth", snap.gauge(Gauge::GaugeQueueDepth));

    let snapshot_json = snap.to_json();
    let mut line = Json::obj()
        .set("schema", LIVE_SCHEMA)
        .set("seq", seq)
        .set("wall_ns", wall_ns)
        .set("final", is_final)
        .set("workers", workers);
    for key in ["counters", "gauges", "hists"] {
        line = line.set(key, snapshot_json.get(key).cloned().unwrap_or(Json::Null));
    }
    line.set("delta", delta).set("derived", derived)
}

/// Everything the sampler leaves behind after [`Sampler::finish`].
#[derive(Debug)]
pub struct SamplerSummary {
    /// Merged snapshot the `"final": true` line was rendered from.
    pub final_snapshot: MetricsSnapshot,
    /// Total lines written, including the final one.
    pub lines: u64,
    /// The JSONL file the stream went to.
    pub path: PathBuf,
}

struct StopFlag {
    stopped: Mutex<bool>,
    cv: Condvar,
}

/// Background snapshot thread appending `s2e-live-v1` JSONL.
pub struct Sampler {
    flag: Arc<StopFlag>,
    thread: Option<JoinHandle<io::Result<SamplerSummary>>>,
}

impl Sampler {
    /// Starts sampling `registry` every `interval`, truncating and then
    /// appending to the file at `path` (parent directories are
    /// created). The first line is written after one full interval.
    pub fn start(
        registry: Arc<MetricsRegistry>,
        path: &Path,
        interval: Duration,
    ) -> io::Result<Sampler> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = File::create(path)?;
        let path = path.to_path_buf();
        let flag = Arc::new(StopFlag { stopped: Mutex::new(false), cv: Condvar::new() });
        let thread_flag = Arc::clone(&flag);
        let interval = interval.max(Duration::from_millis(1));
        let thread = std::thread::Builder::new()
            .name("s2e-telemetry-sampler".into())
            .spawn(move || -> io::Result<SamplerSummary> {
                let mut out = BufWriter::new(file);
                let start = Instant::now();
                let workers = registry.shard_count();
                let mut seq = 0u64;
                let mut prev: Option<(MetricsSnapshot, u64)> = None;
                loop {
                    let stopped = {
                        let guard = thread_flag.stopped.lock().unwrap();
                        let (guard, _) = thread_flag.cv.wait_timeout(guard, interval).unwrap();
                        *guard
                    };
                    let wall_ns = start.elapsed().as_nanos() as u64;
                    let snap = registry.snapshot();
                    let line = snapshot_line(
                        seq,
                        wall_ns,
                        workers,
                        &snap,
                        prev.as_ref().map(|(s, w)| (s, *w)),
                        stopped,
                    );
                    out.write_all(line.render_compact().as_bytes())?;
                    out.write_all(b"\n")?;
                    out.flush()?;
                    seq += 1;
                    if stopped {
                        return Ok(SamplerSummary { final_snapshot: snap, lines: seq, path });
                    }
                    prev = Some((snap, wall_ns));
                }
            })?;
        Ok(Sampler { flag, thread: Some(thread) })
    }

    /// Stops the thread, which writes one last `"final": true` line
    /// from a snapshot taken *after* this call — callers must have
    /// flushed all worker telemetry first for end-of-run exactness.
    pub fn finish(mut self) -> io::Result<SamplerSummary> {
        self.signal_stop();
        let thread = self.thread.take().expect("sampler already finished");
        thread
            .join()
            .map_err(|_| io::Error::new(io::ErrorKind::Other, "sampler thread panicked"))?
    }

    fn signal_stop(&self) {
        *self.flag.stopped.lock().unwrap() = true;
        self.flag.cv.notify_all();
    }
}

impl Drop for Sampler {
    fn drop(&mut self) {
        if let Some(thread) = self.thread.take() {
            self.signal_stop();
            let _ = thread.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn line_shape_and_deltas() {
        let reg = MetricsRegistry::new(2);
        reg.handle(0).set_counter(Counter::EngineForks, 10);
        let first = reg.snapshot();
        let line = snapshot_line(0, 1_000, 2, &first, None, false);
        assert_eq!(line.get("schema").and_then(|v| v.as_str()), Some(LIVE_SCHEMA));
        assert_eq!(
            line.get("delta")
                .and_then(|d| d.get("counters"))
                .and_then(|c| c.get("engine.forks"))
                .and_then(|v| v.as_u64()),
            Some(10)
        );
        reg.handle(1).set_counter(Counter::EngineForks, 5);
        reg.handle(0).observe(Hist::HistPark, 800);
        let second = reg.snapshot();
        let line2 = snapshot_line(1, 2_000, 2, &second, Some((&first, 1_000)), true);
        assert_eq!(line2.get("final").and_then(|v| v.as_bool()), Some(true));
        let delta = line2.get("delta").unwrap();
        assert_eq!(
            delta.get("counters").and_then(|c| c.get("engine.forks")).and_then(|v| v.as_u64()),
            Some(5)
        );
        assert_eq!(
            delta.get("hists").and_then(|h| h.get("latency.park")).and_then(|v| v.as_u64()),
            Some(1)
        );
        // A rendered line parses back.
        let parsed = json::parse(&line2.render()).unwrap();
        assert_eq!(parsed.get("seq").and_then(|v| v.as_u64()), Some(1));
    }

    #[test]
    fn sampler_writes_final_line_with_flushed_values() {
        let dir = std::env::temp_dir().join("s2e-obs-sampler-test");
        let path = dir.join("run_live.jsonl");
        let reg = MetricsRegistry::new(1);
        let sampler =
            Sampler::start(Arc::clone(&reg), &path, Duration::from_millis(5)).unwrap();
        reg.handle(0).set_counter(Counter::SolverQueries, 33);
        std::thread::sleep(Duration::from_millis(20));
        reg.handle(0).set_counter(Counter::SolverQueries, 77);
        let summary = sampler.finish().unwrap();
        assert!(summary.lines >= 1);
        assert_eq!(summary.final_snapshot.counter(Counter::SolverQueries), 77);
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len() as u64, summary.lines);
        let last = json::parse(lines.last().unwrap()).unwrap();
        assert_eq!(last.get("final").and_then(|v| v.as_bool()), Some(true));
        assert_eq!(
            last.get("counters").and_then(|c| c.get("solver.queries")).and_then(|v| v.as_u64()),
            Some(77)
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
