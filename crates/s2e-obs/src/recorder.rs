//! The per-worker recorder: span stack, phase totals, event ring.

use crate::phase::{Phase, PhaseTotals};
use crate::ring::{Event, EventKind, EventRing, WorkerTimeline};
use std::time::{Duration, Instant};

/// Observability tunables.
#[derive(Clone, Copy, Debug)]
pub struct ObsConfig {
    /// Master switch. Off (the default) makes every recorder entry point
    /// a single-branch no-op that never reads the clock.
    pub enabled: bool,
    /// Per-worker event ring capacity; oldest events are overwritten
    /// (and counted as dropped) beyond this.
    pub ring_capacity: usize,
}

impl Default for ObsConfig {
    fn default() -> ObsConfig {
        ObsConfig {
            enabled: false,
            ring_capacity: 4096,
        }
    }
}

impl ObsConfig {
    /// An enabled configuration with the default ring capacity.
    pub fn enabled() -> ObsConfig {
        ObsConfig {
            enabled: true,
            ..ObsConfig::default()
        }
    }
}

/// An open span on the recorder's stack.
#[derive(Clone, Copy, Debug)]
struct OpenSpan {
    phase: Phase,
    start_ticks: u64,
    /// Ticks consumed by nested spans, excluded from this span's
    /// self-time.
    child_ticks: u64,
    /// Externally-clocked nanoseconds attributed away from this span
    /// (solver time), subtracted once ticks become nanoseconds.
    child_ns: u64,
}

/// One worker's (or one sequential engine's) observability recorder.
///
/// Spans nest: [`Recorder::exit`] attributes the span's *self*-time —
/// elapsed minus nested children — to its phase, and charges the full
/// elapsed time to the parent's child account. [`Recorder::exit_as`]
/// allows the phase to be decided at exit (a block span opens as
/// [`Phase::Concrete`] and closes as [`Phase::Symbolic`] if any
/// instruction dispatched symbolically). Externally-clocked time (the
/// solver's own per-query timing) joins the hierarchy through
/// [`Recorder::add_external`].
///
/// Hot-path timestamps are raw ticks, not `Instant` reads: on x86-64 the
/// timestamp counter costs a few nanoseconds where the vDSO clock costs
/// tens, and the engine opens a span per translation block. Ticks are
/// converted to nanoseconds once, in [`Recorder::finish`], at a rate
/// calibrated over the whole recording (the longer the run, the more
/// precise). Externally-attributed time is kept in nanoseconds and
/// merged during the same conversion, so solver totals stay exactly what
/// the solver's own clock measured.
///
/// Disabled-mode guarantee: every method begins with `if !self.enabled
/// { return; }` and the disabled constructor allocates nothing, so the
/// instrumentation the engine carries costs one predictable branch per
/// call site — and call sites are per *block* or per scheduler
/// interaction, never per instruction.
#[derive(Clone, Debug)]
pub struct Recorder {
    enabled: bool,
    worker: usize,
    epoch: Instant,
    epoch_ticks: u64,
    /// Span self-time per phase, in raw ticks.
    ticks: [u64; Phase::COUNT],
    spans: [u64; Phase::COUNT],
    /// Nanoseconds attributed *to* each phase by `add_external`.
    ext_add_ns: [u64; Phase::COUNT],
    /// Nanoseconds attributed *away from* spans of each phase (their
    /// externally-clocked children).
    ext_sub_ns: [u64; Phase::COUNT],
    stack: Vec<OpenSpan>,
    ring: EventRing,
    next_seq: u64,
    /// The most recent tick any method read, for [`Recorder::enter_adjacent`].
    last_ticks: u64,
}

impl Recorder {
    /// The no-op recorder every engine starts with.
    pub fn disabled() -> Recorder {
        Recorder {
            enabled: false,
            worker: 0,
            epoch: Instant::now(),
            epoch_ticks: 0,
            ticks: [0; Phase::COUNT],
            spans: [0; Phase::COUNT],
            ext_add_ns: [0; Phase::COUNT],
            ext_sub_ns: [0; Phase::COUNT],
            stack: Vec::new(),
            ring: EventRing::new(0),
            next_seq: 0,
            last_ticks: 0,
        }
    }

    /// An active recorder for `worker`.
    pub fn new(worker: usize, config: &ObsConfig) -> Recorder {
        if !config.enabled {
            let mut r = Recorder::disabled();
            r.worker = worker;
            return r;
        }
        let mut r = Recorder {
            enabled: true,
            worker,
            epoch: Instant::now(),
            epoch_ticks: 0,
            ticks: [0; Phase::COUNT],
            spans: [0; Phase::COUNT],
            ext_add_ns: [0; Phase::COUNT],
            ext_sub_ns: [0; Phase::COUNT],
            stack: Vec::with_capacity(8),
            ring: EventRing::new(config.ring_capacity),
            next_seq: 0,
            last_ticks: 0,
        };
        r.epoch_ticks = r.now_ticks();
        r.last_ticks = r.epoch_ticks;
        r
    }

    /// Current raw timestamp. On x86-64 this is the TSC (invariant and
    /// constant-rate on anything modern; cross-core offsets are within
    /// the noise this layer tolerates). Elsewhere it falls back to the
    /// monotonic clock, making the tick unit one nanosecond and the
    /// finish-time calibration a no-op.
    #[inline]
    fn now_ticks(&self) -> u64 {
        #[cfg(target_arch = "x86_64")]
        {
            // SAFETY: RDTSC is unprivileged and has no preconditions.
            unsafe { core::arch::x86_64::_rdtsc() }
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            self.epoch.elapsed().as_nanos() as u64
        }
    }

    /// Reads the clock and remembers the value for `enter_adjacent`.
    #[inline]
    fn tick(&mut self) -> u64 {
        let t = self.now_ticks();
        self.last_ticks = t;
        t
    }

    /// Whether this recorder is recording. Callers may use this to skip
    /// computing event arguments; plain `enter`/`exit`/`note` calls are
    /// already safe (and near-free) when disabled.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The worker index this recorder reports under.
    pub fn worker(&self) -> usize {
        self.worker
    }

    /// Opens a span of `phase`.
    #[inline]
    pub fn enter(&mut self, phase: Phase) {
        if !self.enabled {
            return;
        }
        let start_ticks = self.tick();
        self.stack.push(OpenSpan {
            phase,
            start_ticks,
            child_ticks: 0,
            child_ns: 0,
        });
    }

    /// Opens a span of `phase` starting at the last recorded timestamp
    /// instead of reading the clock again. For back-to-back spans (one
    /// per translation block) this halves the clock reads and attributes
    /// the small bookkeeping gap between spans to the next one rather
    /// than losing it.
    #[inline]
    pub fn enter_adjacent(&mut self, phase: Phase) {
        if !self.enabled {
            return;
        }
        self.stack.push(OpenSpan {
            phase,
            start_ticks: self.last_ticks,
            child_ticks: 0,
            child_ns: 0,
        });
    }

    /// Closes the innermost span, attributing its self-time to the phase
    /// it was opened with.
    #[inline]
    pub fn exit(&mut self, phase: Phase) {
        self.exit_as(phase);
    }

    /// Closes the innermost span, attributing its self-time to `phase`
    /// (which may differ from the phase it was opened with — block spans
    /// are classified concrete/symbolic only once the block has run).
    pub fn exit_as(&mut self, phase: Phase) {
        if !self.enabled {
            return;
        }
        let Some(span) = self.stack.pop() else {
            debug_assert!(false, "exit_as({phase:?}) with no open span");
            return;
        };
        let elapsed = self.tick().saturating_sub(span.start_ticks);
        let self_ticks = elapsed.saturating_sub(span.child_ticks);
        let i = phase.index();
        self.ticks[i] += self_ticks;
        self.spans[i] += 1;
        self.ext_sub_ns[i] += span.child_ns;
        if let Some(parent) = self.stack.last_mut() {
            parent.child_ticks += elapsed;
            // The span's external children are inside `elapsed`, which
            // the parent subtracts wholly — no ns double-charge.
        }
        // Ring timestamps stay in ticks until finish().
        self.push_event(
            span.start_ticks.saturating_sub(self.epoch_ticks),
            EventKind::Span {
                phase,
                dur_ns: self_ticks,
            },
        );
    }

    /// Attributes externally-clocked time to `phase` and excludes it
    /// from the enclosing open span's self-time. Used for solver and
    /// decode time, which those components already measure themselves.
    pub fn add_external(&mut self, phase: Phase, time: Duration) {
        if !self.enabled {
            return;
        }
        let ns = time.as_nanos() as u64;
        self.ext_add_ns[phase.index()] += ns;
        if let Some(parent) = self.stack.last_mut() {
            parent.child_ns += ns;
        }
    }

    /// Records a point event (fork, kill, queue depth, cache snapshot).
    pub fn note(&mut self, kind: EventKind) {
        if !self.enabled {
            return;
        }
        let ts = self.tick().saturating_sub(self.epoch_ticks);
        self.push_event(ts, kind);
    }

    fn push_event(&mut self, ts_ticks: u64, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.ring.push(Event {
            seq,
            ts_ns: ts_ticks,
            kind,
        });
    }

    /// Nanoseconds per tick, calibrated from epoch to now. 1.0 exactly
    /// on the `Instant` fallback; on x86-64 the error shrinks with run
    /// length (two clock reads of jitter over the whole recording).
    fn ns_per_tick(&self) -> f64 {
        let elapsed_ticks = self.now_ticks().saturating_sub(self.epoch_ticks);
        if elapsed_ticks == 0 {
            return 1.0;
        }
        self.epoch.elapsed().as_nanos() as f64 / elapsed_ticks as f64
    }

    /// Phase totals so far (spans still open are not included).
    pub fn totals(&self) -> PhaseTotals {
        self.totals_at(self.ns_per_tick())
    }

    fn totals_at(&self, rate: f64) -> PhaseTotals {
        let mut totals = PhaseTotals::default();
        for i in 0..Phase::COUNT {
            let ns = (self.ticks[i] as f64 * rate) as u64;
            totals.nanos[i] = ns.saturating_sub(self.ext_sub_ns[i]) + self.ext_add_ns[i];
            totals.spans[i] = self.spans[i];
        }
        totals
    }

    /// Finishes recording: closes any spans still open (innermost first,
    /// under the phase they were opened with) and converts every
    /// tick-denominated quantity to nanoseconds at the calibrated rate.
    pub fn finish(mut self) -> WorkerTimeline {
        while let Some(span) = self.stack.last() {
            let phase = span.phase;
            self.exit_as(phase);
        }
        let rate = self.ns_per_tick();
        let totals = self.totals_at(rate);
        let dropped = self.ring.dropped();
        let mut events = self.ring.into_vec();
        for e in &mut events {
            e.ts_ns = (e.ts_ns as f64 * rate) as u64;
            if let EventKind::Span { dur_ns, .. } = &mut e.kind {
                *dur_ns = (*dur_ns as f64 * rate) as u64;
            }
        }
        WorkerTimeline {
            worker: self.worker,
            totals,
            dropped,
            events,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spin(at_least: Duration) {
        let t0 = Instant::now();
        while t0.elapsed() < at_least {
            std::hint::spin_loop();
        }
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let mut r = Recorder::disabled();
        r.enter(Phase::Concrete);
        r.add_external(Phase::Solve, Duration::from_secs(1));
        r.note(EventKind::Export { count: 3 });
        r.exit(Phase::Concrete);
        assert!(!r.is_enabled());
        let t = r.finish();
        assert!(t.events.is_empty());
        assert_eq!(t.totals, PhaseTotals::default());
    }

    #[test]
    fn nested_spans_attribute_self_time() {
        let mut r = Recorder::new(1, &ObsConfig::enabled());
        r.enter(Phase::Concrete);
        spin(Duration::from_millis(2));
        r.enter(Phase::Translate);
        spin(Duration::from_millis(2));
        r.exit(Phase::Translate);
        // Model a solver query: the wall time is spent inside the block
        // span, then attributed to Solve from the solver's own clock.
        spin(Duration::from_millis(5));
        r.add_external(Phase::Solve, Duration::from_millis(5));
        r.exit_as(Phase::Symbolic);
        let t = r.finish();
        assert_eq!(t.worker, 1);
        let translate = t.totals.duration(Phase::Translate);
        let symbolic = t.totals.duration(Phase::Symbolic);
        let solve = t.totals.duration(Phase::Solve);
        // Tick calibration leaves sub-permille error on the spin times.
        assert!(translate >= Duration::from_micros(1900), "{translate:?}");
        assert_eq!(solve, Duration::from_millis(5));
        // The block span's self-time excludes both children; with ~2ms
        // of own work it must come in far under child totals + own work
        // doubled, and the reclassified phase got the time, not Concrete.
        assert!(symbolic >= Duration::from_micros(1900), "{symbolic:?}");
        assert!(symbolic < Duration::from_millis(5), "{symbolic:?}");
        assert_eq!(t.totals.duration(Phase::Concrete), Duration::ZERO);
        assert_eq!(t.totals.spans[Phase::Symbolic.index()], 1);
        // Two span events: translate (inner) then the block.
        assert_eq!(t.events.len(), 2);
        assert!(matches!(
            t.events[0].kind,
            EventKind::Span {
                phase: Phase::Translate,
                ..
            }
        ));
    }

    #[test]
    fn finish_closes_open_spans() {
        let mut r = Recorder::new(0, &ObsConfig::enabled());
        r.enter(Phase::Migrate);
        r.enter(Phase::Idle);
        let t = r.finish();
        assert_eq!(t.totals.spans[Phase::Migrate.index()], 1);
        assert_eq!(t.totals.spans[Phase::Idle.index()], 1);
        assert_eq!(t.events.len(), 2);
    }

    #[test]
    fn events_get_dense_sequence_numbers() {
        let cfg = ObsConfig {
            enabled: true,
            ring_capacity: 2,
        };
        let mut r = Recorder::new(0, &cfg);
        for i in 0..5 {
            r.note(EventKind::QueueDepth { depth: i });
        }
        let t = r.finish();
        assert_eq!(t.dropped, 3);
        let seqs: Vec<u64> = t.events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![3, 4]);
    }

    #[test]
    fn event_timestamps_convert_to_nanoseconds() {
        let mut r = Recorder::new(0, &ObsConfig::enabled());
        spin(Duration::from_millis(2));
        r.note(EventKind::PathEnd { state: 1 });
        spin(Duration::from_millis(2));
        r.enter(Phase::Concrete);
        spin(Duration::from_millis(3));
        r.exit(Phase::Concrete);
        let t = r.finish();
        // The note landed ~2ms after the epoch; the span started ~2ms
        // later still and ran ~3ms. Calibration maps ticks near enough
        // to wall nanoseconds for coarse ordering checks to be exact.
        let note_ts = t.events[0].ts_ns;
        let span_ts = t.events[1].ts_ns;
        assert!(note_ts >= 1_500_000, "{note_ts}");
        assert!(span_ts >= note_ts + 1_500_000, "{span_ts} vs {note_ts}");
        match t.events[1].kind {
            EventKind::Span { dur_ns, .. } => {
                assert!(dur_ns >= 2_500_000, "{dur_ns}")
            }
            ref k => panic!("expected span, got {k:?}"),
        }
    }
}
