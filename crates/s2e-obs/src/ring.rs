//! The bounded per-worker event ring and the deterministic merge.

use crate::phase::{Phase, PhaseTotals};

/// What happened at one point of a worker's timeline.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EventKind {
    /// A completed span; `ts_ns` on the carrying [`Event`] is the span
    /// *start*, `dur_ns` its self-time (children excluded).
    Span { phase: Phase, dur_ns: u64 },
    /// A state forked.
    Fork { parent: u64, child: u64 },
    /// A path terminated.
    PathEnd { state: u64 },
    /// Shared injector queue depth observed after a pop.
    QueueDepth { depth: u32 },
    /// A state pulled from the shared queue.
    Steal { state: u64 },
    /// States pushed to the shared queue.
    Export { count: u32 },
    /// An export-eagerness decision in the deque scheduler (DESIGN.md
    /// §12): `keep` is the local-state cap chosen, `idle_pressure` the
    /// decayed park-frequency signal that chose it, and `hungry` the
    /// number of workers observed starving at that instant.
    ExportDecision {
        keep: u32,
        idle_pressure: u32,
        hungry: u32,
    },
    /// Point-in-time cache effectiveness snapshot (translation-block
    /// cache and solver query cache, cumulative counters).
    CacheSnapshot {
        tb_hits: u64,
        tb_translations: u64,
        query_cache_hits: u64,
        queries: u64,
    },
    /// A live state was evicted to compact `{checkpoint, journal}` form;
    /// `journal_bytes` is the encoded journal-suffix size it shrank to.
    Evict { state: u64, journal_bytes: u64 },
    /// A compact state was rehydrated by deterministic replay;
    /// `replayed_blocks` is the checkpoint distance re-executed.
    Rehydrate { state: u64, replayed_blocks: u64 },
}

impl EventKind {
    /// Stable report/JSON name.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::Span { .. } => "span",
            EventKind::Fork { .. } => "fork",
            EventKind::PathEnd { .. } => "path_end",
            EventKind::QueueDepth { .. } => "queue_depth",
            EventKind::Steal { .. } => "steal",
            EventKind::Export { .. } => "export",
            EventKind::ExportDecision { .. } => "export_decision",
            EventKind::CacheSnapshot { .. } => "cache_snapshot",
            EventKind::Evict { .. } => "evict",
            EventKind::Rehydrate { .. } => "rehydrate",
        }
    }
}

/// One timeline entry. `seq` is the worker-local sequence number (dense,
/// starting at 0, *including* events later overwritten by the ring), and
/// `ts_ns` is nanoseconds since the recorder's epoch.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Event {
    pub seq: u64,
    pub ts_ns: u64,
    pub kind: EventKind,
}

/// A bounded ring of [`Event`]s.
///
/// Memory is bounded by construction: the backing buffer never grows
/// past `capacity`. When full, a push overwrites the oldest event and
/// `dropped` counts it, so a reader always knows whether the window is
/// complete.
#[derive(Clone, Debug)]
pub struct EventRing {
    buf: Vec<Event>,
    capacity: usize,
    /// Index of the oldest event once the ring has wrapped.
    head: usize,
    dropped: u64,
}

impl EventRing {
    /// An empty ring holding at most `capacity` events. Capacity 0 drops
    /// everything.
    pub fn new(capacity: usize) -> EventRing {
        EventRing {
            buf: Vec::with_capacity(capacity.min(1024)),
            capacity,
            head: 0,
            dropped: 0,
        }
    }

    /// Appends an event, overwriting the oldest when full.
    pub fn push(&mut self, event: Event) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.buf.len() < self.capacity {
            self.buf.push(event);
        } else {
            self.buf[self.head] = event;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    /// Events currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing is held.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events overwritten (or refused at capacity 0) so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The retained window in chronological (sequence) order.
    pub fn into_vec(self) -> Vec<Event> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }
}

/// One worker's finished recording: phase totals, the retained event
/// window, and how many events fell out of it.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WorkerTimeline {
    /// Worker index (0 for a sequential engine).
    pub worker: usize,
    /// Per-phase self-time totals.
    pub totals: PhaseTotals,
    /// Retained events in sequence order.
    pub events: Vec<Event>,
    /// Events that fell out of the bounded ring.
    pub dropped: u64,
}

impl WorkerTimeline {
    /// An empty timeline for `worker` (what a disabled recorder yields).
    pub fn empty(worker: usize) -> WorkerTimeline {
        WorkerTimeline {
            worker,
            ..WorkerTimeline::default()
        }
    }
}

/// An event tagged with its worker, as produced by [`merge_timelines`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MergedEvent {
    pub worker: usize,
    pub event: Event,
}

/// Merges per-worker event streams into one deterministic sequence.
///
/// Ordering is `(worker, seq)` — worker-local sequence numbers, never
/// wall-clock timestamps — so the merged stream is a pure function of
/// what each worker recorded, independent of the thread schedule that
/// produced it. Two runs that record the same per-worker streams merge
/// identically even if their clocks differ.
pub fn merge_timelines(timelines: &[WorkerTimeline]) -> Vec<MergedEvent> {
    let mut order: Vec<&WorkerTimeline> = timelines.iter().collect();
    order.sort_by_key(|t| t.worker);
    let mut out = Vec::with_capacity(order.iter().map(|t| t.events.len()).sum());
    for t in order {
        debug_assert!(
            t.events.windows(2).all(|w| w[0].seq < w[1].seq),
            "worker {} events out of sequence order",
            t.worker
        );
        out.extend(t.events.iter().map(|&event| MergedEvent {
            worker: t.worker,
            event,
        }));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(seq: u64) -> Event {
        Event {
            seq,
            ts_ns: seq * 10,
            kind: EventKind::QueueDepth { depth: seq as u32 },
        }
    }

    #[test]
    fn ring_keeps_everything_under_capacity() {
        let mut r = EventRing::new(8);
        for i in 0..5 {
            r.push(ev(i));
        }
        assert_eq!(r.len(), 5);
        assert_eq!(r.dropped(), 0);
        let v = r.into_vec();
        assert_eq!(v.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn ring_wraps_dropping_oldest() {
        let mut r = EventRing::new(4);
        for i in 0..10 {
            r.push(ev(i));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.dropped(), 6);
        let v = r.into_vec();
        // The newest 4 survive, still in order.
        assert_eq!(v.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![6, 7, 8, 9]);
    }

    #[test]
    fn ring_memory_is_bounded() {
        let mut r = EventRing::new(16);
        for i in 0..100_000 {
            r.push(ev(i));
        }
        assert_eq!(r.len(), 16);
        assert!(r.buf.capacity() <= 16);
        assert_eq!(r.dropped(), 100_000 - 16);
    }

    #[test]
    fn zero_capacity_drops_everything() {
        let mut r = EventRing::new(0);
        r.push(ev(0));
        r.push(ev(1));
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 2);
        assert!(r.into_vec().is_empty());
    }

    #[test]
    fn merge_orders_by_worker_then_seq() {
        let t2 = WorkerTimeline {
            worker: 2,
            events: vec![ev(0), ev(1)],
            ..WorkerTimeline::default()
        };
        let t0 = WorkerTimeline {
            worker: 0,
            // Later wall-clock timestamps than worker 2's events — the
            // merge must ignore that and order by (worker, seq).
            events: vec![
                Event {
                    seq: 0,
                    ts_ns: 999_999,
                    kind: EventKind::Export { count: 1 },
                },
            ],
            ..WorkerTimeline::default()
        };
        let merged = merge_timelines(&[t2.clone(), t0.clone()]);
        let keys: Vec<(usize, u64)> =
            merged.iter().map(|m| (m.worker, m.event.seq)).collect();
        assert_eq!(keys, vec![(0, 0), (2, 0), (2, 1)]);
        // Input order must not matter.
        assert_eq!(merge_timelines(&[t0, t2]), merged);
    }
}
