//! The in-repo JSON harness: a minimal writer *and* reader.
//!
//! The workspace is std-only by policy (DESIGN.md §7), so the
//! machine-readable files under `results/` are emitted by this small
//! serializer instead of serde. It lived in `bench::json` (write-only)
//! until the run report grew consumers — the `s2e-tools` trace-report
//! renderer and the verify-gate parse check — so it now lives here, with
//! a parser, and `bench::json` re-exports it.

use std::fmt::Write as _;

/// A JSON value tree. Object keys keep insertion order so emitted files
/// diff cleanly run-to-run.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// All numbers are f64, like JSON itself; integers up to 2^53 round-trip.
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object, to be filled with [`Json::set`].
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Inserts (or replaces) `key` in an object; panics on non-objects.
    pub fn set(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(pairs) => {
                let value = value.into();
                if let Some(p) = pairs.iter_mut().find(|(k, _)| k == key) {
                    p.1 = value;
                } else {
                    pairs.push((key.to_string(), value));
                }
            }
            other => panic!("Json::set on non-object {other:?}"),
        }
        self
    }

    /// Looks up `key` in an object; `None` on non-objects and misses.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as an integer, if this is a number.
    pub fn as_u64(&self) -> Option<u64> {
        self.as_f64().map(|n| n as u64)
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The key/value pairs, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Renders with two-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    /// Renders on a single line with no whitespace — the JSONL form
    /// used by the live snapshot stream (one object per line).
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null | Json::Bool(_) | Json::Num(_) | Json::Str(_) => self.write(out, 0),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if !n.is_finite() {
                    out.push_str("null");
                } else if n.fract() == 0.0 && n.abs() < 9e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    let _ = write!(out, "{pad}  ");
                    item.write(out, indent + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                let _ = write!(out, "{pad}]");
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    let _ = write!(out, "{pad}  ");
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                    out.push_str(if i + 1 < pairs.len() { ",\n" } else { "\n" });
                }
                let _ = write!(out, "{pad}}}");
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}
impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}
impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}
impl From<u32> for Json {
    fn from(n: u32) -> Json {
        Json::Num(n as f64)
    }
}
impl From<i64> for Json {
    fn from(n: i64) -> Json {
        Json::Num(n as f64)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(items: Vec<T>) -> Json {
        Json::Arr(items.into_iter().map(Into::into).collect())
    }
}

/// A parse failure, with the byte offset it was detected at.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses one JSON document. Rejects trailing non-whitespace. Accepts
/// exactly what [`Json::render`] emits, plus ordinary JSON freedoms
/// (any whitespace, `\uXXXX` escapes including surrogate pairs,
/// scientific notation).
pub fn parse(text: &str) -> Result<Json, ParseError> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if !self.bytes[self.pos..].starts_with(b"\\u") {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.pos += 2;
                                let lo = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code =
                                    0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00);
                                char::from_u32(code)
                            } else {
                                char::from_u32(hi)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid \\u escape")),
                            }
                            // hex4 advanced past the digits; compensate
                            // for the unconditional advance below.
                            self.pos -= 1;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("non-ascii \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        s.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(format!("bad number '{s}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structures() {
        let j = Json::obj()
            .set("name", "overhead")
            .set("ratio", 6.5)
            .set("count", 3u64)
            .set("ok", true)
            .set("series", vec![1u64, 2, 3])
            .set("nested", Json::obj().set("empty", Json::Arr(Vec::new())));
        let text = j.render();
        assert!(text.contains("\"name\": \"overhead\""));
        assert!(text.contains("\"ratio\": 6.5"));
        assert!(text.contains("\"count\": 3"));
        assert!(text.contains("\"empty\": []"));
        assert!(text.ends_with("}\n"));
    }

    #[test]
    fn escapes_strings() {
        let j = Json::Str("a\"b\\c\nd\u{1}".to_string());
        assert_eq!(j.render(), "\"a\\\"b\\\\c\\nd\\u0001\"\n");
    }

    #[test]
    fn integral_floats_render_without_point() {
        assert_eq!(Json::Num(1e9).render(), "1000000000\n");
        assert_eq!(Json::Num(0.25).render(), "0.25\n");
    }

    #[test]
    fn parse_round_trips_render() {
        let j = Json::obj()
            .set("name", "run")
            .set("wall", 1.5)
            .set("n", 42u64)
            .set("neg", -3i64)
            .set("null", Json::Null)
            .set("flags", vec![true, false])
            .set("text", "line1\nline2\t\"quoted\" \\slash ünïcödé")
            .set(
                "workers",
                Json::Arr(vec![Json::obj().set("id", 0u64), Json::obj().set("id", 1u64)]),
            );
        let parsed = parse(&j.render()).expect("round trip");
        assert_eq!(parsed, j);
    }

    #[test]
    fn parse_accessors() {
        let j = parse("{\"a\": [1, 2.5], \"b\": {\"c\": \"x\"}}").unwrap();
        assert_eq!(j.get("a").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(j.get("a").unwrap().as_arr().unwrap()[0].as_u64(), Some(1));
        assert_eq!(j.get("b").unwrap().get("c").unwrap().as_str(), Some("x"));
        assert!(j.get("missing").is_none());
    }

    #[test]
    fn parse_unicode_escapes() {
        assert_eq!(
            parse("\"\\u0041\\u00e9\\ud83d\\ude00\"").unwrap(),
            Json::Str("Aé😀".to_string())
        );
    }

    #[test]
    fn parse_scientific_notation() {
        assert_eq!(parse("1e3").unwrap(), Json::Num(1000.0));
        assert_eq!(parse("-2.5E-1").unwrap(), Json::Num(-0.25));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("tru").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("\"\\ud800\"").is_err());
    }
}
