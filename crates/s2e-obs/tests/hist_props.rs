//! Seeded property suite for the log2-bucketed latency histograms
//! (DESIGN.md §16): bucketing brackets every value, merging shards is
//! exactly the histogram of the concatenated samples, snapshot deltas
//! are the histogram of the samples in between, and every quantile
//! estimate shares a bucket with the brute-force sorted answer (so the
//! two differ by at most the factor-two bucket width).

use s2e_obs::{bucket_hi, bucket_index, bucket_lo, AtomicHistogram, HistogramSnapshot, HIST_BUCKETS};
use s2e_prng::SplitMix64;

/// A sample with a random magnitude: uniform bits shifted by a uniform
/// amount, so every bucket (tiny and huge) gets exercised.
fn arbitrary_value(rng: &mut SplitMix64) -> u64 {
    let shift = rng.below(64) as u32;
    rng.next_u64() >> shift
}

fn hist_of(samples: &[u64]) -> HistogramSnapshot {
    let h = AtomicHistogram::new();
    for &v in samples {
        h.record(v);
    }
    h.snapshot()
}

#[test]
fn bucketing_brackets_every_value() {
    let mut rng = SplitMix64::new(0x4157_0001);
    for _ in 0..20_000 {
        let v = arbitrary_value(&mut rng);
        let i = bucket_index(v);
        assert!(i < HIST_BUCKETS);
        assert!(
            v >= bucket_lo(i),
            "{v} below bucket {i} lo {}",
            bucket_lo(i)
        );
        if i < HIST_BUCKETS - 1 {
            assert!(v < bucket_hi(i), "{v} at/above bucket {i} hi {}", bucket_hi(i));
        }
        // Monotone: a larger value never lands in an earlier bucket.
        assert!(bucket_index(v.saturating_add(1)) >= i);
    }
    // Exhaustive at the power-of-two boundaries, where an off-by-one in
    // the leading_zeros arithmetic would hide.
    for b in 1..HIST_BUCKETS - 1 {
        let lo = bucket_lo(b);
        let hi = bucket_hi(b);
        assert_eq!(bucket_index(lo), b);
        assert_eq!(bucket_index(hi - 1), b);
        assert_eq!(bucket_index(hi), b + 1);
    }
    assert_eq!(bucket_index(0), 0);
    assert_eq!(bucket_index(u64::MAX), HIST_BUCKETS - 1);
}

#[test]
fn merge_of_shards_equals_histogram_of_concatenation() {
    let mut rng = SplitMix64::new(0x4157_0002);
    for _ in 0..200 {
        let shards = 1 + rng.index(6);
        let mut all = Vec::new();
        let mut merged = HistogramSnapshot::default();
        for _ in 0..shards {
            let n = rng.index(200);
            let samples: Vec<u64> = (0..n).map(|_| arbitrary_value(&mut rng)).collect();
            merged.merge(&hist_of(&samples));
            all.extend(samples);
        }
        let direct = hist_of(&all);
        assert_eq!(merged, direct);
        assert_eq!(merged.count(), all.len() as u64);
        assert_eq!(merged.approx_sum(), direct.approx_sum());
    }
}

#[test]
fn snapshot_delta_is_the_histogram_of_the_interval() {
    let mut rng = SplitMix64::new(0x4157_0003);
    for _ in 0..200 {
        let h = AtomicHistogram::new();
        let before: Vec<u64> = (0..rng.index(300)).map(|_| arbitrary_value(&mut rng)).collect();
        for &v in &before {
            h.record(v);
        }
        let earlier = h.snapshot();
        let between: Vec<u64> = (0..rng.index(300)).map(|_| arbitrary_value(&mut rng)).collect();
        for &v in &between {
            h.record(v);
        }
        let later = h.snapshot();
        assert_eq!(later.delta(&earlier), hist_of(&between));
    }
}

#[test]
fn quantiles_bracket_the_brute_force_answer() {
    let mut rng = SplitMix64::new(0x4157_0004);
    for round in 0..300 {
        let n = 1 + rng.index(1_000);
        // Cap below the overflow bucket so the factor-two claim is
        // meaningful (the overflow bucket's width is unbounded).
        let samples: Vec<u64> =
            (0..n).map(|_| arbitrary_value(&mut rng) >> 2).collect();
        let hist = hist_of(&samples);
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for &q in &[0.5, 0.9, 0.99] {
            let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
            let truth = sorted[rank - 1];
            let bucket = hist.quantile_bucket(q).unwrap();
            assert_eq!(
                bucket,
                bucket_index(truth),
                "round {round} q {q}: estimate bucket {bucket} vs true sample {truth} \
                 (bucket {})",
                bucket_index(truth)
            );
            let estimate = hist.quantile(q).unwrap();
            // Same bucket ⇒ both inside [lo, hi): at most a factor of
            // two apart (exact for the zero bucket).
            assert!(estimate >= bucket_lo(bucket));
            if bucket < HIST_BUCKETS - 1 {
                assert!(estimate < bucket_hi(bucket));
            }
            if truth == 0 {
                assert_eq!(estimate, 0);
            } else {
                let ratio = estimate.max(truth) as f64 / estimate.min(truth).max(1) as f64;
                assert!(
                    ratio <= 2.0,
                    "round {round} q {q}: estimate {estimate} vs truth {truth} (ratio {ratio})"
                );
            }
        }
    }
}
