//! Distributed-exploration identity gate (DESIGN.md §17): coordinator
//! + 2 worker processes on localhost vs `explore_parallel`, on the
//! 91C111-LC corpus.
//!
//! Both arms run the identical guest recipe (`s2e_dist::guest`) to
//! exhaustion, so the explored path tree — not the schedule — is the
//! only thing being compared. The gate demands:
//!
//! * bit-identical sorted path-digest multisets across the two tiers,
//! * identical path counts, fork counts, and covered-block sets,
//! * the global conservation invariant
//!   `exports == steals + reclaims + queue_leftover` on the
//!   distributed ledger (exhaustive ⇒ leftover 0 on both arms).
//!
//! Per-state integrity across the wire is enforced inside the run:
//! every export is evicted with verification on, so the compact state
//! carries a fingerprint that `rehydrate` asserts in the importing
//! process. Writes `results/dist_explore.json`; `--smoke` is the
//! verify.sh gate-11 entry point (same arms, same assertions).
//!
//! This binary is also its own worker executable: the coordinator arm
//! re-executes it with `--role worker`.

use bench::json::Json;
use bench::timing::workspace_root;
use s2e_core::parallel::{explore_parallel, ParallelConfig, ParallelReport, WorkerContext};
use s2e_core::{ConsistencyModel, Engine};
use s2e_dist::{Coordinator, DistReport, JobSpec};
use std::process::{Child, Command, Stdio};

const GUEST: &str = "91c111";
const MODEL: ConsistencyModel = ConsistencyModel::Lc;
const WORKERS: usize = 2;
const MAX_STEPS: u64 = 5_000_000;

fn build_worker(ctx: &WorkerContext) -> Engine {
    let (machine, config) = s2e_dist::guest::build(GUEST, MODEL).unwrap();
    let mut e = ctx.engine(machine, config);
    s2e_dist::guest::inject(&mut e, GUEST).unwrap();
    e.set_retain_terminated(true);
    e
}

fn run_in_process() -> ParallelReport {
    let report = explore_parallel(&ParallelConfig::new(WORKERS, MAX_STEPS), build_worker);
    assert_eq!(report.queue_leftover, 0, "in-process arm must run to exhaustion");
    report
}

fn spawn_worker(addr: &str, worker: usize) -> Child {
    Command::new(std::env::current_exe().unwrap())
        .args(["--role", "worker", "--addr", addr, "--worker", &worker.to_string()])
        .stdout(Stdio::null())
        .spawn()
        .expect("spawn worker process")
}

fn run_distributed() -> (DistReport, u64) {
    let coordinator = Coordinator::bind("127.0.0.1:0").expect("bind coordinator");
    let addr = coordinator.addr().unwrap().to_string();
    let mut children: Vec<Child> = (0..WORKERS).map(|w| spawn_worker(&addr, w)).collect();
    let spec = JobSpec::new(GUEST, MODEL, MAX_STEPS, WORKERS as u32);
    let mut feed_lines = 0u64;
    let result = coordinator.run_job(&spec, Some(|_line: &str| feed_lines += 1));
    for c in &mut children {
        let status = c.wait().expect("wait worker process");
        assert!(status.success(), "worker process failed: {status:?}");
    }
    let report = result.expect("distributed run");
    (report, feed_lines)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--role") {
        assert_eq!(args.get(i + 1).map(String::as_str), Some("worker"));
        let addr = &args[args.iter().position(|a| a == "--addr").unwrap() + 1];
        let worker: usize = args[args.iter().position(|a| a == "--worker").unwrap() + 1]
            .parse()
            .unwrap();
        s2e_dist::run_worker(addr, worker).expect("worker run");
        return;
    }
    let smoke = args.iter().any(|a| a == "--smoke");

    let par = run_in_process();
    let (dist, feed_lines) = run_distributed();

    // The identity bar: same path multiset, bit for bit. Diff the
    // multisets before asserting so a gate failure names the paths.
    if dist.path_digests != par.path_digests {
        let mut only_dist = dist.path_digests.clone();
        let mut only_par = par.path_digests.clone();
        for d in &par.path_digests {
            if let Some(i) = only_dist.iter().position(|x| x == d) {
                only_dist.remove(i);
            }
        }
        for d in &dist.path_digests {
            if let Some(i) = only_par.iter().position(|x| x == d) {
                only_par.remove(i);
            }
        }
        panic!(
            "path digests diverge: {} paths only in distributed {only_dist:x?}, \
             {} only in-process {only_par:x?}",
            only_dist.len(),
            only_par.len()
        );
    }
    assert_eq!(dist.total_paths, par.total_paths as u64, "path counts diverge");
    assert_eq!(dist.forks, par.stats.forks, "fork counts diverge");
    let mut par_blocks: Vec<u32> = par.covered_blocks.iter().copied().collect();
    par_blocks.sort_unstable();
    assert_eq!(dist.covered_blocks, par_blocks, "covered blocks diverge");

    // The global ledger (run_job checked it too; assert loudly here).
    s2e_dist::coordinator::check_conservation(&dist).expect("conservation invariant");
    assert_eq!(dist.queue_leftover, 0, "exhaustive run strands nothing");
    assert!(dist.snapshots_relayed > 0, "merged feed must carry snapshots");
    assert_eq!(dist.snapshots_relayed, feed_lines, "every snapshot reaches the feed");

    let out = Json::obj()
        .set("experiment", "dist_explore")
        .set("guest", GUEST)
        .set("model", MODEL.name())
        .set("workers", WORKERS as u64)
        .set("smoke", smoke)
        .set("paths", dist.total_paths)
        .set("path_digests_identical", dist.path_digests == par.path_digests)
        .set("covered_blocks", dist.covered_blocks.len() as u64)
        .set("exports", dist.exports)
        .set("steals", dist.steals)
        .set("reclaims", dist.reclaims)
        .set("queue_leftover", dist.queue_leftover)
        .set("evictions", dist.evictions)
        .set("rehydrations", dist.rehydrations)
        .set("cache_entries", dist.cache_entries)
        .set("cache_imports", dist.cache_imports)
        .set("snapshots_relayed", dist.snapshots_relayed)
        .set("steps_used_dist", dist.steps_used)
        .set("wall_ms_dist", dist.wall_ms)
        .set("wall_ms_in_process", par.wall_time.as_millis() as u64)
        .set("paths_in_process", par.total_paths)
        .set("exports_in_process", par.exports);
    let path = workspace_root().join("results/dist_explore.json");
    std::fs::create_dir_all(path.parent().unwrap()).unwrap();
    std::fs::write(&path, out.render()).unwrap();
    println!(
        "dist_explore: {} paths, digests identical across tiers, \
         {} exports ({} steals + {} reclaims), {} cache entries, wrote {}",
        dist.total_paths,
        dist.exports,
        dist.steals,
        dist.reclaims,
        dist.cache_entries,
        path.display()
    );
}
