//! Fig. 7 reproduction: basic-block coverage under each consistency
//! model for 91C111, PCnet, and the script interpreter.
//!
//! Paper shape: the weaker (more relaxed) the model, the higher the
//! coverage — RC-OC ≥ LC > SC-SE ≫ SC-UE; under SC-UE the concretized
//! inputs keep the driver from even loading (coverage ~5–14%). The one
//! exception is the interpreter under RC-OC, where unconstrained opcodes
//! strand exploration in crash paths.

use bench::{run_driver_experiment, run_script_experiment, Budget};
use s2e_core::ConsistencyModel;
use s2e_guests::drivers::{pcnet, smc91c111};

fn main() {
    let steps: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(30_000);
    let budget = Budget {
        max_steps: steps,
        ..Budget::default()
    };
    println!("Fig 7: coverage by consistency model ({steps}-step budget)");
    println!("(paper: PCnet 14-66%, 91C111 10-88%, weaker models cover more)");
    println!();
    let widths = [8, 10, 10, 10];
    bench::print_row(
        &["model".into(), "91C111".into(), "PCnet".into(), "script".into()],
        &widths,
    );
    let c111 = smc91c111::build();
    let pc = pcnet::build();
    for model in [
        ConsistencyModel::RcOc,
        ConsistencyModel::Lc,
        ConsistencyModel::ScSe,
        ConsistencyModel::ScUe,
    ] {
        let a = run_driver_experiment(&c111, model, &budget);
        let b = run_driver_experiment(&pc, model, &budget);
        let c = run_script_experiment(model, &budget);
        bench::print_row(
            &[
                model.name().into(),
                format!("{:.0}%", 100.0 * a.coverage()),
                format!("{:.0}%", 100.0 * b.coverage()),
                format!("{:.0}%", 100.0 * c.coverage()),
            ],
            &widths,
        );
    }
}
