//! Table 5 reproduction: basic-block coverage of RevNIC (single-path
//! concrete baseline) vs REV+ (multi-path RC-OC tracer) on the four
//! drivers, under a fixed exploration budget.
//!
//! Paper shape: REV+ beats RevNIC on every driver by a few percentage
//! points (PCnet 59→66%, RTL8029 82→87%, 91C111 84→87%, RTL8139 84→86%).

use s2e_guests::drivers::all_drivers;
use s2e_tools::rev::{revnic_baseline, trace_driver, RevConfig};

fn main() {
    let steps: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(120_000);
    println!("Table 5: basic-block coverage, RevNIC baseline vs REV+ ({steps} steps)");
    println!("(paper: PCnet 59%/66%, RTL8029 82%/87%, 91C111 84%/87%, RTL8139 84%/86%)");
    println!();
    let widths = [10, 8, 10, 8, 12];
    bench::print_row(
        &[
            "driver".into(),
            "blocks".into(),
            "RevNIC".into(),
            "REV+".into(),
            "improvement".into(),
        ],
        &widths,
    );
    for driver in all_drivers() {
        let total = driver.total_blocks();
        let baseline = revnic_baseline(&driver, 8, 0x5e2e); // 8 runs x 50k steps
        let rev = trace_driver(
            &driver,
            &RevConfig {
                max_steps: steps,
                ..RevConfig::default()
            },
        );
        let base_pct = 100.0 * baseline.len() as f64 / total as f64;
        let rev_pct = 100.0 * rev.recovered.blocks.len() as f64 / total as f64;
        bench::print_row(
            &[
                driver.name.into(),
                total.to_string(),
                format!("{base_pct:.0}%"),
                format!("{rev_pct:.0}%"),
                format!("{:+.0}%", rev_pct - base_pct),
            ],
            &widths,
        );
    }
}
