//! Live-telemetry overhead gate (DESIGN.md §16): the sharded metrics
//! registry, delta sampler, and scrape endpoint must be cheap enough to
//! leave on (≤2% wall clock with sampling enabled) and must never
//! change what the engine explores.
//!
//! Four timed arms run the `parallel_scaling` stress guest, interleaved
//! round-robin with a min-wall estimator:
//!
//! - `off` / `off2` — telemetry absent (`explore_parallel_live` with
//!   `None`), run twice: the pair is an A/A comparison whose delta is
//!   the measurement noise floor;
//! - `sampling` — registry + 10 ms delta sampler streaming JSONL. The
//!   sampling-vs-off delta is the overhead asserted (full mode only);
//! - `endpoint` — sampling plus the TCP scrape endpoint under a
//!   concurrent `/metrics` + `/report` polling client (reported, not
//!   asserted: scrape cost belongs to the scraper).
//!
//! Every arm — and both schedulers, checked separately — must produce a
//! bit-identical path set: same path count, same fork/state counters,
//! same covered-block set. After the timed arms, an artifact arm streams
//! `results/run_live.jsonl` and asserts the end-of-run contract: the
//! final JSONL line's cumulative counters exactly equal the
//! `RunReport` values for every [`runreport_twins`] pair, plus the
//! documented composites (`dbt.hits`, the seen-blocks upper bound).
//!
//! Writes `results/telemetry_overhead.json`. `--smoke` shrinks the
//! guest and skips the timing assertion (CI noise), keeping identity
//! and twin-equality asserted — this is verify.sh gate 10.

use bench::json::Json;
use bench::timing::workspace_root;
use s2e_core::parallel::{
    explore_parallel_live, ParallelConfig, ParallelReport, SchedulerKind, WorkerContext,
};
use s2e_core::selectors::make_mem_symbolic;
use s2e_core::{build_run_report, runreport_twins, ConsistencyModel, Engine, EngineConfig};
use s2e_obs::{json, Counter, LiveConfig, LiveSummary, LiveTelemetry, MetricsSnapshot};
use s2e_vm::asm::{Assembler, Program};
use s2e_vm::isa::reg;
use s2e_vm::machine::Machine;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const INPUT: u32 = 0x8000;
const MAX_STEPS: u64 = 5_000_000;
const WORKERS: usize = 4;
/// Sampling-vs-off wall-clock overhead bound asserted in full mode.
const MAX_OVERHEAD: f64 = 0.02;
/// Noisy-container retries before the full-mode assertion gives up.
const ATTEMPTS: usize = 3;
/// Straight-line filler per block (see obs_overhead: branch-only blocks
/// would magnify per-block costs past anything a real guest sees).
const BLOCK_FILLER: u32 = 12;
/// Delta-snapshot cadence for the timed sampling arms — twice the
/// shipped default (50 ms), so the gate bounds a harsher-than-default
/// case. Each tick is fixed work (snapshot + render + write) that on a
/// single-core host timeshares with the workers, so the bound must be
/// read per-tick, not per-sample.
const SAMPLE_EVERY: Duration = Duration::from_millis(25);

/// The `parallel_scaling` stress guest: byte 0 gates a binary tree over
/// `tree_bytes` further bytes, every branch double-validated. 2^n + 1
/// paths.
fn guest(tree_bytes: u32) -> Program {
    let mut a = Assembler::new(0x2000);
    a.movi(reg::R1, INPUT);
    a.movi(reg::R6, 128);
    a.ld8(reg::R2, reg::R1, 0);
    a.movi(reg::R3, 8);
    a.bltu(reg::R2, reg::R3, "deep");
    a.halt_code(1);
    a.label("deep");
    for i in 1..=tree_bytes {
        a.ld8(reg::R2, reg::R1, i);
        for _ in 0..BLOCK_FILLER {
            a.addi(reg::R8, reg::R8, 1);
        }
        a.bltu(reg::R2, reg::R6, &format!("lo{i}"));
        a.bltu(reg::R2, reg::R6, "unreachable");
        a.addi(reg::R7, reg::R7, 1);
        a.jmp(&format!("join{i}"));
        a.label(&format!("lo{i}"));
        a.bgeu(reg::R2, reg::R6, "unreachable");
        a.label(&format!("join{i}"));
    }
    a.halt_code(2);
    a.label("unreachable");
    a.halt_code(99);
    a.finish()
}

fn worker_engine(ctx: &WorkerContext, tree_bytes: u32) -> Engine {
    let mut m = Machine::new();
    m.load(&guest(tree_bytes));
    let mut e = ctx.engine(m, EngineConfig::with_model(ConsistencyModel::ScSe));
    let id = e.sole_state().unwrap();
    let b = e.builder_arc();
    make_mem_symbolic(e.state_mut(id).unwrap(), &b, INPUT, 1 + tree_bytes, "in");
    e
}

fn config(scheduler: SchedulerKind) -> ParallelConfig {
    let mut cfg = ParallelConfig::new(WORKERS, MAX_STEPS);
    // Small batches and a tiny hoard cap force real migration, so the
    // steal/park instrumentation is on the measured path.
    cfg.batch = 8;
    cfg.max_local_states = 2;
    cfg.scheduler = scheduler;
    cfg
}

#[derive(Clone, Copy, PartialEq)]
enum Arm {
    Off,
    Sampling,
    Endpoint,
}

fn run_arm(
    arm: Arm,
    scheduler: SchedulerKind,
    tree_bytes: u32,
    jsonl: Option<PathBuf>,
) -> (f64, ParallelReport, Option<LiveSummary>) {
    let cfg = config(scheduler);
    if arm == Arm::Off {
        let started = Instant::now();
        let report = explore_parallel_live(&cfg, None, |ctx| worker_engine(ctx, tree_bytes));
        return (started.elapsed().as_secs_f64(), report, None);
    }
    let live = LiveTelemetry::start(LiveConfig {
        workers: WORKERS,
        sample_interval: SAMPLE_EVERY,
        jsonl_path: jsonl,
        serve_addr: (arm == Arm::Endpoint).then(|| "127.0.0.1:0".to_string()),
    })
    .expect("telemetry start");

    // The endpoint arm runs under concurrent scrape load: a client
    // thread polling both routes for the whole run.
    let stop = Arc::new(AtomicBool::new(false));
    let scraper = live.serve_addr().map(|addr| {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let addr = addr.to_string();
            let mut scrapes = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let metrics = s2e_obs::http_get(&addr, "/metrics").expect("/metrics scrape");
                assert!(metrics.contains("s2e_engine_blocks_executed"), "exposition shape");
                let report = s2e_obs::http_get(&addr, "/report").expect("/report scrape");
                assert!(report.contains("counters"), "report shape");
                scrapes += 1;
                std::thread::sleep(Duration::from_millis(10));
            }
            scrapes
        })
    });

    let started = Instant::now();
    let report =
        explore_parallel_live(&cfg, Some(&live), |ctx| worker_engine(ctx, tree_bytes));
    let wall = started.elapsed().as_secs_f64();

    stop.store(true, Ordering::Relaxed);
    if let Some(t) = scraper {
        let scrapes = t.join().expect("scraper thread");
        assert!(scrapes > 0, "endpoint arm must observe at least one scrape");
    }
    let summary = live.finish().expect("telemetry finish");
    (wall, report, Some(summary))
}

/// What must be bit-identical across arms: the explored path set and
/// the fork structure that produced it.
fn fingerprint(r: &ParallelReport) -> (usize, u64, u64, Vec<u32>) {
    let mut covered: Vec<u32> = r.covered_blocks.iter().copied().collect();
    covered.sort_unstable();
    (r.total_paths, r.stats.forks, r.stats.states_created, covered)
}

/// The end-of-run contract: every registry counter with a RunReport
/// twin carries exactly the report's value, both in the final merged
/// snapshot and in the last JSONL line on disk.
fn assert_snapshot_identity(report: &ParallelReport, snap: &MetricsSnapshot, jsonl: &PathBuf) {
    let run_report = build_run_report(report, None);
    for (counter, section, key) in runreport_twins() {
        let want = run_report
            .section(section)
            .and_then(|s| s.get(key))
            .unwrap_or_else(|| panic!("report missing twin {section}.{key}"));
        let got = snap.counter(counter) as f64;
        assert_eq!(
            got,
            want,
            "registry {} = {got} but RunReport {section}.{key} = {want}",
            counter.name()
        );
    }
    // Documented composites (the three live-only counters).
    let dbt_hits = run_report.section("dbt").and_then(|s| s.get("hits")).unwrap();
    assert_eq!(
        (snap.counter(Counter::DbtSharedHits) + snap.counter(Counter::DbtLocalHits)) as f64,
        dbt_hits,
        "dbt.hits must equal shared + local components"
    );
    let covered = run_report.section("parallel").and_then(|s| s.get("covered_blocks")).unwrap();
    assert!(
        snap.counter(Counter::EngineSeenBlocks) as f64 >= covered,
        "per-worker seen-blocks sum is an upper bound on the coverage union"
    );

    // The file on disk says the same thing: its final line is rendered
    // from the post-flush snapshot.
    let text = std::fs::read_to_string(jsonl).expect("run_live.jsonl readable");
    let last = text.lines().rev().find(|l| !l.trim().is_empty()).expect("final line");
    let line = json::parse(last).expect("final line parses");
    assert_eq!(line.get("final").and_then(|v| v.as_bool()), Some(true));
    let counters = line.get("counters").expect("counters object");
    for (counter, section, key) in runreport_twins() {
        let want = run_report.section(section).and_then(|s| s.get(key)).unwrap();
        let got = counters
            .get(counter.name())
            .and_then(|v| v.as_f64())
            .unwrap_or_else(|| panic!("final line missing {}", counter.name()));
        assert_eq!(
            got,
            want,
            "run_live.jsonl final {} = {got} but RunReport {section}.{key} = {want}",
            counter.name()
        );
    }
}

/// Runs all four arms `reps` times round-robin; returns per-arm min
/// wall seconds. Path identity is asserted on every rep.
fn run_timed_arms(tree_bytes: u32, reps: usize, scratch: &PathBuf) -> [f64; 4] {
    let arms = [Arm::Off, Arm::Off, Arm::Sampling, Arm::Endpoint];
    let mut walls = [f64::INFINITY; 4];
    let mut baseline_print: Option<(usize, u64, u64, Vec<u32>)> = None;
    for rep in 0..=reps {
        for (i, &arm) in arms.iter().enumerate() {
            let jsonl = (arm != Arm::Off).then(|| scratch.clone());
            let (wall, report, _) = run_arm(arm, SchedulerKind::Deque, tree_bytes, jsonl);
            let print = fingerprint(&report);
            match &baseline_print {
                None => baseline_print = Some(print),
                Some(base) => assert_eq!(
                    &print, base,
                    "arm {i} rep {rep}: telemetry changed the explored path set"
                ),
            }
            if rep > 0 {
                // rep 0 is the warmup round: caches, allocator, page-in.
                walls[i] = walls[i].min(wall);
            }
        }
    }
    walls
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    // Full mode needs a run long enough to measure steady-state
    // sampling cost rather than per-run fixed costs (handle setup,
    // first sampler tick, final flush): 2^12 + 1 paths is ~130 ms,
    // several sampler ticks deep.
    let (tree_bytes, reps) = if smoke { (5, 2) } else { (12, 6) };
    let expected_paths = (1usize << tree_bytes) + 1;
    let cpus = std::thread::available_parallelism().map_or(1, usize::from);
    let started = Instant::now();
    let root = workspace_root();
    std::fs::create_dir_all(root.join("results")).unwrap();
    let scratch = std::env::temp_dir().join("s2e-telemetry-overhead-scratch.jsonl");

    // Path identity under telemetry, per scheduler (the timed arms
    // re-check the deque scheduler every rep; this pins the injector).
    for scheduler in [SchedulerKind::Deque, SchedulerKind::Injector] {
        let (_, plain, _) = run_arm(Arm::Off, scheduler, tree_bytes, None);
        let (_, live, _) = run_arm(Arm::Sampling, scheduler, tree_bytes, Some(scratch.clone()));
        assert_eq!(plain.total_paths, expected_paths, "path count ({scheduler:?})");
        assert_eq!(
            fingerprint(&plain),
            fingerprint(&live),
            "telemetry changed the explored path set ({scheduler:?})"
        );
    }

    let mut attempts = Vec::new();
    let mut final_overhead = f64::INFINITY;
    let mut final_endpoint_overhead = f64::INFINITY;
    let mut final_noise = 0.0;
    for attempt in 0..if smoke { 1 } else { ATTEMPTS } {
        let [off_a, off_b, sampling, endpoint] = run_timed_arms(tree_bytes, reps, &scratch);
        let off = off_a.min(off_b);
        let overhead = (sampling - off) / off;
        let endpoint_overhead = (endpoint - off) / off;
        let noise = (off_a - off_b).abs() / off;
        println!(
            "attempt {attempt}: off {off:.4}s, sampling {sampling:.4}s, endpoint \
             {endpoint:.4}s -> overhead {:+.2}% / {:+.2}% (A/A noise {:.2}%)",
            overhead * 100.0,
            endpoint_overhead * 100.0,
            noise * 100.0,
        );
        attempts.push(
            Json::obj()
                .set("off_a_seconds", off_a)
                .set("off_b_seconds", off_b)
                .set("sampling_seconds", sampling)
                .set("endpoint_seconds", endpoint)
                .set("overhead", overhead)
                .set("endpoint_overhead", endpoint_overhead)
                .set("aa_noise", noise),
        );
        final_overhead = overhead;
        final_endpoint_overhead = endpoint_overhead;
        final_noise = noise;
        // An attempt passes when the sampling delta is within the
        // bound, or when it cannot be resolved against that attempt's
        // own A/A noise floor — this is what the off/off pair is for:
        // a single-core CI box can show same-vs-same deltas above 2%,
        // and no measurement can distinguish overhead below its noise.
        if overhead <= MAX_OVERHEAD.max(noise) {
            break;
        }
    }
    if !smoke {
        assert!(
            final_overhead <= MAX_OVERHEAD.max(final_noise),
            "telemetry sampling overhead {:.2}% exceeds {:.0}% (and the {:.2}% A/A noise \
             floor) after {ATTEMPTS} attempts",
            final_overhead * 100.0,
            MAX_OVERHEAD * 100.0,
            final_noise * 100.0,
        );
    }

    // Artifact arm: stream the real results/run_live.jsonl with the
    // endpoint up, then assert the end-of-run equality contract.
    let jsonl = root.join("results/run_live.jsonl");
    let (_, report, summary) =
        run_arm(Arm::Endpoint, SchedulerKind::Deque, tree_bytes, Some(jsonl.clone()));
    assert_eq!(report.total_paths, expected_paths, "artifact-arm path count");
    let summary = summary.unwrap();
    assert!(summary.lines >= 1, "sampler must write at least the final line");
    assert_snapshot_identity(&report, &summary.final_snapshot, &jsonl);
    println!("wrote {} ({} lines)", jsonl.display(), summary.lines);

    std::fs::remove_file(&scratch).ok();
    let out = Json::obj()
        .set("mode", if smoke { "smoke" } else { "full" })
        .set("guest", Json::obj().set("tree_bytes", tree_bytes).set("paths", expected_paths))
        .set("workers", WORKERS)
        .set("reps", reps)
        .set("cpus", cpus)
        .set("sample_interval_ms", SAMPLE_EVERY.as_millis() as u64)
        .set("attempts", Json::Arr(attempts))
        .set("overhead", final_overhead)
        .set("endpoint_overhead", final_endpoint_overhead)
        .set("aa_noise", final_noise)
        .set("max_overhead", MAX_OVERHEAD)
        .set("overhead_asserted", !smoke)
        .set("paths_identical", true)
        .set("snapshot_identity_asserted", true)
        .set("live_lines", summary.lines)
        .set("total_seconds", started.elapsed().as_secs_f64());
    let path = root.join("results/telemetry_overhead.json");
    std::fs::write(&path, out.render()).unwrap();
    println!("wrote {}", path.display());
}
