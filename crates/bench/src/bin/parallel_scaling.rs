//! Work-stealing scaling experiment (DESIGN.md §8, §12): paths/sec,
//! migration traffic, scheduler-overhead phase shares, and cross-worker
//! solver-cache reuse at 1/2/4/8 workers on a deliberately imbalanced
//! guest — with both migration schedulers (per-worker deques and the
//! injector-queue baseline) run as ablation arms at every worker count,
//! plus the static-partition baseline the dynamic schedulers replaced.
//!
//! `--smoke` runs a reduced corpus and asserts the two schedulers
//! explore the identical path set (verify.sh gate 6); the full run
//! additionally measures the 8-worker point on the deep tree.
//!
//! Writes `results/parallel_scaling.json`.

use bench::json::Json;
use bench::timing::workspace_root;
use s2e_core::parallel::{
    explore_parallel, explore_static, partition_constraint, ParallelConfig, ParallelReport,
    SchedulerKind, WorkerContext,
};
use s2e_core::selectors::make_mem_symbolic;
use s2e_core::{ConsistencyModel, Engine, EngineConfig};
use s2e_expr::Width;
use s2e_obs::{ObsConfig, Phase};
use s2e_vm::asm::{Assembler, Program};
use s2e_vm::isa::reg;
use s2e_vm::machine::Machine;
use std::time::Instant;

const INPUT: u32 = 0x8000;
const MAX_STEPS: u64 = 5_000_000;
const BASELINE_WORKERS: usize = 4;

/// The load-imbalance stress guest: byte 0 gates a full binary tree over
/// bytes 1..=tree_bytes, so >99% of paths live below `byte0 < 8` — under
/// static 32-bit input partitioning that entire subtree lands on
/// worker 0.
///
/// After every branch the guest re-checks the same comparison (the
/// double-validation pattern real parsers exhibit). The re-check's
/// implied direction re-issues the exact constraint set the creating
/// fork already solved, so whichever worker owns the state answers it
/// from the query cache — cross-worker when the state migrated.
fn guest(tree_bytes: u32) -> Program {
    let mut a = Assembler::new(0x2000);
    a.movi(reg::R1, INPUT);
    a.movi(reg::R6, 128);
    a.ld8(reg::R2, reg::R1, 0);
    a.movi(reg::R3, 8);
    a.bltu(reg::R2, reg::R3, "deep");
    a.halt_code(1);
    a.label("deep");
    for i in 1..=tree_bytes {
        a.ld8(reg::R2, reg::R1, i);
        a.bltu(reg::R2, reg::R6, &format!("lo{i}"));
        // hi side: re-validate, then fall through to the join.
        a.bltu(reg::R2, reg::R6, "unreachable");
        a.addi(reg::R7, reg::R7, 1);
        a.jmp(&format!("join{i}"));
        a.label(&format!("lo{i}"));
        a.bgeu(reg::R2, reg::R6, "unreachable");
        a.label(&format!("join{i}"));
    }
    a.halt_code(2);
    a.label("unreachable");
    a.halt_code(99);
    a.finish()
}

fn stealing_worker(ctx: &WorkerContext, tree_bytes: u32) -> Engine {
    let mut m = Machine::new();
    m.load(&guest(tree_bytes));
    let mut e = ctx.engine(m, EngineConfig::with_model(ConsistencyModel::ScSe));
    let id = e.sole_state().unwrap();
    let b = e.builder_arc();
    make_mem_symbolic(e.state_mut(id).unwrap(), &b, INPUT, 1 + tree_bytes, "in");
    e
}

/// The old architecture: private caches, input space split by value
/// range of the gate byte. The gate condition `byte0 < 8` lies entirely
/// inside worker 0's quarter, which therefore owns every deep path.
fn static_worker(worker: usize, workers: usize, tree_bytes: u32) -> Engine {
    let mut m = Machine::new();
    m.load(&guest(tree_bytes));
    let mut e = Engine::new(m, EngineConfig::with_model(ConsistencyModel::ScSe));
    let id = e.sole_state().unwrap();
    let b = e.builder_arc();
    let vars = make_mem_symbolic(e.state_mut(id).unwrap(), &b, INPUT, 1 + tree_bytes, "in");
    let input32 = b.zext(vars[0].clone(), Width::W32);
    partition_constraint(e.state_mut(id).unwrap(), &b, &input32, worker, workers);
    e
}

fn scheduler_name(kind: SchedulerKind) -> &'static str {
    match kind {
        SchedulerKind::Deque => "deque",
        SchedulerKind::Injector => "injector",
    }
}

fn run_arm(workers: usize, kind: SchedulerKind, tree_bytes: u32) -> (ParallelReport, f64) {
    let mut cfg = ParallelConfig::new(workers, MAX_STEPS).with_scheduler(kind);
    // Recording costs <2% (see the obs_overhead gate) and yields the
    // phase breakdown the scheduler comparison is about.
    cfg.obs = ObsConfig::enabled();
    let started = Instant::now();
    let report = explore_parallel(&cfg, |ctx| stealing_worker(ctx, tree_bytes));
    (report, started.elapsed().as_secs_f64())
}

/// The schedule's critical path: the busiest worker's execution time.
/// On a machine with at least `workers` cores this *is* the wall clock;
/// on smaller machines (CI containers are often 1-core) threads
/// interleave and raw wall clock cannot distinguish schedulers, so the
/// bench reports both — plus a time-independent critical path in solver
/// queries, the dominant unit of exploration work (~100µs each here vs
/// ~1µs per translated block).
fn makespan_seconds(busy: &[f64]) -> f64 {
    busy.iter().copied().fold(0.0, f64::max)
}

/// Scheduler overhead: the share of all recorded worker time spent in
/// `Migrate` (export/steal/completion) or `Idle` (parked waiting for
/// work). The export heuristic exists to push this down.
fn migrate_idle_share(report: &ParallelReport) -> (f64, f64, f64) {
    let mut migrate = 0u64;
    let mut idle = 0u64;
    let mut total = 0u64;
    for w in &report.workers {
        let t = &w.timeline.totals;
        migrate += t.nanos[Phase::Migrate.index()];
        idle += t.nanos[Phase::Idle.index()];
        total += t.nanos.iter().sum::<u64>();
    }
    if total == 0 {
        return (0.0, 0.0, 0.0);
    }
    (
        migrate as f64 / total as f64,
        idle as f64 / total as f64,
        (migrate + idle) as f64 / total as f64,
    )
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    // Smoke keeps the tree small enough for a CI gate; the deque arm
    // still migrates (idle pressure makes exports eager), while the
    // injector arm only exports if live states overflow the hoard cap.
    let tree_bytes: u32 = if smoke { 5 } else { 8 };
    let worker_counts: &[usize] = if smoke { &[1, 2, 4] } else { &[1, 2, 4, 8] };
    let expected_paths = (1u64 << tree_bytes) + 1;
    let cpus = std::thread::available_parallelism().map_or(1, usize::from);
    let mut runs = Vec::new();
    let mut makespan_4w = 0.0;
    let mut critical_4w = 0u64;

    for &workers in worker_counts {
        let mut arm_paths = Vec::new();
        let mut arm_blocks = Vec::new();
        for kind in [SchedulerKind::Deque, SchedulerKind::Injector] {
            let name = scheduler_name(kind);
            let (report, wall) = run_arm(workers, kind, tree_bytes);
            let busy: Vec<f64> = report
                .workers
                .iter()
                .map(|w| w.stats.cpu_time.as_secs_f64())
                .collect();
            let makespan = makespan_seconds(&busy);
            let shared = &report.shared_cache;
            let queries: u64 = report.workers.iter().map(|w| w.solver_queries).sum();
            let shared_hits: u64 = report.workers.iter().map(|w| w.shared_query_hits).sum();
            let hit_rate = if queries == 0 {
                0.0
            } else {
                shared_hits as f64 / queries as f64
            };
            assert_eq!(
                report.total_paths as u64, expected_paths,
                "{name} at {workers}w explored a different path count"
            );
            assert_eq!(
                report.exports,
                report.steals + report.reclaims + report.queue_leftover,
                "{name} at {workers}w violated state conservation"
            );
            assert_eq!(
                report.queue_leftover, 0,
                "{name} at {workers}w stranded states on an exhaustive run"
            );
            arm_paths.push(report.total_paths);
            let mut blocks: Vec<u32> = report.covered_blocks.iter().copied().collect();
            blocks.sort_unstable();
            arm_blocks.push(blocks);
            let critical_queries = report
                .workers
                .iter()
                .map(|w| w.solver_queries)
                .max()
                .unwrap_or(0);
            let (migrate_share, idle_share, overhead_share) = migrate_idle_share(&report);
            if workers == BASELINE_WORKERS && kind == SchedulerKind::Deque {
                makespan_4w = makespan;
                critical_4w = critical_queries;
            }
            println!(
                "{name} {workers}w: {:.3}s wall, {:.3}s makespan, {} paths ({:.0} paths/s), \
                 {} steals + {} reclaims / {} exports, migrate+idle {:.2}% of recorded time, \
                 shared cache {}/{} hits ({:.1}% of {} queries)",
                wall,
                makespan,
                report.total_paths,
                report.total_paths as f64 / makespan,
                report.steals,
                report.reclaims,
                report.exports,
                overhead_share * 100.0,
                shared_hits,
                shared.entries,
                hit_rate * 100.0,
                queries,
            );
            runs.push(
                Json::obj()
                    .set("scheduler", name)
                    .set("workers", workers)
                    .set("wall_seconds", wall)
                    .set("makespan_seconds", makespan)
                    .set("critical_path_queries", critical_queries)
                    .set("paths", report.total_paths)
                    .set("paths_per_sec", report.total_paths as f64 / makespan)
                    .set("steals", report.steals)
                    .set("reclaims", report.reclaims)
                    .set("exports", report.exports)
                    .set("queue_leftover", report.queue_leftover)
                    .set("migrate_share", migrate_share)
                    .set("idle_share", idle_share)
                    .set("migrate_idle_share", overhead_share)
                    .set("solver_queries", queries)
                    .set("shared_cache_hits", shared_hits)
                    .set("shared_cache_entries", shared.entries)
                    .set("shared_cache_hit_rate", hit_rate)
                    .set("blocks_executed", report.stats.blocks_executed)
                    .set(
                        "per_worker",
                        Json::Arr(
                            report
                                .workers
                                .iter()
                                .map(|w| {
                                    Json::obj()
                                        .set("worker", w.worker)
                                        .set("paths", w.paths)
                                        .set("steals", w.steals)
                                        .set("reclaims", w.reclaims)
                                        .set("exports", w.exports)
                                        .set("solver_queries", w.solver_queries)
                                        .set("blocks", w.stats.blocks_executed)
                                })
                                .collect(),
                        ),
                    ),
            );
        }
        // The scheduler ablation gate: both arms must have explored the
        // identical path set — same count, same covered blocks.
        assert_eq!(
            arm_paths[0], arm_paths[1],
            "{workers}w: deque and injector path counts diverged"
        );
        assert_eq!(
            arm_blocks[0], arm_blocks[1],
            "{workers}w: deque and injector covered different blocks"
        );
    }

    // Static-partition baseline at the same worker count as the headline
    // stealing run: worker 0 owns the whole deep subtree, so the
    // schedule's critical path is essentially the entire exploration.
    let started = Instant::now();
    let reports = explore_static(BASELINE_WORKERS, MAX_STEPS, |worker, workers| {
        static_worker(worker, workers, tree_bytes)
    });
    let static_wall = started.elapsed().as_secs_f64();
    let static_paths: usize = reports.iter().map(|r| r.paths).sum();
    let static_busy: Vec<f64> = reports
        .iter()
        .map(|r| r.stats.cpu_time.as_secs_f64())
        .collect();
    let static_makespan = makespan_seconds(&static_busy);
    let static_queries: u64 = reports.iter().map(|r| r.solver_queries).sum();
    let static_critical = reports.iter().map(|r| r.solver_queries).max().unwrap_or(0);
    let worker0_share = reports[0].paths as f64 / static_paths as f64;
    println!(
        "static {BASELINE_WORKERS}w: {:.3}s wall, {:.3}s makespan, {} paths, {} queries, \
         worker 0 owns {:.1}% of paths",
        static_wall,
        static_makespan,
        static_paths,
        static_queries,
        worker0_share * 100.0,
    );
    let speedup_time = static_makespan / makespan_4w;
    let speedup = static_critical as f64 / critical_4w as f64;
    println!(
        "deque scheduler vs static partitioning at {BASELINE_WORKERS} workers: \
         {speedup:.2}x on the solver-query critical path \
         ({static_critical} vs {critical_4w} queries on the busiest worker), \
         {speedup_time:.2}x on measured per-worker time (this container has {cpus} \
         cpu(s), so measured times are contention-skewed; the query critical path \
         is what determines wall clock on >= {BASELINE_WORKERS} cores)"
    );

    let out = Json::obj()
        .set(
            "guest",
            Json::obj()
                .set("tree_bytes", tree_bytes)
                .set("feasible_paths", expected_paths)
                .set("imbalance", "all deep paths behind byte0 < 8"),
        )
        .set("smoke", smoke)
        .set("cpus", cpus)
        .set("runs", Json::Arr(runs))
        .set(
            "static_baseline",
            Json::obj()
                .set("workers", BASELINE_WORKERS)
                .set("wall_seconds", static_wall)
                .set("makespan_seconds", static_makespan)
                .set("paths", static_paths)
                .set("solver_queries", static_queries)
                .set("critical_path_queries", static_critical)
                .set("worker0_path_share", worker0_share),
        )
        .set("stealing_speedup_vs_static", speedup)
        .set("stealing_speedup_vs_static_measured_time", speedup_time);

    let path = workspace_root().join("results/parallel_scaling.json");
    std::fs::create_dir_all(path.parent().unwrap()).unwrap();
    std::fs::write(&path, out.render()).unwrap();
    println!("wrote {}", path.display());
    if smoke {
        println!("parallel_scaling smoke: ok (deque and injector arms identical)");
    }
}
