//! Observability overhead check (DESIGN.md §11): the phase timers and
//! event rings must be effectively free when disabled and cheap when
//! enabled, and must never change what the engine explores.
//!
//! Three timed arms run the same imbalanced work-stealing guest:
//!
//! - `baseline` — `ParallelConfig::new` untouched (observability off by
//!   default, i.e. the pre-instrumentation configuration);
//! - `off` — observability explicitly disabled. Baseline vs off is an
//!   A/A comparison whose delta estimates the measurement noise floor;
//! - `on` — full recording. On vs off is the overhead being asserted.
//!
//! Every arm must terminate the identical path count (observability can
//! never perturb exploration), and in full mode the on-vs-off wall-clock
//! delta must stay within 2%. A fourth untimed arm re-runs with
//! recording plus the `BugCheck` and `PerformanceProfile` analyzers and
//! emits the unified artifacts: `results/run_report.json` (parsed back
//! as a self-check) and `results/run_trace.json` (Chrome trace-event
//! format, loadable in `chrome://tracing` or Perfetto).
//!
//! Writes `results/obs_overhead.json`. `--smoke` shrinks the guest and
//! rep count and skips the timing assertion (CI containers are too
//! noisy for a 2% bound); path-identity is asserted in both modes.

use bench::json::Json;
use bench::timing::workspace_root;
use s2e_cache::HierarchyStats;
use s2e_core::analyzers::{BugCheck, PerformanceProfile, ProfileResults};
use s2e_core::parallel::{explore_parallel, ParallelConfig, ParallelReport, WorkerContext};
use s2e_core::selectors::make_mem_symbolic;
use s2e_core::{build_run_report, ConsistencyModel, Engine, EngineConfig};
use s2e_obs::{chrome_trace_report, ObsConfig, RunReport};
use s2e_vm::asm::{Assembler, Program};
use s2e_vm::isa::reg;
use s2e_vm::machine::Machine;
use std::sync::{Arc, Mutex};
use std::time::Instant;

const INPUT: u32 = 0x8000;
const MAX_STEPS: u64 = 5_000_000;
const WORKERS: usize = 4;
/// On-vs-off wall-clock overhead bound asserted in full mode.
const MAX_OVERHEAD: f64 = 0.02;
/// Noisy-container retries before the full-mode assertion gives up.
const ATTEMPTS: usize = 3;

/// Straight-line instructions of concrete work between branches, so
/// blocks have realistic bodies — with branch-only blocks (~1.4
/// instructions each) the per-*block* instrumentation cost is maximally
/// magnified and the overhead number means nothing for real guests.
const BLOCK_FILLER: u32 = 12;

/// The `parallel_scaling` stress guest: byte 0 gates a binary tree over
/// `tree_bytes` further bytes, every branch double-validated, so the run
/// exercises forking, migration, and cached re-solving. 2^n + 1 paths.
fn guest(tree_bytes: u32) -> Program {
    let mut a = Assembler::new(0x2000);
    a.movi(reg::R1, INPUT);
    a.movi(reg::R6, 128);
    a.ld8(reg::R2, reg::R1, 0);
    a.movi(reg::R3, 8);
    a.bltu(reg::R2, reg::R3, "deep");
    a.halt_code(1);
    a.label("deep");
    for i in 1..=tree_bytes {
        a.ld8(reg::R2, reg::R1, i);
        for _ in 0..BLOCK_FILLER {
            a.addi(reg::R8, reg::R8, 1);
        }
        a.bltu(reg::R2, reg::R6, &format!("lo{i}"));
        a.bltu(reg::R2, reg::R6, "unreachable");
        a.addi(reg::R7, reg::R7, 1);
        a.jmp(&format!("join{i}"));
        a.label(&format!("lo{i}"));
        a.bgeu(reg::R2, reg::R6, "unreachable");
        a.label(&format!("join{i}"));
    }
    a.halt_code(2);
    a.label("unreachable");
    a.halt_code(99);
    a.finish()
}

fn worker_engine(ctx: &WorkerContext, tree_bytes: u32) -> Engine {
    let mut m = Machine::new();
    m.load(&guest(tree_bytes));
    let mut e = ctx.engine(m, EngineConfig::with_model(ConsistencyModel::ScSe));
    let id = e.sole_state().unwrap();
    let b = e.builder_arc();
    make_mem_symbolic(e.state_mut(id).unwrap(), &b, INPUT, 1 + tree_bytes, "in");
    e
}

fn config(obs: ObsConfig) -> ParallelConfig {
    let mut cfg = ParallelConfig::new(WORKERS, MAX_STEPS);
    // Small batches and a tiny hoard cap force real migration, so the
    // Migrate/Idle instrumentation is actually on the measured path.
    cfg.batch = 8;
    cfg.max_local_states = 2;
    cfg.obs = obs;
    cfg
}

fn run_once(obs: ObsConfig, tree_bytes: u32) -> (f64, usize) {
    let report = explore_parallel(&config(obs), |ctx| worker_engine(ctx, tree_bytes));
    (report.wall_time.as_secs_f64(), report.total_paths)
}

/// Runs all three arms `reps` times, interleaved round-robin so slow
/// drift (thermal, container co-tenants) lands on every arm equally;
/// returns per-arm (min wall seconds, paths). The minimum is the
/// standard low-noise estimator for a deterministic workload: every rep
/// does identical work, so the fastest is the least-perturbed one.
fn run_arms(tree_bytes: u32, reps: usize) -> [(f64, usize); 3] {
    let arms = [
        ObsConfig::default(),
        ObsConfig {
            enabled: false,
            ..ObsConfig::default()
        },
        ObsConfig::enabled(),
    ];
    let mut walls = [f64::INFINITY; 3];
    let mut paths = [None; 3];
    for rep in 0..=reps {
        for (i, &obs) in arms.iter().enumerate() {
            let (wall, p) = run_once(obs, tree_bytes);
            if rep == 0 {
                continue; // warmup round: caches, allocator, page-in
            }
            walls[i] = walls[i].min(wall);
            if let Some(prev) = paths[i] {
                assert_eq!(p, prev, "path count varied across reps");
            }
            paths[i] = Some(p);
        }
    }
    [
        (walls[0], paths[0].unwrap()),
        (walls[1], paths[1].unwrap()),
        (walls[2], paths[2].unwrap()),
    ]
}

/// The untimed report arm: recording on, plus the analyzers that feed
/// the optional report sections.
fn run_report_arm(tree_bytes: u32) -> (ParallelReport, HierarchyStats) {
    let handles: Arc<Mutex<Vec<ProfileResults>>> = Arc::new(Mutex::new(Vec::new()));
    let handles_ref = Arc::clone(&handles);
    let report = explore_parallel(&config(ObsConfig::enabled()), move |ctx| {
        let mut e = worker_engine(ctx, tree_bytes);
        e.add_plugin(Box::new(BugCheck::new()));
        let (perf, results) = PerformanceProfile::new(None);
        e.add_plugin(Box::new(perf));
        handles_ref.lock().unwrap().push(results);
        e
    });
    let mut hierarchy = HierarchyStats::default();
    for worker_results in handles.lock().unwrap().iter() {
        for path in worker_results.lock().unwrap().iter() {
            hierarchy.merge(&path.hierarchy);
        }
    }
    (report, hierarchy)
}

fn write_artifacts(report: &ParallelReport, hierarchy: &HierarchyStats) -> RunReport {
    let run_report = build_run_report(report, Some(hierarchy));
    let root = workspace_root();
    std::fs::create_dir_all(root.join("results")).unwrap();
    let report_path = root.join("results/run_report.json");
    let text = run_report.render();
    std::fs::write(&report_path, &text).unwrap();
    let trace_path = root.join("results/run_trace.json");
    std::fs::write(&trace_path, chrome_trace_report(&run_report)).unwrap();
    println!("wrote {}", report_path.display());
    println!("wrote {}", trace_path.display());

    // Self-check: the emitted file must parse back into the same report.
    let parsed = RunReport::from_json(&std::fs::read_to_string(&report_path).unwrap())
        .expect("emitted run report must parse");
    assert_eq!(parsed, run_report, "run report must round-trip through its file");
    run_report
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (tree_bytes, reps) = if smoke { (5, 2) } else { (9, 6) };
    let expected_paths = (1usize << tree_bytes) + 1;
    let cpus = std::thread::available_parallelism().map_or(1, usize::from);
    let started = Instant::now();

    let mut attempts = Vec::new();
    let mut final_overhead = f64::INFINITY;
    let mut final_noise = 0.0;
    for attempt in 0..if smoke { 1 } else { ATTEMPTS } {
        let [(base_wall, base_paths), (off_wall, off_paths), (on_wall, on_paths)] =
            run_arms(tree_bytes, reps);

        assert_eq!(base_paths, expected_paths, "baseline path count");
        assert_eq!(off_paths, expected_paths, "observability-off path count");
        assert_eq!(
            on_paths, expected_paths,
            "recording must not change what is explored"
        );

        let overhead = (on_wall - off_wall) / off_wall;
        let noise = (base_wall - off_wall).abs() / off_wall;
        println!(
            "attempt {attempt}: baseline {base_wall:.4}s, off {off_wall:.4}s, \
             on {on_wall:.4}s -> overhead {:+.2}% (A/A noise {:.2}%)",
            overhead * 100.0,
            noise * 100.0,
        );
        attempts.push(
            Json::obj()
                .set("baseline_seconds", base_wall)
                .set("off_seconds", off_wall)
                .set("on_seconds", on_wall)
                .set("overhead", overhead)
                .set("aa_noise", noise),
        );
        final_overhead = overhead;
        final_noise = noise;
        if overhead <= MAX_OVERHEAD {
            break;
        }
    }
    if !smoke {
        assert!(
            final_overhead <= MAX_OVERHEAD,
            "observability overhead {:.2}% exceeds {:.0}% after {ATTEMPTS} attempts",
            final_overhead * 100.0,
            MAX_OVERHEAD * 100.0,
        );
    }

    let (report, hierarchy) = run_report_arm(tree_bytes);
    assert_eq!(report.total_paths, expected_paths, "report-arm path count");
    let run_report = write_artifacts(&report, &hierarchy);
    assert!(
        run_report.phases.busy().as_nanos() > 0,
        "phase breakdown must be populated"
    );
    assert_eq!(run_report.workers.len(), WORKERS, "one timeline per worker");
    assert!(
        run_report.workers.iter().any(|w| !w.events.is_empty()),
        "timelines must carry events"
    );

    let out = Json::obj()
        .set("mode", if smoke { "smoke" } else { "full" })
        .set("guest", Json::obj().set("tree_bytes", tree_bytes).set("paths", expected_paths))
        .set("workers", WORKERS)
        .set("reps", reps)
        .set("cpus", cpus)
        .set("attempts", Json::Arr(attempts))
        .set("overhead", final_overhead)
        .set("aa_noise", final_noise)
        .set("max_overhead", MAX_OVERHEAD)
        .set("overhead_asserted", !smoke)
        .set("paths_identical", true)
        .set("total_seconds", started.elapsed().as_secs_f64());
    let path = workspace_root().join("results/obs_overhead.json");
    std::fs::write(&path, out.render()).unwrap();
    println!("wrote {}", path.display());
}
