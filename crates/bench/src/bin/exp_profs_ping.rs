//! §6.1.3 reproduction (experiment 2): PROFS on ping.
//!
//! Paper shape: the analysis "does not find a bound on execution time,
//! and it points to a path that could hit an infinite loop" — the
//! record-route option with length 3. "Once we patched ping, we found
//! the performance envelope to be 1,645 to 129,086 executed
//! instructions."

use s2e_tools::profs::{profile_ping, ProfsConfig};

fn main() {
    let reply_len: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    let config = ProfsConfig {
        max_steps: 500_000,
        path_fuel: 8_000,
        ..ProfsConfig::default()
    };

    println!("PROFS / ping ({}-byte symbolic reply)", reply_len);
    println!();
    for (label, patched) in [("buggy", false), ("patched", true)] {
        let report = profile_ping(patched, reply_len, &config);
        let unbounded = report.unbounded_suspects().count();
        let completed = report.completed().count();
        print!("{label:>8}: {completed} bounded paths, {unbounded} unbounded suspect(s)");
        match report.instruction_envelope() {
            Some((lo, hi)) => println!(", envelope {lo}..{hi} instructions"),
            None => println!(),
        }
        if unbounded > 0 {
            println!(
                "          -> no upper bound found: a reply with a record-route option of\n             length 3 re-enters the option loop without advancing (the paper's bug)"
            );
        }
    }
}
