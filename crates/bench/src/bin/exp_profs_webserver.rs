//! §6.1.3 reproduction (experiment 3): page faults in the web server's
//! crypto module.
//!
//! Paper shape: "We found no page faults in the SSL code along any of
//! the paths, and only a constant number of them in gzip.dll" — i.e. the
//! page-fault count in the crypto region does not depend on the request,
//! so page faults are not a usable side channel.

use s2e_tools::profs::{profile_webserver, ProfsConfig};

fn main() {
    let len: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(6);
    let config = ProfsConfig {
        max_steps: 300_000,
        ..ProfsConfig::default()
    };
    let report = profile_webserver(len, &config);
    let completed = report.completed().count();
    println!("PROFS / web server ({len}-char symbolic request): {completed} paths");
    match report.page_fault_envelope() {
        Some((lo, hi)) if hi - lo <= 1 => {
            println!("page faults per path: {lo}..{hi} — constant across all requests");
            println!("=> no page-fault side channel in the crypto module (paper's conclusion)");
        }
        Some((lo, hi)) => {
            println!("page faults per path: {lo}..{hi} — input-dependent (side-channel risk!)");
        }
        None => println!("no completed paths within budget"),
    }
    if let Some((lo, hi)) = report.instruction_envelope() {
        println!("instruction envelope: {lo}..{hi}");
    }
    if let Some((lo, hi)) = report.cache_miss_envelope() {
        println!("cache-miss envelope:  {lo}..{hi}");
    }
}
