//! Table 6 reproduction: time to finish the exploration experiment under
//! each consistency model, for the 91C111 and PCnet drivers and the
//! script interpreter (the Lua analog).
//!
//! Paper shape (seconds): RC-OC and LC take similar, longest times (they
//! admit the most paths); SC-SE is shorter for PCnet; SC-UE finishes
//! almost immediately (concretized inputs stop the driver from loading).

use bench::{run_driver_experiment, run_script_experiment, Budget};
use s2e_core::ConsistencyModel;
use s2e_guests::drivers::{pcnet, smc91c111};

fn main() {
    let steps: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(30_000);
    let budget = Budget {
        max_steps: steps,
        ..Budget::default()
    };
    let models = [
        ConsistencyModel::RcOc,
        ConsistencyModel::Lc,
        ConsistencyModel::ScSe,
        ConsistencyModel::ScUe,
    ];
    println!("Table 6: exploration time by consistency model ({steps}-step budget)");
    println!("(paper, seconds: 91C111 1400/1600/1700/5 — PCnet 3300/3200/1300/7 — Lua 1103/1114/1148/-)");
    println!();
    let widths = [8, 14, 12, 10, 8];
    bench::print_row(
        &["model".into(), "target".into(), "time".into(), "paths".into(), "steps".into()],
        &widths,
    );
    let c111 = smc91c111::build();
    let pc = pcnet::build();
    for model in models {
        for (name, stats) in [
            ("91C111", run_driver_experiment(&c111, model, &budget)),
            ("PCnet", run_driver_experiment(&pc, model, &budget)),
            ("script", run_script_experiment(model, &budget)),
        ] {
            bench::print_row(
                &[
                    model.name().into(),
                    name.into(),
                    format!("{:.2}s", stats.time.as_secs_f64()),
                    stats.paths.to_string(),
                    stats.steps.to_string(),
                ],
                &widths,
            );
        }
    }
}
