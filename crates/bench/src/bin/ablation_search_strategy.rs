//! Ablation: how the path-selection strategy (§4.1's priority-based
//! selectors) affects time-to-bug and coverage for DDT+.
//!
//! The RTL8029 RX-overflow bug (B5) sits 30+ loop iterations deep —
//! depth-first finds it quickly, breadth-first pays for the whole
//! frontier first. MaxCoverage lands in between but wins on coverage.

use s2e_core::{BugKind, ConsistencyModel};
use s2e_guests::drivers::rtl8029;
use s2e_tools::ddt::{test_driver, DdtConfig, SearchKind};

fn main() {
    let steps: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(60_000);
    println!("Search-strategy ablation: DDT+ SC-SE on rtl8029 ({steps}-step budget)");
    println!();
    let widths = [14, 10, 10, 12, 10];
    bench::print_row(
        &[
            "strategy".into(),
            "found B5".into(),
            "steps".into(),
            "coverage".into(),
            "paths".into(),
        ],
        &widths,
    );
    for (name, search) in [
        ("depth-first", SearchKind::DepthFirst),
        ("breadth-first", SearchKind::BreadthFirst),
        ("random", SearchKind::Random(7)),
        ("max-coverage", SearchKind::MaxCoverage),
    ] {
        let d = rtl8029::build();
        let report = test_driver(
            &d,
            &DdtConfig {
                model: ConsistencyModel::ScSe,
                max_steps: steps,
                max_states: 128,
                search,
                ..DdtConfig::default()
            },
        );
        let found = report
            .distinct_bugs
            .iter()
            .any(|b| b.kind == BugKind::HeapOutOfBounds);
        bench::print_row(
            &[
                name.into(),
                if found { "yes" } else { "no" }.into(),
                report.steps.to_string(),
                format!("{:.0}%", 100.0 * report.coverage()),
                report.paths.to_string(),
            ],
            &widths,
        );
    }
}
