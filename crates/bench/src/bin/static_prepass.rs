//! Static pre-pass ablation: the load-time dataflow analyses (liveness,
//! symbolic-reachability taint, constant propagation) on vs. off, on the
//! 91C111 driver corpus and the script interpreter under both a relaxed
//! and a strict consistency model.
//!
//! The pre-pass is required to be a *pure* optimization, so the headline
//! assertions are equalities: identical terminated-path counts and
//! identical unit block coverage in both arms of every corpus. The win
//! is measured on top of that — instrumented instruction executions
//! (per-operand symbolic checks the lean dispatch path discharges
//! statically) and fork-feasibility solver queries both drop.
//!
//! Both arms pin the solver to the bare SAT core (no model pool, no
//! subsumption) so every answer has identical provenance and the
//! exploration schedule cannot diverge for solver-internal reasons.
//!
//! Writes `results/static_prepass.json`.
//!
//! `--smoke` runs the same corpora under a small budget with the same
//! equality assertions, plus an explicit iteration-bound check over
//! every bundled driver's analyses. This is the cheap gate
//! `scripts/verify.sh` runs.

use bench::json::Json;
use bench::timing::workspace_root;
use bench::{
    run_driver_experiment_configured, run_script_experiment_configured, Budget, ModelRunStats,
    PrepassMode,
};
use s2e_core::ConsistencyModel;
use s2e_guests::drivers::smc91c111;
use s2e_solver::SolverConfig;

/// Both arms run the bare SAT core: cache layers answer identically to
/// the core, but pinning them off keeps the two arms' solver behavior
/// trivially comparable.
fn solver_config() -> SolverConfig {
    SolverConfig {
        model_pool_size: 0,
        enable_subsumption: false,
        ..SolverConfig::default()
    }
}

/// Instructions that went through the per-operand symbolic check.
fn instrumented(s: &ModelRunStats) -> u64 {
    s.engine.total_instrs() - s.engine.lean_instrs
}

/// One arm's counters as a JSON object.
fn arm_json(s: &ModelRunStats) -> Json {
    Json::obj()
        .set("paths", s.paths)
        .set("covered_blocks", s.covered_blocks)
        .set("steps", s.steps)
        .set("instrs_concrete", s.engine.instrs_concrete)
        .set("instrs_symbolic", s.engine.instrs_symbolic)
        .set("instrumented_instrs", instrumented(s))
        .set("lean_instrs", s.engine.lean_instrs)
        .set("concrete_only_blocks", s.engine.concrete_only_blocks)
        .set("dead_writes_skipped", s.engine.dead_writes_skipped)
        .set("feasibility_probes_skipped", s.engine.feasibility_probes_skipped)
        .set("solver_queries", s.solver.queries)
        .set("core_solves", s.solver.core_solves)
        .set("solver_time_seconds", s.solver_time.as_secs_f64())
        .set("time_seconds", s.time.as_secs_f64())
}

/// Runs one corpus with the pre-pass off then on, asserts the equality
/// contract, prints the comparison row, and returns the JSON block plus
/// the on-arm stats for the aggregate assertions.
fn run_corpus(name: &str, run: impl Fn(PrepassMode) -> ModelRunStats) -> (Json, ModelRunStats) {
    let off = run(PrepassMode::Off);
    let on = run(PrepassMode::Base);
    assert_eq!(
        off.paths, on.paths,
        "{name}: terminated-path counts diverged with the pre-pass on"
    );
    assert_eq!(
        off.covered_blocks, on.covered_blocks,
        "{name}: unit block coverage diverged with the pre-pass on"
    );
    let widths = [26, 7, 9, 14, 14, 12, 12];
    bench::print_row(
        &[
            name.into(),
            format!("{}p", on.paths),
            format!("{}blk", on.covered_blocks),
            format!("instr {}", instrumented(&off)),
            format!("-> {}", instrumented(&on)),
            format!("q {}", off.solver.queries),
            format!("-> {}", on.solver.queries),
        ],
        &widths,
    );
    let json = Json::obj()
        .set("corpus", name)
        .set("off", arm_json(&off))
        .set("on", arm_json(&on))
        .set(
            "instrumented_drop",
            instrumented(&off).saturating_sub(instrumented(&on)),
        )
        .set(
            "solver_query_drop",
            off.solver.queries.saturating_sub(on.solver.queries),
        );
    (json, on)
}

/// Every bundled driver's analyses must converge within the per-pass
/// iteration bound (`analyze` already errors past the bound; the report
/// re-checks the totals explicitly).
fn assert_iteration_bounds() {
    for row in s2e_tools::deadcode::report() {
        assert!(
            row.iterations <= 3 * row.bound,
            "{}: pre-pass spent {} worklist pops against a per-pass bound of {}",
            row.name,
            row.iterations,
            row.bound
        );
    }
    println!("iteration bounds ok across all drivers");
}

fn run(budget: &Budget) -> Vec<(Json, ModelRunStats)> {
    let c111 = smc91c111::build();
    vec![
        run_corpus("91C111 driver (LC)", |prepass| {
            run_driver_experiment_configured(
                &c111,
                ConsistencyModel::Lc,
                budget,
                solver_config(),
                prepass,
            )
        }),
        run_corpus("script interpreter (LC)", |prepass| {
            run_script_experiment_configured(
                ConsistencyModel::Lc,
                budget,
                solver_config(),
                prepass,
            )
        }),
        run_corpus("script interpreter (SC-SE)", |prepass| {
            run_script_experiment_configured(
                ConsistencyModel::ScSe,
                budget,
                solver_config(),
                prepass,
            )
        }),
    ]
}

/// The measurable-win assertions over the on-arms: the relaxed corpora
/// must discharge per-operand checks statically, the strict script
/// corpus must skip feasibility probes in the fork-free parser, and in
/// aggregate the pre-pass must not add solver traffic.
fn assert_wins(measured: &[(Json, ModelRunStats)]) {
    let lc_driver = &measured[0].1;
    let lc_script = &measured[1].1;
    let se_script = &measured[2].1;
    assert!(
        lc_driver.engine.lean_instrs > 0,
        "driver corpus: lean dispatch never engaged"
    );
    assert!(
        lc_script.engine.lean_instrs > 0,
        "script LC corpus: lean dispatch never engaged"
    );
    assert!(
        se_script.engine.feasibility_probes_skipped > 0,
        "script SC-SE corpus: no feasibility probes were skipped"
    );
    let probes: u64 = measured.iter().map(|(_, s)| s.engine.feasibility_probes_skipped).sum();
    println!(
        "pre-pass wins: lean instrs {} (driver) + {} (script LC), {} probes skipped in total",
        lc_driver.engine.lean_instrs, lc_script.engine.lean_instrs, probes
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--smoke") {
        assert_iteration_bounds();
        let budget = Budget { max_steps: 6_000, max_states: 32, stagnation: 1_500 };
        let measured = run(&budget);
        assert_wins(&measured);
        println!("smoke ok");
        return;
    }
    let steps: u64 = args.first().and_then(|s| s.parse().ok()).unwrap_or(30_000);
    let budget = Budget { max_steps: steps, ..Budget::default() };
    println!("Static pre-pass ablation ({steps}-step budget): analyses on vs off");
    println!();

    assert_iteration_bounds();
    let measured = run(&budget);
    assert_wins(&measured);

    let out = Json::obj()
        .set("experiment", "static_prepass")
        .set(
            "description",
            "load-time dataflow pre-pass (liveness + symbolic-reachability taint + \
             constant propagation) ablation; equal paths and coverage asserted, \
             instrumented-instruction and feasibility-query drops recorded",
        )
        .set("budget_steps", steps)
        .set(
            "corpora",
            Json::Arr(measured.into_iter().map(|(j, _)| j).collect()),
        );

    let path = workspace_root().join("results/static_prepass.json");
    std::fs::create_dir_all(path.parent().unwrap()).unwrap();
    std::fs::write(&path, out.render()).unwrap();
    println!("wrote {}", path.display());
}
