//! §6.1.1 reproduction: DDT+ bug finding on the PCnet and RTL8029
//! drivers.
//!
//! Paper shape: 7 distinct bugs across the two drivers; 2 findable under
//! SC-SE (hardware-input bugs), 5 more once LC's annotations and symbolic
//! registry/arguments are enabled. No false positives under LC.

use s2e_core::ConsistencyModel;
use s2e_guests::drivers::{pcnet, rtl8029};
use s2e_tools::ddt::{test_driver, DdtConfig};
use std::collections::BTreeSet;

fn main() {
    let steps: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(80_000);
    println!("DDT+ bug table (paper: 2 bugs under SC-SE, +5 under LC, 7 total)");
    println!();
    let mut total: BTreeSet<(String, &str, u32)> = BTreeSet::new();
    let mut sc_se_bugs = 0usize;
    let mut lc_extra = 0usize;
    for driver in [pcnet::build(), rtl8029::build()] {
        for model in [ConsistencyModel::ScSe, ConsistencyModel::Lc] {
            let report = test_driver(
                &driver,
                &DdtConfig {
                    model,
                    max_steps: steps,
                    ..DdtConfig::default()
                },
            );
            println!(
                "{:8} under {:5}: {} distinct bug(s), {} paths, {:.0}% coverage, {:.1}s",
                driver.name,
                model.name(),
                report.distinct_bugs.len(),
                report.paths,
                100.0 * report.coverage(),
                report.duration.as_secs_f64()
            );
            for b in &report.distinct_bugs {
                println!("    {:?} at {:#010x}", b.kind, b.pc);
                let key = (format!("{:?}", b.kind), driver.name, b.pc);
                let fresh = total.insert(key);
                match model {
                    ConsistencyModel::ScSe => sc_se_bugs += usize::from(fresh),
                    _ => lc_extra += usize::from(fresh),
                }
            }
        }
    }
    println!();
    println!(
        "total distinct bugs: {} ({} under SC-SE, +{} with LC)",
        total.len(),
        sc_se_bugs,
        lc_extra
    );
}
