//! DBT dispatch ablation (DESIGN.md §14): superblock chaining +
//! direct-threaded dispatch + the per-worker L1 front cache, on vs off,
//! on a concrete-heavy checksum kernel and a symbolic-heavy fork tree.
//!
//! The fast path is required to be a *pure* optimization, so the
//! headline assertions are bit-identity: the chained arm must terminate
//! the identical path sequence (same states, same reasons, same order —
//! fork order is a prefix of state ids), the same fork count, and the
//! same block coverage as the unchained arm, on both corpora. The win is
//! measured on top of that — concrete self-time per retired instruction
//! (the `Phase::Concrete` span total over `instrs_concrete`) must drop
//! ≥2× on the concrete-heavy corpus.
//!
//! A parallel run checks the steady-state locking discipline: with the
//! L1 front in place, the majority of block lookups must be answered
//! without touching the shared-cache mutex (`l1_hits` dominates
//! `hits - l1_hits`).
//!
//! Writes `results/dbt_dispatch.json`.
//!
//! `--smoke` runs the same corpora under a small budget with the same
//! identity and counter assertions (timing asserts are skipped — CI
//! machines are noisy). This is the cheap gate `scripts/verify.sh` runs.

use bench::json::Json;
use bench::timing::workspace_root;
use s2e_analysis::{analyze, PrepassBuilder, TaintSeed};
use s2e_core::parallel::{explore_parallel, ParallelConfig, WorkerContext};
use s2e_core::selectors::make_mem_symbolic;
use s2e_core::{ConsistencyModel, Engine, EngineConfig};
use s2e_dbt::DbtStats;
use s2e_obs::{ObsConfig, Phase, Recorder};
use s2e_vm::asm::{Assembler, Program};
use s2e_vm::isa::{reg, S2Op};
use s2e_vm::machine::Machine;
use std::sync::Arc;
use std::time::{Duration, Instant};

const BUF: u32 = 0x8000;
const INPUT: u32 = 0x9000;

/// Concrete-heavy corpus: initialize a 256-word table, then run `outer`
/// checksum sweeps over it. Every block is straight-line ALU/memory work
/// linked by direct edges — the shape chaining + threading targets. The
/// final checksum rides out in the kill status so a dispatch bug cannot
/// hide.
fn checksum_guest(outer: u32) -> Program {
    let mut a = Assembler::new(0x2000);
    a.movi(reg::R1, BUF);
    a.movi(reg::R3, 0);
    a.movi(reg::R4, 1024);
    a.label("init");
    a.add(reg::R6, reg::R1, reg::R3);
    a.st32(reg::R6, 0, reg::R3);
    a.addi(reg::R3, reg::R3, 4);
    a.bltu(reg::R3, reg::R4, "init");
    a.movi(reg::R2, 0);
    a.movi(reg::R8, 0);
    a.movi(reg::R9, outer);
    a.label("outer");
    a.movi(reg::R3, 0);
    a.label("loop");
    a.add(reg::R6, reg::R1, reg::R3);
    a.ld32(reg::R5, reg::R6, 0);
    a.xor(reg::R2, reg::R2, reg::R5);
    a.muli(reg::R2, reg::R2, 0x9e37_79b1);
    a.addi(reg::R3, reg::R3, 4);
    a.bltu(reg::R3, reg::R4, "loop");
    a.addi(reg::R8, reg::R8, 1);
    a.bltu(reg::R8, reg::R9, "outer");
    a.mov(reg::R0, reg::R2);
    a.s2e(S2Op::KillPath);
    a.finish()
}

/// Symbolic-heavy corpus: a fork tree over 6 symbolic input bytes (a
/// gate byte plus a 32-leaf subtree). Nearly every block ends in a
/// symbolic branch, so chains cannot form across forks and the solver
/// dominates — chaining must be neutral here.
fn forktree_guest() -> Program {
    let mut a = Assembler::new(0x2000);
    a.movi(reg::R1, INPUT);
    a.movi(reg::R6, 128);
    a.movi(reg::R7, 0);
    a.ld8(reg::R2, reg::R1, 0);
    a.movi(reg::R3, 8);
    a.bltu(reg::R2, reg::R3, "deep");
    a.halt_code(1);
    a.label("deep");
    for i in 1..=5u32 {
        a.ld8(reg::R2, reg::R1, i);
        a.bltu(reg::R2, reg::R6, &format!("skip{i}"));
        a.addi(reg::R7, reg::R7, 1);
        a.label(&format!("skip{i}"));
    }
    a.halt_code(2);
    a.finish()
}

/// Engine over a bare machine with the corpus loaded and the dispatch
/// arms set. The concrete corpus gets the real static pre-pass (clean
/// taint roots → every block proves `concrete_only`, which gates the
/// threaded path exactly as production setups do).
fn build_engine(prog: &Program, chain: bool, prepass: bool, symbolic_input: bool) -> Engine {
    let mut m = Machine::new();
    m.load(prog);
    let mut ec = EngineConfig::with_model(ConsistencyModel::ScSe);
    ec.chain_blocks = chain;
    ec.threaded_dispatch = chain;
    let mut e = Engine::new(m, ec);
    if prepass {
        let cfg = s2e_tools::deadcode::driver_analysis_config();
        let analysis = analyze(prog, &[(prog.entry, TaintSeed::clean())], &cfg)
            .expect("static pre-pass exceeded its iteration bound");
        let info = PrepassBuilder::new().add(&analysis).build();
        e.set_annotator(Some(Arc::new(info)));
    }
    if symbolic_input {
        let id = e.sole_state().unwrap();
        let b = e.builder_arc();
        make_mem_symbolic(e.state_mut(id).unwrap(), &b, INPUT, 6, "in");
    }
    e
}

/// One arm's outcome: the identity fingerprint (termination sequence,
/// fork count, coverage) plus the performance counters.
struct ArmResult {
    wall: Duration,
    concrete_ns: u64,
    translate_ns: u64,
    retired_concrete: u64,
    paths: Vec<String>,
    forks: u64,
    covered: Vec<u32>,
    dbt: DbtStats,
}

impl ArmResult {
    /// Concrete self-time per retired concrete instruction.
    fn ns_per_instr(&self) -> f64 {
        self.concrete_ns as f64 / self.retired_concrete.max(1) as f64
    }

    fn json(&self) -> Json {
        Json::obj()
            .set("paths", self.paths.len())
            .set("forks", self.forks)
            .set("covered_blocks", self.covered.len())
            .set("instrs_concrete", self.retired_concrete)
            .set("concrete_self_time_seconds", self.concrete_ns as f64 / 1e9)
            .set("translate_time_seconds", self.translate_ns as f64 / 1e9)
            .set("ns_per_retired_instr", self.ns_per_instr())
            .set("wall_seconds", self.wall.as_secs_f64())
            .set("dbt_hits", self.dbt.hits)
            .set("dbt_l1_hits", self.dbt.l1_hits)
            .set("dbt_translations", self.dbt.translations)
            .set("chains_formed", self.dbt.chains_formed)
            .set("chain_entries", self.dbt.chain_entries)
            .set("chain_exits", self.dbt.chain_exits)
            .set("unlinks", self.dbt.unlinks)
    }
}

fn run_arm(mut e: Engine) -> ArmResult {
    *e.recorder_mut() = Recorder::new(0, &ObsConfig::enabled());
    let started = Instant::now();
    e.run(5_000_000);
    let wall = started.elapsed();
    let tl = e.take_timeline();
    // Termination order is the fork order made observable: state ids are
    // minted at fork time and the sequential engine drains them
    // deterministically, so any fork-order divergence reorders this list.
    let paths: Vec<String> = e
        .terminated()
        .iter()
        .map(|(id, reason)| format!("{id:?}={reason:?}"))
        .collect();
    let mut covered: Vec<u32> = e.seen_blocks().iter().copied().collect();
    covered.sort_unstable();
    ArmResult {
        wall,
        concrete_ns: tl.totals.nanos[Phase::Concrete.index()],
        translate_ns: tl.totals.nanos[Phase::Translate.index()],
        retired_concrete: e.stats().instrs_concrete,
        paths,
        forks: e.stats().forks,
        covered,
        dbt: e.dbt_stats(),
    }
}

/// The bit-identity contract between the two arms of one corpus.
fn assert_identity(name: &str, off: &ArmResult, on: &ArmResult) {
    assert_eq!(
        off.paths, on.paths,
        "{name}: chained arm changed the terminated path sequence"
    );
    assert_eq!(off.forks, on.forks, "{name}: chained arm changed the fork count");
    assert_eq!(off.covered, on.covered, "{name}: chained arm changed coverage");
    assert_eq!(
        off.retired_concrete, on.retired_concrete,
        "{name}: chained arm retired a different instruction count"
    );
    assert_eq!(on.dbt.l1_hits, on.dbt.hits.min(on.dbt.l1_hits), "l1_hits ⊆ hits");
    assert_eq!(
        off.dbt.chain_entries, 0,
        "{name}: unchained arm must not chain: {:?}",
        off.dbt
    );
}

fn run_corpus(
    name: &str,
    build: impl Fn(bool) -> Engine,
) -> (Json, ArmResult, ArmResult) {
    let off = run_arm(build(false));
    let on = run_arm(build(true));
    assert_identity(name, &off, &on);
    let ratio = off.ns_per_instr() / on.ns_per_instr().max(f64::MIN_POSITIVE);
    println!(
        "{name:<24} {:>10} instrs  off {:>7.1} ns/i  on {:>7.1} ns/i  ({ratio:.2}x)  \
         chains {} entries {} l1 {}",
        on.retired_concrete,
        off.ns_per_instr(),
        on.ns_per_instr(),
        on.dbt.chains_formed,
        on.dbt.chain_entries,
        on.dbt.l1_hits,
    );
    let json = Json::obj()
        .set("corpus", name)
        .set("off", off.json())
        .set("on", on.json())
        .set("speedup_ns_per_instr", ratio);
    (json, off, on)
}

/// Steady-state locking discipline under `explore_parallel`: across all
/// workers, most lookups must be L1 hits (lock-free); the shared mutex
/// is reserved for cold misses and invalidations.
fn check_parallel_mutex_discipline(workers: usize) -> Json {
    let guest = Arc::new(forktree_guest());
    let build = move |ctx: &WorkerContext| {
        let mut m = Machine::new();
        m.load(&guest);
        let mut e = ctx.engine(m, EngineConfig::with_model(ConsistencyModel::ScSe));
        let id = e.sole_state().unwrap();
        let b = e.builder_arc();
        make_mem_symbolic(e.state_mut(id).unwrap(), &b, INPUT, 6, "in");
        e
    };
    let mut cfg = ParallelConfig::new(workers, 100_000);
    cfg.batch = 4;
    cfg.max_local_states = 2;
    let r = explore_parallel(&cfg, build);
    let shared_lookups = r.dbt.hits - r.dbt.l1_hits;
    assert!(
        r.dbt.l1_hits > shared_lookups,
        "L1 must answer the majority of steady-state lookups: {:?}",
        r.dbt
    );
    println!(
        "parallel({workers}w): {} lookups lock-free (L1), {} took the shared mutex \
         ({} cold misses, {} invalidations)",
        r.dbt.l1_hits, shared_lookups, r.dbt.translations, r.dbt.invalidations
    );
    Json::obj()
        .set("workers", workers)
        .set("total_paths", r.total_paths)
        .set("l1_hits", r.dbt.l1_hits)
        .set("shared_hits", shared_lookups)
        .set("translations", r.dbt.translations)
        .set("invalidations", r.dbt.invalidations)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let outer: u32 = if smoke { 60 } else { 2_000 };

    println!("DBT dispatch ablation: chaining + threading + L1 on vs off");
    println!();

    let checksum = checksum_guest(outer);
    let (concrete_json, _c_off, c_on) = run_corpus("concrete checksum", |chain| {
        build_engine(&checksum, chain, true, false)
    });
    let forktree = forktree_guest();
    let (symbolic_json, _f_off, f_on) =
        run_corpus("symbolic fork tree", |chain| build_engine(&forktree, chain, false, true));

    // The chained arm must actually exercise the machinery it claims to
    // measure.
    assert!(
        c_on.dbt.chains_formed > 0 && c_on.dbt.chain_entries > 0,
        "concrete corpus never chained: {:?}",
        c_on.dbt
    );
    assert!(c_on.dbt.l1_hits > 0, "concrete corpus never hit the L1: {:?}", c_on.dbt);
    assert_eq!(f_on.paths.len(), 33, "fork tree explores gate + 32 leaves");

    let parallel_json = check_parallel_mutex_discipline(4);

    let ratio = _c_off.ns_per_instr() / c_on.ns_per_instr().max(f64::MIN_POSITIVE);
    if smoke {
        println!("smoke ok");
    } else {
        assert!(
            ratio >= 2.0,
            "chaining + threading must cut concrete self-time per retired \
             instruction at least 2x on the concrete corpus (got {ratio:.2}x)"
        );
    }

    let out = Json::obj()
        .set("experiment", "dbt_dispatch")
        .set(
            "description",
            "superblock chaining + direct-threaded dispatch + per-worker L1 \
             ablation; bit-identical path sequence/fork count/coverage asserted, \
             concrete self-time per retired instruction compared",
        )
        .set("smoke", smoke)
        .set("outer_iterations", outer)
        .set(
            "corpora",
            Json::Arr(vec![concrete_json, symbolic_json]),
        )
        .set("parallel_mutex_discipline", parallel_json);

    let path = workspace_root().join("results/dbt_dispatch.json");
    std::fs::create_dir_all(path.parent().unwrap()).unwrap();
    std::fs::write(&path, out.render()).unwrap();
    println!("wrote {}", path.display());
}
