//! §6.1.3 reproduction (experiment 1): PROFS on the URL parser.
//!
//! Paper shape: "for every additional '/' character present in the URL,
//! there are 10 extra instructions being executed ... no upper bound on
//! the execution of URL parsing"; total cache misses per path nearly
//! constant (15,984 ± 20).

use s2e_tools::profs::{profile_url_parser, ProfsConfig};
use std::collections::BTreeMap;

fn main() {
    let len: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);
    let config = ProfsConfig {
        max_steps: 400_000,
        ..ProfsConfig::default()
    };
    let rows = profile_url_parser(len, &config);
    println!(
        "PROFS / URL parser: {} paths over all {}-char URLs",
        rows.len(),
        len
    );
    println!("(paper: ~4.3e6 instrs/path, +10 instrs per '/', 15,984±20 cache misses)");
    println!();
    let mut by_slash: BTreeMap<u32, (u64, u64)> = BTreeMap::new();
    for (slashes, instrs, misses) in &rows {
        let e = by_slash.entry(*slashes).or_insert((*instrs, *misses));
        e.0 = e.0.max(*instrs);
        e.1 = e.1.max(*misses);
    }
    let widths = [10, 14, 14, 12];
    bench::print_row(
        &[
            "slashes".into(),
            "instructions".into(),
            "cache misses".into(),
            "delta".into(),
        ],
        &widths,
    );
    let mut prev: Option<u64> = None;
    for (slashes, (instrs, misses)) in &by_slash {
        let delta = prev.map(|p| format!("{:+}", *instrs as i64 - p as i64)).unwrap_or_default();
        bench::print_row(
            &[
                slashes.to_string(),
                instrs.to_string(),
                misses.to_string(),
                delta,
            ],
            &widths,
        );
        prev = Some(*instrs);
    }
    let misses: Vec<u64> = rows.iter().map(|(_, _, m)| *m).collect();
    if let (Some(lo), Some(hi)) = (misses.iter().min(), misses.iter().max()) {
        let mid = (lo + hi) / 2;
        println!();
        println!("cache misses: {mid} ± {}", (hi - lo) / 2);
    }
}
