//! Fig. 8 reproduction: memory high-watermark by consistency model —
//! plus the checkpointed-states arm (DESIGN.md §13).
//!
//! Paper shape: LC uses the most memory (slow exploration of
//! registry-dependent subtrees keeps many states alive, 8 GB for PCnet);
//! RC-OC about half of that; the strict models far less because they
//! admit fewer states.
//!
//! The checkpointed arm attacks the same axis from the platform side:
//! instead of choosing a cheaper consistency model, the scheduler evicts
//! queued states to compact `{checkpoint, journal}` form and rehydrates
//! them by deterministic replay on take. Run on the 91C111 driver under
//! LC (the paper's worst memory case), it must reach the identical path
//! set while holding materially fewer resident bytes in scheduler
//! queues. Writes `results/fig8_checkpoint.json`; `--smoke` runs only
//! this arm with replay-identity verification on (verify.sh gate 7).

use bench::json::Json;
use bench::timing::workspace_root;
use bench::{run_driver_experiment, run_script_experiment, Budget};
use s2e_core::parallel::{
    explore_parallel, EvictionPolicy, ParallelConfig, ParallelReport, WorkerContext,
};
use s2e_core::selectors::{constrain_range, make_config_symbolic};
use s2e_core::{CodeRanges, ConsistencyModel, Engine, EngineConfig};
use s2e_guests::drivers::{build_exerciser, pcnet, smc91c111};
use s2e_guests::kernel::{boot, standard_annotations};
use s2e_guests::layout::cfg_keys;

const CHECKPOINT_WORKERS: usize = 2;
const CHECKPOINT_STEPS: u64 = 5_000_000;

fn fmt_bytes(b: usize) -> String {
    if b >= 1 << 20 {
        format!("{:.1}MiB", b as f64 / (1 << 20) as f64)
    } else {
        format!("{:.0}KiB", b as f64 / 1024.0)
    }
}

/// The 91C111-LC worker corpus, mirroring the replay-identity test:
/// kernel boot image + driver + entry exerciser, symbolic
/// CardType/Flags configuration, symbolic hardware per model policy.
fn driver_worker(ctx: &WorkerContext) -> Engine {
    let driver = smc91c111::build();
    let (mut machine, _kernel) = boot();
    machine.load_aux(&driver.program);
    let exerciser = build_exerciser(&driver, true);
    machine.load(&exerciser);
    let mut ec = EngineConfig::with_model(ConsistencyModel::Lc);
    ec.code_ranges = CodeRanges::all().include(driver.code_range.clone());
    ec.annotations = standard_annotations();
    let mut e = ctx.engine(machine, ec);
    let id = e.sole_state().unwrap();
    let b = e.builder_arc();
    let state = e.state_mut(id).unwrap();
    let card = make_config_symbolic(state, &b, cfg_keys::CARD_TYPE, "CardType");
    constrain_range(state, &b, &card, 0, 7);
    let flags = make_config_symbolic(state, &b, cfg_keys::FLAGS, "Flags");
    constrain_range(state, &b, &flags, 0, 3);
    e.apply_model_hardware_policy();
    e
}

fn arm_json(name: &str, r: &ParallelReport) -> Json {
    Json::obj()
        .set("arm", name)
        .set("paths", r.total_paths)
        .set("covered_blocks", r.covered_blocks.len())
        .set("queue_bytes_peak", r.queue_bytes_peak)
        .set("exports", r.exports)
        .set("evictions", r.stats.evictions)
        .set("rehydrations", r.stats.rehydrations)
        .set("evicted_leftover", r.evicted_leftover)
        .set("journal_bytes", r.stats.journal_bytes)
        .set("replayed_instrs", r.stats.replayed_instrs)
        .set("memory_watermark_bytes", r.stats.memory_watermark_bytes)
}

/// The §13 ablation: live shipping vs aggressive eviction on 91C111-LC.
fn run_checkpoint_arm(verify: bool) -> Json {
    let base_cfg = ParallelConfig::new(CHECKPOINT_WORKERS, CHECKPOINT_STEPS);
    let off = explore_parallel(&base_cfg, driver_worker);
    assert_eq!(off.queue_leftover, 0, "live arm must run to exhaustion");

    let mut cfg = ParallelConfig::new(CHECKPOINT_WORKERS, CHECKPOINT_STEPS);
    cfg.eviction = EvictionPolicy::Aggressive;
    cfg.verify_replay = verify;
    let agg = explore_parallel(&cfg, driver_worker);

    // The §13 gate: compact shipping must be invisible to exploration...
    assert_eq!(
        agg.total_paths, off.total_paths,
        "checkpointed arm explored a different path count"
    );
    assert_eq!(
        agg.covered_blocks, off.covered_blocks,
        "checkpointed arm covered different blocks"
    );
    assert!(
        agg.stats.evictions > 0 && agg.stats.rehydrations > 0,
        "checkpointed arm never exercised evict/rehydrate"
    );
    assert_eq!(
        agg.stats.evictions,
        agg.stats.rehydrations + agg.evicted_leftover,
        "eviction conservation violated"
    );
    // ...and actually buy resident memory: a compact state is a shared
    // checkpoint Arc plus a journal suffix, orders of magnitude below a
    // live machine's private pages.
    assert!(
        agg.queue_bytes_peak * 2 <= off.queue_bytes_peak,
        "eviction did not materially lower queue residency: {} vs {}",
        agg.queue_bytes_peak,
        off.queue_bytes_peak
    );

    let ratio = off.queue_bytes_peak as f64 / agg.queue_bytes_peak.max(1) as f64;
    println!();
    println!(
        "checkpointed states (91C111-LC, {CHECKPOINT_WORKERS} workers{}):",
        if verify { ", replay-identity verified" } else { "" }
    );
    println!(
        "  live shipping : {} paths, queue peak {}",
        off.total_paths,
        fmt_bytes(off.queue_bytes_peak)
    );
    println!(
        "  aggressive    : {} paths, queue peak {} ({ratio:.1}x lower), \
         {} evictions / {} rehydrations, {} journal bytes",
        agg.total_paths,
        fmt_bytes(agg.queue_bytes_peak),
        agg.stats.evictions,
        agg.stats.rehydrations,
        agg.stats.journal_bytes
    );

    Json::obj()
        .set("guest", "91C111 driver, local consistency")
        .set("workers", CHECKPOINT_WORKERS)
        .set("max_steps", CHECKPOINT_STEPS)
        .set("verify_replay", verify)
        .set("queue_bytes_ratio", ratio)
        .set(
            "arms",
            Json::Arr(vec![arm_json("live", &off), arm_json("aggressive", &agg)]),
        )
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    if !smoke {
        let steps: u64 = std::env::args()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or(30_000);
        let budget = Budget {
            max_steps: steps,
            ..Budget::default()
        };
        println!("Fig 8: memory high-watermark by consistency model ({steps}-step budget)");
        println!("(paper, GB: PCnet 4(RC-OC) / 8(LC) / <2 strict; 91C111 and Lua lower)");
        println!();
        let widths = [8, 12, 12, 12];
        bench::print_row(
            &["model".into(), "91C111".into(), "PCnet".into(), "script".into()],
            &widths,
        );
        let c111 = smc91c111::build();
        let pc = pcnet::build();
        for model in [
            ConsistencyModel::RcOc,
            ConsistencyModel::Lc,
            ConsistencyModel::ScSe,
            ConsistencyModel::ScUe,
        ] {
            let a = run_driver_experiment(&c111, model, &budget);
            let b = run_driver_experiment(&pc, model, &budget);
            let c = run_script_experiment(model, &budget);
            bench::print_row(
                &[
                    model.name().into(),
                    fmt_bytes(a.memory_watermark),
                    fmt_bytes(b.memory_watermark),
                    fmt_bytes(c.memory_watermark),
                ],
                &widths,
            );
        }
    }

    let checkpoint = run_checkpoint_arm(true);
    let out = Json::obj().set("smoke", smoke).set("checkpointed", checkpoint);
    let path = workspace_root().join("results/fig8_checkpoint.json");
    std::fs::create_dir_all(path.parent().unwrap()).unwrap();
    std::fs::write(&path, out.render()).unwrap();
    println!("wrote {}", path.display());
    if smoke {
        println!("fig8 checkpoint smoke: ok (identical path set, lower queue residency)");
    }
}
