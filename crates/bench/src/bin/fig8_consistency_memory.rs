//! Fig. 8 reproduction: memory high-watermark by consistency model.
//!
//! Paper shape: LC uses the most memory (slow exploration of
//! registry-dependent subtrees keeps many states alive, 8 GB for PCnet);
//! RC-OC about half of that; the strict models far less because they
//! admit fewer states.

use bench::{run_driver_experiment, run_script_experiment, Budget};
use s2e_core::ConsistencyModel;
use s2e_guests::drivers::{pcnet, smc91c111};

fn fmt_bytes(b: usize) -> String {
    if b >= 1 << 20 {
        format!("{:.1}MiB", b as f64 / (1 << 20) as f64)
    } else {
        format!("{:.0}KiB", b as f64 / 1024.0)
    }
}

fn main() {
    let steps: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(30_000);
    let budget = Budget {
        max_steps: steps,
        ..Budget::default()
    };
    println!("Fig 8: memory high-watermark by consistency model ({steps}-step budget)");
    println!("(paper, GB: PCnet 4(RC-OC) / 8(LC) / <2 strict; 91C111 and Lua lower)");
    println!();
    let widths = [8, 12, 12, 12];
    bench::print_row(
        &["model".into(), "91C111".into(), "PCnet".into(), "script".into()],
        &widths,
    );
    let c111 = smc91c111::build();
    let pc = pcnet::build();
    for model in [
        ConsistencyModel::RcOc,
        ConsistencyModel::Lc,
        ConsistencyModel::ScSe,
        ConsistencyModel::ScUe,
    ] {
        let a = run_driver_experiment(&c111, model, &budget);
        let b = run_driver_experiment(&pc, model, &budget);
        let c = run_script_experiment(model, &budget);
        bench::print_row(
            &[
                model.name().into(),
                fmt_bytes(a.memory_watermark),
                fmt_bytes(b.memory_watermark),
                fmt_bytes(c.memory_watermark),
            ],
            &widths,
        );
    }
}
