//! Fig. 6 reproduction: REV+ basic-block coverage over time for the four
//! drivers.
//!
//! Paper shape: steep initial climb as the entry points are first
//! exercised, then a long plateau with occasional jumps as rare
//! configurations unlock new blocks; the smaller drivers saturate higher.

use s2e_guests::drivers::all_drivers;
use s2e_tools::rev::{trace_driver, RevConfig};

fn main() {
    let steps: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(120_000);
    println!("Fig 6: REV+ coverage over time ({steps} steps per driver)");
    println!();
    for driver in all_drivers() {
        let report = trace_driver(
            &driver,
            &RevConfig {
                max_steps: steps,
                ..RevConfig::default()
            },
        );
        let total = report.total_blocks as f64;
        println!(
            "{}: {} blocks, final coverage {:.0}%",
            driver.name,
            report.total_blocks,
            100.0 * report.coverage()
        );
        // Print the series at ten evenly spaced checkpoints.
        let tl = &report.coverage_timeline;
        if let Some(&(t_end, _)) = tl.last() {
            for k in 1..=10 {
                let t = t_end * k as f64 / 10.0;
                let covered = tl.iter().take_while(|(ts, _)| *ts <= t).last().map(|(_, c)| *c).unwrap_or(0);
                let pct = 100.0 * covered as f64 / total;
                let bar = "#".repeat((pct / 2.5) as usize);
                println!("  t={t:>7.3}s {pct:>5.1}% |{bar}");
            }
        }
        println!();
    }
}
