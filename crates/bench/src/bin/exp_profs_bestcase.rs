//! §6.1.3 reproduction (experiment 4): best-case-input search.
//!
//! "PROFS can find 'best case performance' inputs without having to
//! enumerate the input space ... any time a path exceeds this minimum,
//! the plugin automatically abandons exploration of that path."

use s2e_core::selectors::make_cstring_symbolic;
use s2e_guests::kernel::boot;
use s2e_guests::layout::INPUT_BUF;
use s2e_tools::profs::{best_case_search, ProfsConfig};

fn main() {
    let len: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    let config = ProfsConfig {
        max_steps: 400_000,
        ..ProfsConfig::default()
    };
    let (mut machine, _k) = boot();
    machine.load(&s2e_guests::url_parser::program());
    let result = best_case_search(machine, &config, |engine| {
        let id = engine.sole_state().unwrap();
        let b = engine.builder_arc();
        make_cstring_symbolic(engine.state_mut(id).unwrap(), &b, INPUT_BUF, len, "url");
    });
    match result {
        Some((best, inputs)) => {
            println!("best-case URL parse over all {len}-char URLs: {best} instructions");
            println!("(a zero-slash URL; lower-bound pruning killed costlier paths early)");
            let mut vars: Vec<_> = inputs.iter().collect();
            vars.sort_by_key(|(id, _)| *id);
            if !vars.is_empty() {
                let bytes: Vec<u8> = vars.iter().map(|(_, v)| *v as u8).collect();
                println!("witness input bytes: {bytes:?}");
            }
        }
        None => println!("no completed path within budget"),
    }
}
