//! Table 4 reproduction: comparative productivity of building analysis
//! tools on the platform vs from scratch.
//!
//! The paper reports DDT (47 KLOC ad-hoc) vs DDT+ (720 LOC on S2E),
//! RevNIC (57 KLOC) vs REV+ (580 LOC), and PROFS (767 LOC, no ad-hoc
//! equivalent). Here "from scratch" is the whole substrate a tool author
//! would otherwise have had to write (VM + DBT + solver + engine), and
//! "with S2E" is the tool's own module.

use std::path::Path;

fn main() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).parent().unwrap();
    let loc = |rel: &str| bench::count_loc(&root.join(rel)).unwrap_or(0);

    // The substrate a from-scratch tool must reimplement.
    let substrate = loc("s2e-expr/src")
        + loc("s2e-solver/src")
        + loc("s2e-vm/src")
        + loc("s2e-dbt/src")
        + loc("s2e-cache/src")
        + loc("s2e-core/src");

    let tool_loc = |file: &str| {
        let path = root.join("s2e-tools/src").join(file);
        let text = std::fs::read_to_string(path).unwrap_or_default();
        text.lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with("//"))
            .count()
    };
    let ddt = tool_loc("ddt.rs");
    let rev = tool_loc("rev.rs");
    let profs = tool_loc("profs.rs");

    println!("Table 4: comparative productivity (tool complexity, LOC)");
    println!("(paper: DDT 47,000 vs 720 | RevNIC 57,000 vs 580 | PROFS n/a vs 767)");
    println!();
    let widths = [34, 14, 12, 8];
    bench::print_row(
        &["use case".into(), "from scratch".into(), "with S2E".into(), "ratio".into()],
        &widths,
    );
    for (name, tool) in [
        ("testing of device drivers (DDT+)", ddt),
        ("reverse engineering (REV+)", rev),
        ("multi-path profiling (PROFS)", profs),
    ] {
        let from_scratch = substrate + tool;
        bench::print_row(
            &[
                name.into(),
                from_scratch.to_string(),
                tool.to_string(),
                format!("{:.0}x", from_scratch as f64 / tool.max(1) as f64),
            ],
            &widths,
        );
    }
    println!();
    println!("substrate (platform) LOC counted once: {substrate}");
}
