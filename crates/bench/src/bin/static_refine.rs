//! Interprocedural refinement ablation (DESIGN.md §15): the value-range
//! indirect-target resolution + clobber-summary pipeline on top of the
//! base static pre-pass, on the 91C111 driver corpus and the script
//! interpreter, both under LC.
//!
//! Like the pre-pass itself, refinement must be a *pure* optimization:
//! terminated-path counts and unit block coverage are asserted equal
//! across all three arms (off / base pre-pass / refined pre-pass). On
//! top of that the refined static model must demonstrably tighten:
//!
//! - `UNKNOWN_SINK` edges in the merged CFG drop (indirect sites proven
//!   into concrete successor sets);
//! - the concrete-only block count does not shrink, and the
//!   instrumented-instruction count (per-operand symbolic checks not
//!   discharged statically) on both corpora drops against the base arm;
//! - every indirect retirement is classified — resolved, escaped, or
//!   discovered — with nothing silently absorbed.
//!
//! Writes `results/static_refine.json`. `--smoke` runs the same
//! corpora and assertions under a small budget; `scripts/verify.sh`
//! runs it as gate 9.

use bench::json::Json;
use bench::timing::workspace_root;
use bench::{
    driver_base_analyses, driver_refined_prepass, run_driver_experiment_configured,
    run_script_experiment_configured, script_base_analyses, script_refined_prepass, Budget,
    ModelRunStats, PrepassMode,
};
use s2e_analysis::RefinedAnalysis;
use s2e_core::ConsistencyModel;
use s2e_guests::drivers::smc91c111;
use s2e_guests::kernel::boot;
use s2e_guests::script;
use s2e_solver::SolverConfig;

/// Both comparisons pin the solver to the bare SAT core, as the base
/// pre-pass ablation does, so exploration schedules are comparable.
fn solver_config() -> SolverConfig {
    SolverConfig {
        model_pool_size: 0,
        enable_subsumption: false,
        ..SolverConfig::default()
    }
}

/// Instructions that went through the per-operand symbolic check.
fn instrumented(s: &ModelRunStats) -> u64 {
    s.engine.total_instrs() - s.engine.lean_instrs
}

/// Static-model comparison for one corpus: the unrefined per-program
/// analyses vs the refined whole-image model.
struct StaticComparison {
    /// Concrete-only blocks in the unrefined per-program analyses.
    base_concrete_only: usize,
    /// Blocks in the unrefined per-program analyses.
    base_blocks: usize,
    /// Concrete-only blocks in the refined merged graph.
    refined_concrete_only: usize,
    /// Blocks in the refined merged graph.
    refined_blocks: usize,
    /// `UNKNOWN_SINK` edges before/after refinement on the merged image.
    unknown_before: usize,
    unknown_after: usize,
    /// Indirect sites proven into concrete successor sets.
    resolved_sites: usize,
    /// Refinement rounds used.
    rounds: usize,
}

fn compare_static(
    base: &[s2e_analysis::ProgramAnalysis],
    ra: &RefinedAnalysis,
) -> StaticComparison {
    let r = &ra.prepass.refinement;
    StaticComparison {
        base_concrete_only: base.iter().map(|a| a.taint.concrete_only.len()).sum(),
        base_blocks: base.iter().map(|a| a.graph.cfg.blocks.len()).sum(),
        refined_concrete_only: ra.prepass.taint.concrete_only.len(),
        refined_blocks: r.graph.cfg.blocks.len(),
        unknown_before: r.unknown_edges_before,
        unknown_after: r.unknown_edges_after,
        resolved_sites: r.resolved_sites.len(),
        rounds: r.rounds,
    }
}

fn static_json(c: &StaticComparison) -> Json {
    Json::obj()
        .set("base_blocks", c.base_blocks)
        .set("base_concrete_only_blocks", c.base_concrete_only)
        .set("refined_blocks", c.refined_blocks)
        .set("refined_concrete_only_blocks", c.refined_concrete_only)
        .set(
            "refined_concrete_only_share",
            c.refined_concrete_only as f64 / c.refined_blocks.max(1) as f64,
        )
        .set("unknown_edges_before", c.unknown_before)
        .set("unknown_edges_after", c.unknown_after)
        .set("resolved_indirect_sites", c.resolved_sites)
        .set("refinement_rounds", c.rounds)
}

fn arm_json(s: &ModelRunStats) -> Json {
    Json::obj()
        .set("paths", s.paths)
        .set("covered_blocks", s.covered_blocks)
        .set("steps", s.steps)
        .set("instrumented_instrs", instrumented(s))
        .set("lean_instrs", s.engine.lean_instrs)
        .set("concrete_only_blocks", s.engine.concrete_only_blocks)
        .set("indirect_retirements", s.engine.indirect_retirements)
        .set("indirect_targets_resolved", s.engine.indirect_targets_resolved)
        .set("indirect_targets_escaped", s.engine.indirect_targets_escaped)
        .set("indirect_targets_discovered", s.engine.indirect_targets_discovered)
        .set("time_seconds", s.time.as_secs_f64())
}

/// Runs one corpus across all three arms, asserts the purity contract
/// and the static-model wins, and returns the corpus' JSON block.
fn run_corpus(
    name: &str,
    cmp: &StaticComparison,
    run: impl Fn(PrepassMode) -> ModelRunStats,
) -> Json {
    let off = run(PrepassMode::Off);
    let base = run(PrepassMode::Base);
    let refined = run(PrepassMode::Refined);
    for (arm, s) in [("base", &base), ("refined", &refined)] {
        assert_eq!(
            off.paths, s.paths,
            "{name}: terminated-path counts diverged in the {arm} arm"
        );
        assert_eq!(
            off.covered_blocks, s.covered_blocks,
            "{name}: unit block coverage diverged in the {arm} arm"
        );
    }
    assert!(
        cmp.unknown_after < cmp.unknown_before,
        "{name}: refinement left all {} unknown edges in place",
        cmp.unknown_before
    );
    assert!(
        cmp.refined_concrete_only >= cmp.base_concrete_only,
        "{name}: refinement lost concrete-only blocks ({} -> {})",
        cmp.base_concrete_only,
        cmp.refined_concrete_only
    );
    assert!(
        instrumented(&refined) < instrumented(&base),
        "{name}: refined arm instrumented {} instrs, base {}",
        instrumented(&refined),
        instrumented(&base)
    );
    let st = &refined.engine;
    assert_eq!(
        st.indirect_retirements,
        st.indirect_targets_resolved + st.indirect_targets_escaped + st.indirect_targets_discovered,
        "{name}: unaccounted indirect retirement"
    );
    println!(
        "{name}: unknown edges {} -> {}, concrete-only {} -> {}, \
         instrumented {} -> {} -> {}, retired {} ({} resolved / {} escaped / {} discovered)",
        cmp.unknown_before,
        cmp.unknown_after,
        cmp.base_concrete_only,
        cmp.refined_concrete_only,
        instrumented(&off),
        instrumented(&base),
        instrumented(&refined),
        st.indirect_retirements,
        st.indirect_targets_resolved,
        st.indirect_targets_escaped,
        st.indirect_targets_discovered,
    );
    Json::obj()
        .set("corpus", name)
        .set("static", static_json(cmp))
        .set("off", arm_json(&off))
        .set("base", arm_json(&base))
        .set("refined", arm_json(&refined))
        .set(
            "instrumented_drop_vs_base",
            instrumented(&base).saturating_sub(instrumented(&refined)),
        )
        .set(
            "unknown_edge_drop",
            cmp.unknown_before.saturating_sub(cmp.unknown_after),
        )
}

fn run(budget: &Budget) -> Vec<Json> {
    let c111 = smc91c111::build();
    let (_, kernel) = boot();
    let exerciser = s2e_guests::drivers::build_exerciser(&c111, true);
    let driver_cmp = compare_static(
        &driver_base_analyses(&c111, &kernel, &exerciser, true),
        &driver_refined_prepass(&c111, &kernel, &exerciser, true),
    );
    let guest = script::build();
    let script_cmp = compare_static(
        &script_base_analyses(&guest, &kernel, ConsistencyModel::Lc),
        &script_refined_prepass(&guest, &kernel, ConsistencyModel::Lc),
    );
    vec![
        run_corpus("91C111 driver (LC)", &driver_cmp, |mode| {
            run_driver_experiment_configured(
                &c111,
                ConsistencyModel::Lc,
                budget,
                solver_config(),
                mode,
            )
        }),
        run_corpus("script interpreter (LC)", &script_cmp, |mode| {
            run_script_experiment_configured(ConsistencyModel::Lc, budget, solver_config(), mode)
        }),
    ]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--smoke") {
        let budget = Budget { max_steps: 6_000, max_states: 32, stagnation: 1_500 };
        run(&budget);
        println!("smoke ok");
        return;
    }
    let steps: u64 = args.first().and_then(|s| s.parse().ok()).unwrap_or(30_000);
    let budget = Budget { max_steps: steps, ..Budget::default() };
    println!("Static refinement ablation ({steps}-step budget): off vs base vs refined");
    println!();

    let corpora = run(&budget);
    let out = Json::obj()
        .set("experiment", "static_refine")
        .set(
            "description",
            "interprocedural value-range refinement ablation; equal paths and \
             coverage asserted across off/base/refined, UNKNOWN_SINK-edge and \
             instrumented-instruction drops recorded",
        )
        .set("budget_steps", steps)
        .set("corpora", Json::Arr(corpora));

    let path = workspace_root().join("results/static_refine.json");
    std::fs::create_dir_all(path.parent().unwrap()).unwrap();
    std::fs::write(&path, out.render()).unwrap();
    println!("wrote {}", path.display());
}
