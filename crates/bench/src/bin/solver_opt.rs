//! Solver-stack ablation: constraint-independence slicing × subsuming
//! counterexample cache, on two real guests (the 91C111 driver and the
//! script interpreter).
//!
//! Runs each guest under the four [`SolverConfig`] combinations with an
//! identical exploration budget and reports SAT-core solves (queries
//! that missed every cache layer), total solver time, subsumption hits,
//! and the per-[`QueryKind`] breakdown. The headline claim — the full
//! stack reduces core solves and solver time versus the exact-match
//! baseline — is asserted, not just printed.
//!
//! Writes `results/solver_opt.json`.
//!
//! `--smoke` skips the guest runs and replays a fixed seeded constraint
//! corpus against two bare [`Solver`] instances (full stack vs. both
//! optimizations off), asserting verdict agreement and that the
//! optimized solver issues no more SAT-core solves. This is the cheap
//! gate `scripts/verify.sh` runs.

use bench::json::Json;
use bench::timing::workspace_root;
use bench::{
    run_driver_experiment_with_solver, run_script_experiment_with_solver, Budget, ModelRunStats,
};
use s2e_core::ConsistencyModel;
use s2e_expr::{eval, ExprBuilder, ExprRef, Width};
use s2e_guests::drivers::smc91c111;
use s2e_prng::SplitMix64;
use s2e_solver::{QueryKind, SatResult, Solver, SolverConfig};

/// The four ablation points, baseline first.
const CONFIGS: [(&str, bool, bool); 4] = [
    ("baseline", false, false),
    ("slicing", true, false),
    ("subsumption", false, true),
    ("full", true, true),
];

fn config(slicing: bool, subsumption: bool) -> SolverConfig {
    SolverConfig {
        enable_slicing: slicing,
        enable_subsumption: subsumption,
        ..SolverConfig::default()
    }
}

/// One guest × config measurement as a JSON object.
fn stats_json(name: &str, slicing: bool, subsumption: bool, stats: &ModelRunStats) -> Json {
    let mut kinds = Json::obj();
    for kind in QueryKind::ALL {
        let k = stats.solver.kind(kind);
        kinds = kinds.set(
            kind.name(),
            Json::obj()
                .set("queries", k.queries)
                .set("sat", k.sat)
                .set("unsat", k.unsat)
                .set("time_seconds", k.time.as_secs_f64()),
        );
    }
    Json::obj()
        .set("config", name)
        .set("slicing", slicing)
        .set("subsumption", subsumption)
        .set("queries", stats.solver.queries)
        .set("core_solves", stats.solver.core_solves)
        .set("cache_hits", stats.solver.cache_hits)
        .set("pool_hits", stats.solver.pool_hits)
        .set("subsumption_hits", stats.solver.subsumption_hits)
        .set("sliced_queries", stats.solver.sliced_queries)
        .set("components_solved", stats.solver.components_solved)
        .set("solver_time_seconds", stats.solver_time.as_secs_f64())
        .set("paths", stats.paths)
        .set("covered_blocks", stats.covered_blocks)
        .set("by_kind", kinds)
}

/// Runs one guest across the four configs, prints the table, asserts the
/// full-stack win, and returns the guest's JSON block.
fn run_guest(name: &str, run: impl Fn(SolverConfig) -> ModelRunStats) -> Json {
    println!("{name}");
    let widths = [12, 10, 12, 12, 14, 8, 12];
    bench::print_row(
        &[
            "config".into(),
            "queries".into(),
            "core solves".into(),
            "subsumed".into(),
            "sliced".into(),
            "paths".into(),
            "solver time".into(),
        ],
        &widths,
    );
    let mut rows = Vec::new();
    let mut measured = Vec::new();
    for (cfg_name, slicing, subsumption) in CONFIGS {
        let stats = run(config(slicing, subsumption));
        bench::print_row(
            &[
                cfg_name.into(),
                stats.solver.queries.to_string(),
                stats.solver.core_solves.to_string(),
                stats.solver.subsumption_hits.to_string(),
                stats.solver.sliced_queries.to_string(),
                stats.paths.to_string(),
                format!("{:.3}s", stats.solver_time.as_secs_f64()),
            ],
            &widths,
        );
        rows.push(stats_json(cfg_name, slicing, subsumption, &stats));
        measured.push(stats);
    }
    println!();

    let base = &measured[0];
    let full = &measured[3];
    let core_reduction = 1.0 - full.solver.core_solves as f64 / base.solver.core_solves.max(1) as f64;
    let time_reduction = 1.0 - full.solver_time.as_secs_f64() / base.solver_time.as_secs_f64().max(1e-9);
    println!(
        "  {name}: full stack vs baseline — core solves {} -> {} ({:.1}% fewer), solver time {:.3}s -> {:.3}s ({:.1}% less)",
        base.solver.core_solves,
        full.solver.core_solves,
        100.0 * core_reduction,
        base.solver_time.as_secs_f64(),
        full.solver_time.as_secs_f64(),
        100.0 * time_reduction,
    );
    println!();
    assert!(
        full.solver.core_solves < base.solver.core_solves,
        "{name}: full stack must reduce SAT-core solves ({} vs baseline {})",
        full.solver.core_solves,
        base.solver.core_solves,
    );
    assert!(
        full.solver_time < base.solver_time,
        "{name}: full stack must reduce solver time ({:?} vs baseline {:?})",
        full.solver_time,
        base.solver_time,
    );

    Json::obj()
        .set("guest", name)
        .set("configs", Json::Arr(rows))
        .set("core_solve_reduction", core_reduction)
        .set("solver_time_reduction", time_reduction)
}

/// Builds the fixed smoke corpus: `n` query sets shaped like path
/// constraint growth — several independent variable clusters, each
/// accumulating range/equality constraints, queried as prefixes so
/// subset/superset relationships actually occur.
fn smoke_corpus(b: &ExprBuilder, rng: &mut SplitMix64, n: usize) -> Vec<Vec<ExprRef>> {
    let vars: Vec<ExprRef> = (0..6)
        .map(|i| b.var(&format!("v{i}"), Width::W8))
        .collect();
    let mut pool: Vec<ExprRef> = Vec::new();
    let mut queries = Vec::new();
    while queries.len() < n {
        // Grow the pool with a constraint over one cluster (vars pair up
        // so slicing sees multiple components per query).
        let i = rng.index(vars.len());
        let v = vars[i].clone();
        let c = match rng.below(3) {
            0 => b.ult(v, b.constant(rng.range(4, 250), Width::W8)),
            1 => b.ne(v, b.constant(rng.below(256), Width::W8)),
            _ => {
                let j = (i + 1) % vars.len();
                b.ult(v, vars[j].clone())
            }
        };
        pool.push(c);
        // Query a random prefix of the pool, plus occasionally the whole
        // pool — prefixes of a growing set are exactly what path
        // exploration issues.
        let len = if rng.next_bool() {
            pool.len()
        } else {
            1 + rng.index(pool.len())
        };
        queries.push(pool[..len].to_vec());
        if pool.len() > 24 {
            pool.clear();
        }
    }
    queries
}

/// Fixed-corpus comparison of the full stack against the exact-match
/// baseline: verdicts must agree, SAT models must satisfy their query,
/// and the optimized solver must not issue more SAT-core solves.
fn smoke() {
    let b = ExprBuilder::new();
    let mut rng = SplitMix64::new(0x5e_0_1_0e);
    let queries = smoke_corpus(&b, &mut rng, 160);

    let mut opt = Solver::new();
    opt.set_config(config(true, true));
    let mut base = Solver::new();
    base.set_config(config(false, false));

    for (i, q) in queries.iter().enumerate() {
        let got = opt.check(q);
        let want = base.check(q);
        match (&got, &want) {
            (SatResult::Sat(model), SatResult::Sat(_)) => {
                for c in q {
                    assert_eq!(
                        eval(c, model).ok(),
                        Some(1),
                        "query {i}: optimized model violates a constraint"
                    );
                }
            }
            (SatResult::Unsat, SatResult::Unsat) => {}
            other => panic!("query {i}: verdict mismatch {other:?}"),
        }
    }
    let (o, s) = (opt.stats().clone(), base.stats().clone());
    println!(
        "smoke: {} queries; core solves optimized={} baseline={}; subsumption hits={}; sliced={}",
        queries.len(),
        o.core_solves,
        s.core_solves,
        o.subsumption_hits,
        o.sliced_queries,
    );
    assert!(
        o.core_solves <= s.core_solves,
        "optimized stack issued more SAT-core solves ({}) than baseline ({})",
        o.core_solves,
        s.core_solves,
    );
    assert!(o.core_solves < s.core_solves, "expected a strict win on the fixed corpus");
    println!("smoke ok");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--smoke") {
        smoke();
        return;
    }
    let steps: u64 = args
        .first()
        .and_then(|s| s.parse().ok())
        .unwrap_or(30_000);
    let budget = Budget {
        max_steps: steps,
        ..Budget::default()
    };
    println!("Solver-stack ablation ({steps}-step budget): slicing x subsumption");
    println!();

    let c111 = smc91c111::build();
    let driver_json = run_guest("91C111 driver (LC)", |cfg| {
        run_driver_experiment_with_solver(&c111, ConsistencyModel::Lc, &budget, cfg)
    });
    let script_json = run_guest("script interpreter (LC)", |cfg| {
        run_script_experiment_with_solver(ConsistencyModel::Lc, &budget, cfg)
    });

    let out = Json::obj()
        .set("experiment", "solver_opt")
        .set(
            "description",
            "independence slicing x subsuming counterexample cache ablation; \
             baseline = exact-match cache only",
        )
        .set("budget_steps", steps)
        .set("guests", Json::Arr(vec![driver_json, script_json]));

    let path = workspace_root().join("results/solver_opt.json");
    std::fs::create_dir_all(path.parent().unwrap()).unwrap();
    std::fs::write(&path, out.render()).unwrap();
    println!("wrote {}", path.display());
}
