//! Fig. 9 reproduction: impact of the consistency model on constraint
//! solving — fraction of time in the solver (left plot) and average time
//! per query (right plot).
//!
//! Paper shape: solving time decreases with stricter consistency (less
//! symbolic data); RC-OC's unconstrained inputs make queries ~10× more
//! expensive than LC for 91C111; the interpreter spends most of its time
//! in the solver.

use bench::{run_driver_experiment, run_script_experiment, Budget};
use s2e_core::ConsistencyModel;
use s2e_guests::drivers::{pcnet, smc91c111};
use s2e_solver::QueryKind;

/// `queries (time-ms)` cell for one query kind.
fn kind_cell(stats: &bench::ModelRunStats, kind: QueryKind) -> String {
    let k = stats.solver.kind(kind);
    format!("{} ({:.0}ms)", k.queries, k.time.as_secs_f64() * 1e3)
}

fn main() {
    let steps: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(30_000);
    let budget = Budget {
        max_steps: steps,
        ..Budget::default()
    };
    println!("Fig 9: solver time by consistency model ({steps}-step budget)");
    println!();
    let widths = [8, 10, 16, 14, 10, 16, 16, 14];
    bench::print_row(
        &[
            "model".into(),
            "target".into(),
            "solver fraction".into(),
            "avg query".into(),
            "queries".into(),
            "feasibility".into(),
            "concretize".into(),
            "other".into(),
        ],
        &widths,
    );
    let c111 = smc91c111::build();
    let pc = pcnet::build();
    for model in [
        ConsistencyModel::RcOc,
        ConsistencyModel::Lc,
        ConsistencyModel::ScSe,
        ConsistencyModel::ScUe,
    ] {
        for (name, stats) in [
            ("91C111", run_driver_experiment(&c111, model, &budget)),
            ("PCnet", run_driver_experiment(&pc, model, &budget)),
            ("script", run_script_experiment(model, &budget)),
        ] {
            bench::print_row(
                &[
                    model.name().into(),
                    name.into(),
                    format!("{:.1}%", 100.0 * stats.solver_fraction()),
                    format!("{:.3}ms", stats.avg_query().as_secs_f64() * 1e3),
                    stats.solver_queries.to_string(),
                    kind_cell(&stats, QueryKind::Feasibility),
                    kind_cell(&stats, QueryKind::Concretize),
                    kind_cell(&stats, QueryKind::Other),
                ],
                &widths,
            );
        }
    }
}
