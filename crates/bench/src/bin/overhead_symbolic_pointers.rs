//! §6.2 reproduction: symbolic-pointer overhead vs solver page size.
//!
//! Paper shape: with 256-byte pages S2E explored 7,082 paths in an hour
//! at 0.06 s/query; with 4 KB pages only 2,000 paths at 0.15 s/query —
//! bigger memory regions passed to the solver mean slower queries and
//! fewer paths per unit of work.

use bench::run_symbolic_pointer_experiment;

fn main() {
    let steps: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4_000);
    println!("Symbolic-pointer page-size sweep ({steps}-step budget per size)");
    println!("(paper: 256B pages -> 7,082 paths @0.06s/query; 4KB -> 2,000 paths @0.15s/query)");
    println!();
    let widths = [10, 8, 14, 14, 10];
    bench::print_row(
        &[
            "page".into(),
            "paths".into(),
            "avg query".into(),
            "solver time".into(),
            "wall".into(),
        ],
        &widths,
    );
    for page in [64u32, 128, 256, 1024, 4096] {
        let (paths, avg_q, solver, wall) = run_symbolic_pointer_experiment(page, 2, steps);
        bench::print_row(
            &[
                format!("{page}B"),
                paths.to_string(),
                format!("{:.3}ms", avg_q.as_secs_f64() * 1e3),
                format!("{:.2}s", solver.as_secs_f64()),
                format!("{:.2}s", wall.as_secs_f64()),
            ],
            &widths,
        );
    }
}
