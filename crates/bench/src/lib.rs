//! Experiment harness: reusable runners behind the per-table/per-figure
//! reproduction binaries (see DESIGN.md §4 for the experiment index).
//!
//! Each runner returns plain data; the `src/bin/*` entry points format it
//! into the same rows/series the paper reports. Absolute numbers differ
//! from the paper (different substrate, different decade of hardware);
//! the *shape* — which consistency model wins, rough factors, crossovers
//! — is what EXPERIMENTS.md compares.

pub mod json;
pub mod timing;

use s2e_analysis::{
    analyze, analyze_refined, PrepassBuilder, PrepassInfo, RefinedAnalysis, RegSet, TaintSeed,
};
use s2e_core::analyzers::{Coverage, PathKiller};
use s2e_core::selectors::{
    constrain_range, make_config_symbolic, make_cstring_symbolic, make_mem_symbolic,
};
use s2e_core::{
    CodeRanges, ConsistencyModel, Engine, EngineConfig, EngineStats, RefinementUpdate,
};
use s2e_expr::Width;
use s2e_solver::{SolverConfig, SolverStats};
use s2e_guests::drivers::{build_exerciser, Driver, ENTRY_ORDER};
use s2e_guests::kernel::{boot, standard_annotations};
use s2e_guests::layout::{cfg_keys, INPUT_BUF};
use s2e_guests::script::{self, ScriptGuest};
use s2e_vm::asm::Program;
use s2e_vm::isa::reg;
use std::ops::Range;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Which static pre-pass the `*_configured` runners install.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PrepassMode {
    /// No load-time analysis: the dynamic-only baseline.
    Off,
    /// Per-program liveness + taint + const-prop (the original
    /// `static_prepass` ablation arm).
    Base,
    /// The whole-image refined pipeline (DESIGN.md §15): interprocedural
    /// value ranges resolve indirect sites, clobber summaries tighten
    /// call boundaries, per-instruction concrete masks are stamped, and
    /// the dynamic discovery feedback loop is armed.
    Refined,
}

/// Metrics from one exploration run (the columns of Table 6 and
/// Figs 7–9).
#[derive(Clone, Debug)]
pub struct ModelRunStats {
    /// Consistency model used.
    pub model: ConsistencyModel,
    /// Wall-clock time of the exploration.
    pub time: Duration,
    /// Unit basic blocks covered.
    pub covered_blocks: usize,
    /// Static unit block total (coverage denominator).
    pub total_blocks: usize,
    /// Peak private state memory across live states (bytes).
    pub memory_watermark: usize,
    /// Paths terminated.
    pub paths: usize,
    /// Engine steps executed.
    pub steps: u64,
    /// Time spent in the constraint solver.
    pub solver_time: Duration,
    /// Solver queries issued.
    pub solver_queries: u64,
    /// Full solver statistics (per-`QueryKind` breakdown, cache layer
    /// hits, SAT-core solves) for the Fig. 9 columns and the solver-stack
    /// ablation.
    pub solver: SolverStats,
    /// Instructions executed concretely / symbolically.
    pub instrs: (u64, u64),
    /// Full engine counters (lean-dispatch, dead-write, and probe-skip
    /// columns for the static pre-pass ablation).
    pub engine: EngineStats,
}

impl ModelRunStats {
    /// Coverage fraction in [0, 1].
    pub fn coverage(&self) -> f64 {
        if self.total_blocks == 0 {
            0.0
        } else {
            self.covered_blocks as f64 / self.total_blocks as f64
        }
    }

    /// Fraction of wall time spent in the solver (Fig. 9 left).
    pub fn solver_fraction(&self) -> f64 {
        if self.time.is_zero() {
            0.0
        } else {
            (self.solver_time.as_secs_f64() / self.time.as_secs_f64()).min(1.0)
        }
    }

    /// Mean solver time per query (Fig. 9 right).
    pub fn avg_query(&self) -> Duration {
        if self.solver_queries == 0 {
            Duration::ZERO
        } else {
            self.solver_time / self.solver_queries as u32
        }
    }
}

/// Exploration budget shared by the consistency-model experiments.
#[derive(Clone, Copy, Debug)]
pub struct Budget {
    /// Engine step cap.
    pub max_steps: u64,
    /// Live-state cap.
    pub max_states: usize,
    /// Stagnation window (steps without new unit coverage before all but
    /// one path is killed — the paper's 60-second timer analog).
    pub stagnation: u64,
}

impl Default for Budget {
    fn default() -> Budget {
        Budget {
            max_steps: 40_000,
            max_states: 64,
            stagnation: 3_000,
        }
    }
}

fn drive_to_exhaustion(
    engine: &mut Engine,
    budget: &Budget,
    cov: &std::sync::Arc<std::sync::Mutex<s2e_core::analyzers::CoverageData>>,
) -> u64 {
    let mut steps = 0u64;
    let mut last_new = 0u64;
    let mut last_count = 0usize;
    while steps < budget.max_steps {
        if engine.step().is_none() {
            break;
        }
        steps += 1;
        let covered = cov.lock().unwrap().covered();
        if covered > last_count {
            last_count = covered;
            last_new = steps;
        } else if steps - last_new > budget.stagnation && engine.live_count() > 1 {
            let keep = engine
                .live_states()
                .max_by_key(|s| s.instrs_retired)
                .map(|s| s.id)
                .expect("live states");
            engine.kill_all_except(keep);
            last_new = steps;
        }
    }
    steps
}

fn collect_stats(
    engine: &Engine,
    model: ConsistencyModel,
    time: Duration,
    covered: usize,
    total: usize,
    steps: u64,
) -> ModelRunStats {
    let st = engine.stats();
    let ss = engine.solver_stats();
    ModelRunStats {
        model,
        time,
        covered_blocks: covered,
        total_blocks: total,
        memory_watermark: st.memory_watermark_bytes,
        paths: engine.terminated().len(),
        steps,
        solver_time: ss.total_time,
        solver_queries: ss.queries,
        solver: ss.clone(),
        instrs: (st.instrs_concrete, st.instrs_symbolic),
        engine: st.clone(),
    }
}

/// The static pre-pass for the driver corpus, mirroring the experiment's
/// run-time setup: forking confined to the driver's code range, kernel
/// entered from arbitrary unit context (everything tainted), driver
/// entries seeded with the harness calling convention (symbolic
/// `r0`/`r1` and tainted memory under the relaxed models), the IRQ
/// handler preempting arbitrary code (everything tainted), and the
/// exerciser's symbolic data entering through its own `S2Op::Symbolic*`
/// sites, which the taint pass seeds by itself.
/// The three per-program analyses behind the base driver pre-pass
/// (kernel, driver, exerciser), exposed so the refinement report can
/// compare the unrefined static model against the refined one.
pub fn driver_base_analyses(
    driver: &Driver,
    kernel: &Program,
    exerciser: &Program,
    symbolic_args: bool,
) -> [s2e_analysis::ProgramAnalysis; 3] {
    let cfg = s2e_tools::deadcode::driver_analysis_config();
    let args = if symbolic_args {
        TaintSeed { regs: RegSet::single(reg::R0).with(reg::R1), mem: true }
    } else {
        TaintSeed::clean()
    };
    let roots: Vec<(u32, TaintSeed)> = ENTRY_ORDER
        .iter()
        .map(|e| (driver.entry(e), args))
        .chain([(driver.entry("irq"), TaintSeed::all())])
        .collect();
    [
        analyze(kernel, &[(kernel.entry, TaintSeed::all())], &cfg),
        analyze(&driver.program, &roots, &cfg),
        analyze(exerciser, &[(exerciser.entry, TaintSeed::clean())], &cfg),
    ]
    .map(|a| a.expect("static pre-pass exceeded its iteration bound"))
}

fn driver_prepass(
    driver: &Driver,
    kernel: &Program,
    exerciser: &Program,
    symbolic_args: bool,
) -> PrepassInfo {
    let mut b = PrepassBuilder::new().allow_fork_range(driver.code_range.clone());
    for a in &driver_base_analyses(driver, kernel, exerciser, symbolic_args) {
        b = b.add(a);
    }
    b.build()
}

/// The static pre-pass for the script-interpreter corpus. The taint
/// roots depend on where each consistency model injects symbolic data:
/// the strict models make the source text in memory symbolic from the
/// start, the relaxed models run the parser concretely and inject
/// symbolic bytecode at the interpreter boundary, and SC-CE injects
/// nothing at all.
/// The two per-program analyses behind the base script pre-pass
/// (kernel, interpreter guest), exposed for the refinement report.
pub fn script_base_analyses(
    guest: &ScriptGuest,
    kernel: &Program,
    model: ConsistencyModel,
) -> [s2e_analysis::ProgramAnalysis; 2] {
    let cfg = s2e_tools::deadcode::driver_analysis_config();
    let mem = TaintSeed { regs: RegSet::EMPTY, mem: true };
    let roots: Vec<(u32, TaintSeed)> = match model {
        ConsistencyModel::ScSe | ConsistencyModel::ScUe => vec![(guest.program.entry, mem)],
        ConsistencyModel::ScCe => vec![(guest.program.entry, TaintSeed::clean())],
        _ => vec![
            (guest.program.entry, TaintSeed::clean()),
            (guest.program.symbol("interp"), mem),
        ],
    };
    [
        analyze(kernel, &[(kernel.entry, TaintSeed::all())], &cfg),
        analyze(&guest.program, &roots, &cfg),
    ]
    .map(|a| a.expect("static pre-pass exceeded its iteration bound"))
}

fn script_prepass(guest: &ScriptGuest, kernel: &Program, model: ConsistencyModel) -> PrepassInfo {
    let mut b = PrepassBuilder::new().allow_fork_range(guest.interp_range.clone());
    for a in &script_base_analyses(guest, kernel, model) {
        b = b.add(a);
    }
    b.build()
}

/// Installs a built pre-pass on the engine and returns the path killer
/// extended with statically-dead-block pruning.
fn install_prepass(engine: &mut Engine, info: PrepassInfo, killer: PathKiller) -> PathKiller {
    let dead = Arc::new(info.unreachable().clone());
    engine.set_annotator(Some(Arc::new(info)));
    killer.with_dead_blocks(dead)
}

/// The refined whole-image analysis for the driver corpus: same roots
/// and seeds as [`driver_prepass`], but kernel + driver + exerciser are
/// analyzed as one merged image so call summaries and indirect-target
/// resolution cross program boundaries.
pub fn driver_refined_prepass(
    driver: &Driver,
    kernel: &Program,
    exerciser: &Program,
    symbolic_args: bool,
) -> RefinedAnalysis {
    let cfg = s2e_tools::deadcode::driver_analysis_config();
    let args = if symbolic_args {
        TaintSeed { regs: RegSet::single(reg::R0).with(reg::R1), mem: true }
    } else {
        TaintSeed::clean()
    };
    let roots: Vec<(u32, TaintSeed)> = [(kernel.entry, TaintSeed::all())]
        .into_iter()
        .chain(ENTRY_ORDER.iter().map(|e| (driver.entry(e), args)))
        .chain([(driver.entry("irq"), TaintSeed::all())])
        .chain([(exerciser.entry, TaintSeed::clean())])
        .collect();
    analyze_refined(&[kernel, &driver.program, exerciser], &roots, &cfg)
        .expect("refined pre-pass exceeded its iteration bound")
}

/// The refined whole-image analysis for the script corpus, with the
/// same per-model taint roots as [`script_prepass`].
pub fn script_refined_prepass(
    guest: &ScriptGuest,
    kernel: &Program,
    model: ConsistencyModel,
) -> RefinedAnalysis {
    let cfg = s2e_tools::deadcode::driver_analysis_config();
    let mem = TaintSeed { regs: RegSet::EMPTY, mem: true };
    let mut roots: Vec<(u32, TaintSeed)> = vec![(kernel.entry, TaintSeed::all())];
    match model {
        ConsistencyModel::ScSe | ConsistencyModel::ScUe => {
            roots.push((guest.program.entry, mem));
        }
        ConsistencyModel::ScCe => roots.push((guest.program.entry, TaintSeed::clean())),
        _ => {
            roots.push((guest.program.entry, TaintSeed::clean()));
            roots.push((guest.program.symbol("interp"), mem));
        }
    }
    analyze_refined(&[kernel, &guest.program], &roots, &cfg)
        .expect("refined pre-pass exceeded its iteration bound")
}

/// Installs the refined pre-pass: annotations (with per-instruction
/// concrete masks), the indirect-target prediction table, and the
/// dynamic discovery refiner that re-stamps annotations through the
/// epoch path after incremental re-analysis.
fn install_refined(
    engine: &mut Engine,
    ra: RefinedAnalysis,
    fork_range: Range<u32>,
    killer: PathKiller,
) -> PathKiller {
    let build_info = move |ra: &RefinedAnalysis, range: &Range<u32>| {
        PrepassBuilder::new().allow_fork_range(range.clone()).add_refined(ra).build()
    };
    let info = build_info(&ra, &fork_range);
    let dead = Arc::new(info.unreachable().clone());
    engine.set_predictions(Some(Arc::new(ra.predictions())));
    engine.set_annotator(Some(Arc::new(info)));
    let shared = Arc::new(Mutex::new(ra));
    engine.set_refiner(Some(Box::new(move |site, target| {
        let mut ra = shared.lock().unwrap();
        ra.absorb(site, target).ok()?;
        Some(RefinementUpdate {
            annotator: Arc::new(build_info(&ra, &fork_range)),
            predictions: Arc::new(ra.predictions()),
        })
    })));
    killer.with_dead_blocks(dead)
}

/// Runs the §6.3 driver experiment: exercise every entry point of
/// `driver` under `model`, with the per-model symbolic-input policy
/// (symbolic hardware under SC-SE/RC-OC, symbolic registry + arguments
/// under the relaxed models, concretized boundary data under SC-UE).
pub fn run_driver_experiment(
    driver: &Driver,
    model: ConsistencyModel,
    budget: &Budget,
) -> ModelRunStats {
    run_driver_experiment_with_solver(driver, model, budget, SolverConfig::default())
}

/// [`run_driver_experiment`] with an explicit solver configuration — the
/// solver-stack ablation toggles slicing/subsumption through this.
pub fn run_driver_experiment_with_solver(
    driver: &Driver,
    model: ConsistencyModel,
    budget: &Budget,
    solver: SolverConfig,
) -> ModelRunStats {
    run_driver_experiment_configured(driver, model, budget, solver, PrepassMode::Off)
}

/// [`run_driver_experiment_with_solver`] plus the static pre-pass
/// selector: with [`PrepassMode::Base`] the three loaded programs are
/// analyzed at load time, the resulting annotations installed on the
/// block cache, and the path killer extended with statically-dead-block
/// pruning; [`PrepassMode::Refined`] additionally runs the
/// interprocedural refinement pipeline and arms the dynamic
/// discovery feedback loop.
pub fn run_driver_experiment_configured(
    driver: &Driver,
    model: ConsistencyModel,
    budget: &Budget,
    solver: SolverConfig,
    prepass: PrepassMode,
) -> ModelRunStats {
    let started = Instant::now();
    let (mut machine, kernel) = boot();
    machine.load_aux(&driver.program);
    let symbolic_args = matches!(
        model,
        ConsistencyModel::Lc | ConsistencyModel::RcOc | ConsistencyModel::RcCc
    );
    let exerciser = build_exerciser(driver, symbolic_args);
    machine.load(&exerciser);

    let mut ec = EngineConfig::with_model(model);
    ec.code_ranges = CodeRanges::all().include(driver.code_range.clone());
    ec.max_states = budget.max_states;
    if model == ConsistencyModel::Lc {
        ec.annotations = standard_annotations();
    }
    // RC-OC targets hardware/value results; opaque allocator pointers keep
    // their identity (see `rc_oc_excluded_syscalls`).
    ec.rc_oc_excluded_syscalls = vec![s2e_guests::kernel::sys::ALLOC];
    let mut engine = Engine::new(machine, ec);
    engine.solver_mut().set_config(solver);
    // Coverage-guided path selection, as the paper's driver experiments use.
    engine.set_strategy(Box::new(s2e_core::search::MaxCoverage::new()));
    let (coverage, cov) = Coverage::new(Some(driver.code_range.clone()));
    engine.add_plugin(Box::new(coverage));
    let mut killer = PathKiller::new(2_000);
    match prepass {
        PrepassMode::Off => {}
        PrepassMode::Base => {
            let info = driver_prepass(driver, &kernel, &exerciser, symbolic_args);
            killer = install_prepass(&mut engine, info, killer);
        }
        PrepassMode::Refined => {
            let ra = driver_refined_prepass(driver, &kernel, &exerciser, symbolic_args);
            killer = install_refined(&mut engine, ra, driver.code_range.clone(), killer);
        }
    }
    engine.add_plugin(Box::new(killer));

    if symbolic_args {
        let id = engine.sole_state().unwrap();
        let b = engine.builder_arc();
        let state = engine.state_mut(id).unwrap();
        let card = make_config_symbolic(state, &b, cfg_keys::CARD_TYPE, "CardType");
        constrain_range(state, &b, &card, 0, 7);
        let flags = make_config_symbolic(state, &b, cfg_keys::FLAGS, "Flags");
        constrain_range(state, &b, &flags, 0, 3);
    }
    engine.apply_model_hardware_policy();

    let steps = drive_to_exhaustion(&mut engine, budget, &cov);
    let covered = cov.lock().unwrap().covered();
    collect_stats(
        &engine,
        model,
        started.elapsed(),
        covered,
        driver.total_blocks(),
        steps,
    )
}

/// Runs the §6.3 script-interpreter (Lua analog) experiment under one
/// model:
///
/// - **SC-SE / SC-UE**: the raw *source string* is symbolic; exploration
///   must fight through the lexer.
/// - **LC**: the parser runs concretely on a seed program; constrained
///   symbolic opcodes are injected after the parsing stage.
/// - **RC-OC**: as LC but the injected opcodes are unconstrained.
pub fn run_script_experiment(model: ConsistencyModel, budget: &Budget) -> ModelRunStats {
    run_script_experiment_with_solver(model, budget, SolverConfig::default())
}

/// [`run_script_experiment`] with an explicit solver configuration.
pub fn run_script_experiment_with_solver(
    model: ConsistencyModel,
    budget: &Budget,
    solver: SolverConfig,
) -> ModelRunStats {
    run_script_experiment_configured(model, budget, solver, PrepassMode::Off)
}

/// [`run_script_experiment_with_solver`] plus the static pre-pass
/// selector (see [`run_driver_experiment_configured`]).
pub fn run_script_experiment_configured(
    model: ConsistencyModel,
    budget: &Budget,
    solver: SolverConfig,
    prepass: PrepassMode,
) -> ModelRunStats {
    let started = Instant::now();
    let guest: ScriptGuest = script::build();
    let (mut machine, kernel) = boot();
    let seed_src = b"a = 1 + 2; p a;";
    machine.mem.load_image(INPUT_BUF, seed_src);
    machine
        .mem
        .load_image(INPUT_BUF + seed_src.len() as u32, &[0]);
    machine.load(&guest.program);

    let mut ec = EngineConfig::with_model(model);
    ec.max_states = budget.max_states;
    ec.max_instrs_per_path = 100_000;
    // The unit is the interpreter; the parser and kernel are environment.
    ec.code_ranges = CodeRanges::all().include(guest.interp_range.clone());
    if model == ConsistencyModel::Lc {
        ec.annotations = standard_annotations();
    }
    let mut engine = Engine::new(machine, ec);
    engine.solver_mut().set_config(solver);
    let (coverage, cov) = Coverage::new(Some(guest.interp_range.clone()));
    engine.add_plugin(Box::new(coverage));
    let mut killer = PathKiller::new(3_000);
    match prepass {
        PrepassMode::Off => {}
        PrepassMode::Base => {
            let info = script_prepass(&guest, &kernel, model);
            killer = install_prepass(&mut engine, info, killer);
        }
        PrepassMode::Refined => {
            let ra = script_refined_prepass(&guest, &kernel, model);
            killer = install_refined(&mut engine, ra, guest.interp_range.clone(), killer);
        }
    }
    engine.add_plugin(Box::new(killer));

    let interp_total = {
        let cfg = s2e_dbt::cfg::build_cfg(&guest.program, &[guest.program.symbol("interp")]);
        cfg.block_starts()
            .filter(|pc| guest.interp_range.contains(pc))
            .count()
    };

    match model {
        ConsistencyModel::ScSe | ConsistencyModel::ScUe => {
            // Symbolic source text (printable, as the CommandLine selector
            // would produce).
            let id = engine.sole_state().unwrap();
            let b = engine.builder_arc();
            make_cstring_symbolic(engine.state_mut(id).unwrap(), &b, INPUT_BUF, 6, "src");
            let steps = drive_to_exhaustion(&mut engine, budget, &cov);
            let covered = cov.lock().unwrap().covered();
            return collect_stats(&engine, model, started.elapsed(), covered, interp_total, steps);
        }
        _ => {}
    }

    // LC / RC-OC / SC-CE: run the parser concretely, then (for the
    // relaxed models) inject symbolic opcodes at the parse→interpret
    // boundary.
    let interp_entry = guest.program.symbol("interp");
    let mut steps = 0u64;
    let mut injected = model == ConsistencyModel::ScCe;
    let mut last_new = 0u64;
    let mut last_count = 0usize;
    while steps < budget.max_steps {
        if !injected {
            if let Some(id) = engine.sole_state() {
                if engine.state(id).unwrap().machine.cpu.pc == interp_entry {
                    let b = engine.builder_arc();
                    let state = engine.state_mut(id).unwrap();
                    // Overwrite the first three bytecode records with
                    // symbolic (op, arg) pairs.
                    let vars = make_mem_symbolic(state, &b, script::BYTECODE_BUF, 6, "bc");
                    if model == ConsistencyModel::Lc {
                        // Constrained within the bytecode contract.
                        for (i, v) in vars.iter().enumerate() {
                            if i % 2 == 0 {
                                let op = b.zext(v.clone(), Width::W32);
                                state
                                    .add_constraint(b.ule(b.constant(1, Width::W32), op.clone()));
                                state.add_constraint(
                                    b.ule(op, b.constant(script::bc::MAX as u64, Width::W32)),
                                );
                            } else {
                                let arg = b.zext(v.clone(), Width::W32);
                                state.add_constraint(b.ult(arg, b.constant(26, Width::W32)));
                            }
                        }
                    }
                    injected = true;
                }
            }
        }
        if engine.step().is_none() {
            break;
        }
        steps += 1;
        let covered = cov.lock().unwrap().covered();
        if covered > last_count {
            last_count = covered;
            last_new = steps;
        } else if steps - last_new > budget.stagnation && engine.live_count() > 1 {
            let keep = engine
                .live_states()
                .max_by_key(|s| s.instrs_retired)
                .map(|s| s.id)
                .expect("live states");
            engine.kill_all_except(keep);
            last_new = steps;
        }
    }
    let covered = cov.lock().unwrap().covered();
    collect_stats(&engine, model, started.elapsed(), covered, interp_total, steps)
}

/// §6.2 symbolic-pointer experiment: explore the table-lookup guest with
/// a given solver page size; returns (paths completed, avg query time,
/// solver time, wall time).
pub fn run_symbolic_pointer_experiment(
    page_size: u32,
    rounds: u32,
    max_steps: u64,
) -> (usize, Duration, Duration, Duration) {
    let started = Instant::now();
    let (mut machine, _k) = boot();
    machine.load(&s2e_guests::lookup::program(rounds));
    let mut ec = EngineConfig::with_model(ConsistencyModel::ScSe);
    ec.symbolic_page_size = page_size;
    ec.max_states = 512;
    let mut engine = Engine::new(machine, ec);
    {
        let id = engine.sole_state().unwrap();
        let b = engine.builder_arc();
        make_mem_symbolic(engine.state_mut(id).unwrap(), &b, INPUT_BUF, rounds, "in");
    }
    engine.run(max_steps);
    let ss = engine.solver_stats();
    (
        engine.terminated().len(),
        if ss.queries == 0 {
            Duration::ZERO
        } else {
            ss.total_time / ss.queries as u32
        },
        ss.total_time,
        started.elapsed(),
    )
}

/// Counts non-blank, non-comment lines in the `.rs` files under `dir` —
/// the SLOCCount analog used for Table 4.
///
/// # Errors
///
/// Propagates I/O errors from directory traversal.
pub fn count_loc(dir: &std::path::Path) -> std::io::Result<usize> {
    let mut total = 0;
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            total += count_loc(&path)?;
        } else if path.extension().map(|e| e == "rs").unwrap_or(false) {
            let text = std::fs::read_to_string(&path)?;
            total += text
                .lines()
                .map(str::trim)
                .filter(|l| !l.is_empty() && !l.starts_with("//"))
                .count();
        }
    }
    Ok(total)
}

/// Prints a right-aligned table row.
pub fn print_row(cols: &[String], widths: &[usize]) {
    let cells: Vec<String> = cols
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect();
    println!("{}", cells.join("  "));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn driver_experiment_produces_stats() {
        let d = s2e_guests::drivers::rtl8139::build();
        let budget = Budget {
            max_steps: 5_000,
            max_states: 16,
            stagnation: 1_000,
        };
        let s = run_driver_experiment(&d, ConsistencyModel::Lc, &budget);
        assert!(s.covered_blocks > 0);
        assert!(s.coverage() <= 1.0);
        assert!(s.steps > 0);
        assert!(s.paths > 0);
    }

    #[test]
    fn script_experiment_lc_covers_interpreter() {
        let budget = Budget {
            max_steps: 20_000,
            max_states: 64,
            stagnation: 3_000,
        };
        let lc = run_script_experiment(ConsistencyModel::Lc, &budget);
        assert!(lc.covered_blocks > 5, "LC covered {}", lc.covered_blocks);
        // SC-SE with a symbolic source string covers less of the
        // interpreter in the same budget (it drowns in the parser).
        let se = run_script_experiment(ConsistencyModel::ScSe, &budget);
        assert!(
            lc.covered_blocks >= se.covered_blocks,
            "LC {} < SC-SE {}",
            lc.covered_blocks,
            se.covered_blocks
        );
    }

    #[test]
    fn loc_counter_counts_this_crate() {
        let n = count_loc(std::path::Path::new(env!("CARGO_MANIFEST_DIR"))).unwrap();
        assert!(n > 100);
    }
}
