//! JSON for benchmark result files — re-exported from [`s2e_obs::json`].
//!
//! The writer used to live here; when the observability layer gained a
//! reader (run reports are parsed back by tools and overhead checks),
//! the whole std-only implementation moved to `s2e-obs` so there is one
//! `Json` type across the workspace. This shim keeps the historical
//! `bench::json::Json` path working.

pub use s2e_obs::json::*;
