//! A minimal JSON writer for benchmark result files.
//!
//! The workspace is std-only by policy (see DESIGN.md §7), so the
//! handful of machine-readable files under `results/` are emitted by
//! this ~100-line serializer instead of serde. It only writes — the
//! consumers are plotting scripts and EXPERIMENTS.md diffing, none of
//! which feed JSON back in.

use std::fmt::Write as _;

/// A JSON value tree. Object keys keep insertion order so emitted files
/// diff cleanly run-to-run.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// All numbers are f64, like JSON itself; integers up to 2^53 round-trip.
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object, to be filled with [`Json::set`].
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Inserts (or replaces) `key` in an object; panics on non-objects.
    pub fn set(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(pairs) => {
                let value = value.into();
                if let Some(p) = pairs.iter_mut().find(|(k, _)| k == key) {
                    p.1 = value;
                } else {
                    pairs.push((key.to_string(), value));
                }
            }
            other => panic!("Json::set on non-object {other:?}"),
        }
        self
    }

    /// Renders with two-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if !n.is_finite() {
                    out.push_str("null");
                } else if n.fract() == 0.0 && n.abs() < 9e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    let _ = write!(out, "{pad}  ");
                    item.write(out, indent + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                let _ = write!(out, "{pad}]");
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    let _ = write!(out, "{pad}  ");
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                    out.push_str(if i + 1 < pairs.len() { ",\n" } else { "\n" });
                }
                let _ = write!(out, "{pad}}}");
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}
impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}
impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Num(n as f64)
    }
}
impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Num(n as f64)
    }
}
impl From<u32> for Json {
    fn from(n: u32) -> Json {
        Json::Num(n as f64)
    }
}
impl From<i64> for Json {
    fn from(n: i64) -> Json {
        Json::Num(n as f64)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(items: Vec<T>) -> Json {
        Json::Arr(items.into_iter().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structures() {
        let j = Json::obj()
            .set("name", "overhead")
            .set("ratio", 6.5)
            .set("count", 3u64)
            .set("ok", true)
            .set("series", vec![1u64, 2, 3])
            .set("nested", Json::obj().set("empty", Json::Arr(Vec::new())));
        let text = j.render();
        assert!(text.contains("\"name\": \"overhead\""));
        assert!(text.contains("\"ratio\": 6.5"));
        assert!(text.contains("\"count\": 3"));
        assert!(text.contains("\"empty\": []"));
        assert!(text.ends_with("}\n"));
    }

    #[test]
    fn escapes_strings() {
        let j = Json::Str("a\"b\\c\nd\u{1}".to_string());
        assert_eq!(j.render(), "\"a\\\"b\\\\c\\nd\\u0001\"\n");
    }

    #[test]
    fn integral_floats_render_without_point() {
        assert_eq!(Json::Num(1e9).render(), "1000000000\n");
        assert_eq!(Json::Num(0.25).render(), "0.25\n");
    }
}
