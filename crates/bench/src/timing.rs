//! A minimal timing harness replacing criterion for the `benches/`
//! binaries (std-only policy, DESIGN.md §7).
//!
//! Scope is deliberately small: warm up, take N wall-clock samples of a
//! closure, report min/median/mean/max. No statistical outlier analysis,
//! no HTML — the benches feed `results/*.json` and the comparisons in
//! EXPERIMENTS.md are order-of-magnitude (6× vs 78×), not percent-level.

use crate::json::Json;
use std::time::{Duration, Instant};

/// Summary statistics for one benchmark, in nanoseconds per iteration.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Benchmark name, unique within its group.
    pub name: String,
    /// Timed samples per iteration, sorted ascending (ns).
    pub samples_ns: Vec<f64>,
}

impl Measurement {
    pub fn min_ns(&self) -> f64 {
        self.samples_ns.first().copied().unwrap_or(0.0)
    }

    pub fn max_ns(&self) -> f64 {
        self.samples_ns.last().copied().unwrap_or(0.0)
    }

    pub fn mean_ns(&self) -> f64 {
        if self.samples_ns.is_empty() {
            0.0
        } else {
            self.samples_ns.iter().sum::<f64>() / self.samples_ns.len() as f64
        }
    }

    /// Median (the headline number — robust to a slow first sample).
    pub fn median_ns(&self) -> f64 {
        let n = self.samples_ns.len();
        if n == 0 {
            0.0
        } else if n % 2 == 1 {
            self.samples_ns[n / 2]
        } else {
            (self.samples_ns[n / 2 - 1] + self.samples_ns[n / 2]) / 2.0
        }
    }

    /// The JSON shape written under `results/`:
    /// `{name, samples, median_ns, mean_ns, min_ns, max_ns}`.
    pub fn to_json(&self) -> Json {
        Json::obj()
            .set("name", self.name.as_str())
            .set("samples", self.samples_ns.len())
            .set("median_ns", self.median_ns())
            .set("mean_ns", self.mean_ns())
            .set("min_ns", self.min_ns())
            .set("max_ns", self.max_ns())
    }
}

/// A named collection of measurements (criterion's `benchmark_group`
/// analog) that renders to one JSON object.
pub struct Group {
    name: String,
    sample_size: usize,
    results: Vec<Measurement>,
}

impl Group {
    pub fn new(name: &str) -> Group {
        Group {
            name: name.to_string(),
            sample_size: 20,
            results: Vec::new(),
        }
    }

    /// Samples taken per benchmark (default 20, criterion's old setting
    /// here).
    pub fn sample_size(mut self, n: usize) -> Group {
        assert!(n > 0);
        self.sample_size = n;
        self
    }

    /// Times `op`, printing a one-line summary as it completes. The
    /// closure's result is passed through [`std::hint::black_box`] so the
    /// optimizer cannot delete the work.
    pub fn bench<T>(&mut self, name: &str, mut op: impl FnMut() -> T) -> &mut Group {
        self.bench_with_setup(name, || (), |()| op())
    }

    /// Times `op(setup())` with setup excluded from the measurement —
    /// criterion's `iter_batched`.
    pub fn bench_with_setup<S, T>(
        &mut self,
        name: &str,
        mut setup: impl FnMut() -> S,
        mut op: impl FnMut(S) -> T,
    ) -> &mut Group {
        // Warmup: fill caches and page in code, untimed.
        let warmup = (self.sample_size / 10).max(2);
        for _ in 0..warmup {
            std::hint::black_box(op(setup()));
        }
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let input = setup();
            let started = Instant::now();
            let out = op(input);
            let elapsed = started.elapsed();
            std::hint::black_box(out);
            samples.push(elapsed.as_nanos() as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let m = Measurement {
            name: name.to_string(),
            samples_ns: samples,
        };
        println!(
            "{}/{name}: median {} (min {}, max {})",
            self.name,
            fmt_ns(m.median_ns()),
            fmt_ns(m.min_ns()),
            fmt_ns(m.max_ns()),
        );
        self.results.push(m);
        self
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn results(&self) -> &[Measurement] {
        &self.results
    }

    /// Median of a named benchmark, for computing ratios between entries.
    pub fn median_of(&self, name: &str) -> Option<f64> {
        self.results
            .iter()
            .find(|m| m.name == name)
            .map(Measurement::median_ns)
    }

    /// `{"name": ..., "benchmarks": [...]}`.
    pub fn to_json(&self) -> Json {
        Json::obj().set("name", self.name.as_str()).set(
            "benchmarks",
            Json::Arr(self.results.iter().map(Measurement::to_json).collect()),
        )
    }
}

/// Writes a bench result file under `results/`, creating the directory
/// if a bench binary runs in a fresh checkout. `groups` become
/// `{"groups": [...]}` with one entry per [`Group`].
pub fn write_results(file_name: &str, groups: &[&Group]) -> std::io::Result<std::path::PathBuf> {
    let root = workspace_root();
    let dir = root.join("results");
    std::fs::create_dir_all(&dir)?;
    let json = Json::obj().set(
        "groups",
        Json::Arr(groups.iter().map(|g| g.to_json()).collect()),
    );
    let path = dir.join(file_name);
    std::fs::write(&path, json.render())?;
    println!("wrote {}", path.display());
    Ok(path)
}

/// The workspace root, two levels up from this crate's manifest.
pub fn workspace_root() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("bench crate lives at <root>/crates/bench")
        .to_path_buf()
}

fn fmt_ns(ns: f64) -> String {
    let d = Duration::from_nanos(ns as u64);
    if d >= Duration::from_millis(10) {
        format!("{:.1}ms", d.as_secs_f64() * 1e3)
    } else if d >= Duration::from_micros(10) {
        format!("{:.1}µs", d.as_secs_f64() * 1e6)
    } else {
        format!("{ns:.0}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurement_stats() {
        let m = Measurement {
            name: "t".into(),
            samples_ns: vec![1.0, 2.0, 3.0, 10.0],
        };
        assert_eq!(m.min_ns(), 1.0);
        assert_eq!(m.max_ns(), 10.0);
        assert_eq!(m.median_ns(), 2.5);
        assert_eq!(m.mean_ns(), 4.0);
    }

    #[test]
    fn group_measures_and_serializes() {
        let mut g = Group::new("unit").sample_size(5);
        let mut n = 0u64;
        g.bench("count", || {
            n += 1;
            n
        });
        assert_eq!(g.results().len(), 1);
        assert_eq!(g.results()[0].samples_ns.len(), 5);
        assert!(g.median_of("count").is_some());
        assert!(g.median_of("absent").is_none());
        let text = g.to_json().render();
        assert!(text.contains("\"name\": \"unit\""));
        assert!(text.contains("\"median_ns\""));
    }

    #[test]
    fn setup_excluded_from_timing() {
        let mut g = Group::new("unit").sample_size(3);
        g.bench_with_setup("sum", || vec![1u64; 64], |v| v.iter().sum::<u64>());
        assert!(g.results()[0].min_ns() >= 0.0);
    }
}
