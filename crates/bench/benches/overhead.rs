//! §6.2 overhead benches: the platform's cost over the plain interpreter.
//!
//! The paper reports ~6× runtime overhead over vanilla QEMU in concrete
//! mode (symbolic-memory checks) and ~78× in symbolic mode (expression
//! interpretation + solving). Here "vanilla QEMU" is the reference
//! interpreter, and the same guest workload runs in three configurations.
//!
//! Runs under the in-repo harness (`cargo bench --bench overhead`) and
//! writes `results/overhead.json`.

use bench::timing::{write_results, Group};
use s2e_core::selectors::make_reg_symbolic;
use s2e_core::{ConsistencyModel, Engine, EngineConfig};
use s2e_vm::asm::{Assembler, Program};
use s2e_vm::interp::run_concrete;
use s2e_vm::isa::reg;
use s2e_vm::machine::Machine;

/// A compute-heavy loop: 200 iterations of mixed ALU and memory work.
fn workload() -> Program {
    let mut a = Assembler::new(0x4000);
    a.movi(reg::R0, 0);
    a.movi(reg::R1, 200);
    a.movi(reg::R2, 0x8000);
    // r7 is the data seed: left untouched so harnesses can symbolize it.
    a.label("loop");
    a.mul(reg::R4, reg::R0, reg::R7);
    a.xori(reg::R4, reg::R4, 0x5a5a);
    a.st32(reg::R2, 0, reg::R4);
    a.ld32(reg::R5, reg::R2, 0);
    a.add(reg::R6, reg::R6, reg::R5);
    a.addi(reg::R0, reg::R0, 1);
    a.bltu(reg::R0, reg::R1, "loop");
    a.halt();
    a.finish()
}

fn machine_with_workload() -> Machine {
    let mut m = Machine::new();
    m.load(&workload());
    m
}

fn main() {
    let mut g = Group::new("overhead").sample_size(20);

    // Baseline: the reference interpreter ("vanilla QEMU").
    g.bench("native_interpreter", || {
        let mut m = machine_with_workload();
        run_concrete(&mut m, 100_000).unwrap()
    });

    // The engine running fully concrete code (fast path + event checks).
    g.bench("engine_concrete", || {
        let mut e = Engine::new(
            machine_with_workload(),
            EngineConfig::with_model(ConsistencyModel::ScCe),
        );
        e.run(100_000)
    });

    // The engine with the multiplier operand symbolic: every iteration's
    // mul/xor/store/load/add chain flows through the symbolic executor
    // (fresh expression DAGs, byte-split stores, concat loads), while the
    // loop counter stays concrete so the path count remains 1 — this
    // isolates symbolic-interpretation cost from forking.
    g.bench("engine_symbolic", || {
        let mut e = Engine::new(
            machine_with_workload(),
            EngineConfig::with_model(ConsistencyModel::ScSe),
        );
        let id = e.sole_state().unwrap();
        let bd = e.builder_arc();
        make_reg_symbolic(e.state_mut(id).unwrap(), &bd, reg::R7, "seed");
        e.run(100_000)
    });

    let base = g.median_of("native_interpreter").unwrap();
    for name in ["engine_concrete", "engine_symbolic"] {
        let m = g.median_of(name).unwrap();
        println!("{name}: {:.1}x over native", m / base);
    }

    write_results("overhead.json", &[&g]).expect("write results/overhead.json");
}
