//! Ablation benches for the design decisions DESIGN.md §3 calls out:
//! the bitfield-theory simplifier, the solver's query cache, copy-on-
//! write state forking, and the translation-block cache.
//!
//! Runs under the in-repo harness (`cargo bench --bench ablations`) and
//! writes `results/ablations.json`.

use bench::timing::{write_results, Group};
use s2e_expr::{ExprBuilder, ExprRef, Width};
use s2e_solver::{Solver, SolverConfig};
use s2e_vm::machine::Machine;

/// A bitfield-heavy constraint like the flag-register expressions the
/// DBT produces: flag bits assembled next to *masked-away* multiplier
/// noise. The demanded-bits pass removes the multiplications entirely,
/// which is where the simplifier earns its keep — a 32-bit multiplier
/// costs thousands of CNF clauses to blast.
fn flaggy_constraint(b: &ExprBuilder) -> Vec<ExprRef> {
    let x = b.var("x", Width::W32);
    let mut acc = b.constant(0, Width::W32);
    for i in 0..8u32 {
        let bit = b.and(
            b.lshr(x.clone(), b.constant(i as u64 * 4, Width::W32)),
            b.constant(1, Width::W32),
        );
        acc = b.or(b.shl(acc, b.constant(1, Width::W32)), bit);
    }
    // High-half noise: multiplications whose bits the final mask discards.
    let noise = b.shl(
        b.mul(x.clone(), b.var("y", Width::W32)),
        b.constant(16, Width::W32),
    );
    let word = b.or(b.and(acc, b.constant(0xffff, Width::W32)), noise);
    let masked = b.and(word, b.constant(0xff, Width::W32));
    vec![b.eq(masked, b.constant(0xa5, Width::W32))]
}

fn bench_simplifier() -> Group {
    let mut g = Group::new("ablation_simplifier").sample_size(20);
    for (name, simplify) in [("with_simplifier", true), ("without_simplifier", false)] {
        g.bench_with_setup(
            name,
            || {
                let b = ExprBuilder::new();
                let cs = flaggy_constraint(&b);
                let solver = Solver::with_config(SolverConfig {
                    simplify_queries: simplify,
                    enable_cache: false,
                    ..SolverConfig::default()
                });
                (cs, solver)
            },
            |(cs, mut solver)| solver.check(&cs),
        );
    }
    g
}

fn bench_solver_cache() -> Group {
    let mut g = Group::new("ablation_solver_cache").sample_size(20);
    for (name, cache) in [("with_cache", true), ("without_cache", false)] {
        let b = ExprBuilder::new();
        let cs = flaggy_constraint(&b);
        let mut solver = Solver::with_config(SolverConfig {
            enable_cache: cache,
            ..SolverConfig::default()
        });
        // Warm once, then measure repeat queries (the common pattern:
        // every fork re-checks the same prefix).
        solver.check(&cs);
        g.bench(name, || solver.check(&cs));
    }
    g
}

fn bench_cow_fork() -> Group {
    let mut g = Group::new("ablation_cow_fork").sample_size(20);
    // A machine with a substantial touched working set.
    let mut big = Machine::new();
    for page in 0..256u32 {
        big.mem.write_u32(0x10_0000 + page * 4096, page).unwrap();
    }
    g.bench("cow_clone", || big.clone());
    g.bench("deep_rebuild", || {
        // What forking would cost without CoW: re-materialize every page.
        let mut m = Machine::new();
        for page in 0..256u32 {
            m.mem.write_u32(0x10_0000 + page * 4096, page).unwrap();
        }
        m
    });
    g
}

fn bench_block_cache() -> Group {
    use s2e_dbt::BlockCache;
    use s2e_vm::asm::Assembler;
    use s2e_vm::isa::reg;
    let mut g = Group::new("ablation_block_cache").sample_size(20);
    let mut a = Assembler::new(0x2000);
    for i in 0..32 {
        a.addi(reg::R0, reg::R0, i);
    }
    a.halt();
    let p = a.finish();
    let mut mem = s2e_vm::mem::Memory::new();
    mem.load_image(p.base, &p.image);

    {
        let mut cache = BlockCache::new();
        cache.translate(&mem, 0x2000, &mut |_, _| {});
        g.bench("cached_lookup", || {
            cache.translate(&mem, 0x2000, &mut |_, _| {})
        });
    }
    g.bench("retranslate_every_time", || {
        let mut cache = BlockCache::new();
        cache.translate(&mem, 0x2000, &mut |_, _| {})
    });
    g
}

fn main() {
    let groups = [
        bench_simplifier(),
        bench_solver_cache(),
        bench_cow_fork(),
        bench_block_cache(),
    ];
    let refs: Vec<&Group> = groups.iter().collect();
    write_results("ablations.json", &refs).expect("write results/ablations.json");
}
