//! Cross-process journal round trip (DESIGN.md §17): a state evicted
//! in one OS process must rehydrate bit-identical — fingerprint
//! checked — in another process with a different id namespace.
//!
//! The parent builds the branchy guest under namespace 0, forks the
//! frontier, evicts one surplus state to compact wire form, and writes
//! it to a file. It then re-executes this test binary filtered to the
//! child test, which (under namespace 1, a genuinely fresh interner
//! and engine) decodes, rehydrates — `Engine::rehydrate` panics on any
//! replay divergence or fingerprint mismatch — and writes the
//! rehydrated state's fingerprint back. The parent compares it against
//! the fingerprint of the live original.

use s2e_core::wire::{decode_compact, encode_compact};
use s2e_core::{ConsistencyModel, Engine, SharedEngineContext};
use s2e_expr::wire::WireReader;
use std::process::Command;

const COMPACT_ENV: &str = "S2E_CROSS_PROCESS_COMPACT";
const OUT_ENV: &str = "S2E_CROSS_PROCESS_OUT";

fn build_engine(worker: usize) -> Engine {
    let shared = SharedEngineContext::new();
    shared.builder.set_var_id_namespace(worker);
    let (machine, config) = s2e_dist::guest::build("branchy", ConsistencyModel::ScSe).unwrap();
    let mut engine = Engine::with_shared(machine, config, &shared);
    engine.set_state_id_namespace(worker);
    s2e_dist::guest::inject(&mut engine, "branchy").unwrap();
    engine
}

/// Child half: only active when re-executed by the parent test.
#[test]
fn child_rehydrates_in_fresh_process() {
    let (Ok(compact_path), Ok(out_path)) =
        (std::env::var(COMPACT_ENV), std::env::var(OUT_ENV))
    else {
        return; // normal test runs skip the child half
    };
    let bytes = std::fs::read(compact_path).unwrap();
    let mut r = WireReader::new(&bytes);
    let compact = decode_compact(&mut r).unwrap();
    assert!(r.is_empty(), "trailing bytes after compact state");

    let mut engine = build_engine(1);
    engine.drain_states();
    // Rehydration replays the journal and asserts the embedded
    // fingerprint of the exporting process's live original.
    let state = engine.rehydrate(compact);
    std::fs::write(out_path, state.fingerprint().to_le_bytes()).unwrap();
}

#[test]
fn state_evicted_here_rehydrates_bit_identical_there() {
    let mut engine = build_engine(0);
    // Step until the first fork gives us a detachable surplus state.
    for _ in 0..10_000 {
        if engine.live_count() >= 2 {
            break;
        }
        engine.step().unwrap();
    }
    assert!(engine.live_count() >= 2, "branchy guest must fork");
    let mut surplus = engine.detach_overflow(1);
    let state = surplus.pop().unwrap();
    let expected = state.fingerprint();
    let compact = engine.evict_state(state, true);
    let mut bytes = Vec::new();
    encode_compact(&compact, &mut bytes).unwrap();

    let dir = std::env::temp_dir();
    let compact_path = dir.join(format!("s2e-cross-compact-{}", std::process::id()));
    let out_path = dir.join(format!("s2e-cross-out-{}", std::process::id()));
    std::fs::write(&compact_path, &bytes).unwrap();
    let _ = std::fs::remove_file(&out_path);

    let status = Command::new(std::env::current_exe().unwrap())
        .args(["child_rehydrates_in_fresh_process", "--exact"])
        .env(COMPACT_ENV, &compact_path)
        .env(OUT_ENV, &out_path)
        .status()
        .unwrap();
    assert!(status.success(), "child process failed: {status:?}");

    let got = std::fs::read(&out_path).unwrap();
    let got = u64::from_le_bytes(got.try_into().unwrap());
    assert_eq!(got, expected, "cross-process fingerprint mismatch");
    let _ = std::fs::remove_file(&compact_path);
    let _ = std::fs::remove_file(&out_path);
}
