//! Migration purity: moving one state to another process must not
//! change the explored path tree.
//!
//! At a sampled batch boundary, one live state is evicted from engine A
//! (worker 0), wire-round-tripped as a compact `{checkpoint, journal}`,
//! and rehydrated into a *fresh* engine B (worker 1: own builder
//! namespace, cold caches — exactly what a remote worker sees). Both
//! engines then run to exhaustion and the union of their path digests
//! must equal the sequential baseline's, as a multiset.
//!
//! Boundary 65 is pinned because it reproduced a real divergence: the
//! bitblaster allocated fresh SAT variables per `Var` *node* rather
//! than per `VarId`, so a rehydrated state — whose constraints mix
//! wire-decoded and journal-replay-minted allocations of the same
//! variable — could satisfy `x == 0 && x == 1` and fork paths the
//! home process had proven infeasible.

use s2e_core::wire::{decode_compact, encode_compact};
use s2e_core::{ConsistencyModel, Engine, SharedEngineContext};
use s2e_expr::wire::WireReader;

const GUEST: &str = "91c111";
const MODEL: ConsistencyModel = ConsistencyModel::Lc;
/// Batch boundaries (64-step batches) at which to try the migration.
const BOUNDARIES: &[u64] = &[0, 33, 65];

fn build_engine(worker: usize) -> Engine {
    let shared = SharedEngineContext::new();
    shared.builder.set_var_id_namespace(worker);
    let (machine, config) = s2e_dist::guest::build(GUEST, MODEL).unwrap();
    let mut e = Engine::with_shared(machine, config, &shared);
    e.set_state_id_namespace(worker);
    s2e_dist::guest::inject(&mut e, GUEST).unwrap();
    e.set_retain_terminated(true);
    e
}

fn digests(e: &Engine) -> Vec<u64> {
    e.terminated_states().iter().map(s2e_core::ExecState::path_digest).collect()
}

fn run_to_exhaustion(e: &mut Engine, budget: u64) {
    let mut left = budget;
    while e.live_count() > 0 && left > 0 {
        if e.step().is_none() {
            break;
        }
        left -= 1;
    }
    assert!(left > 0, "budget exhausted");
}

#[test]
fn migrating_one_state_preserves_the_path_tree() {
    let mut base = build_engine(0);
    run_to_exhaustion(&mut base, 10_000_000);
    let mut expected = digests(&base);
    expected.sort_unstable();
    assert!(expected.len() > 1, "corpus must fork");

    for &boundary in BOUNDARIES {
        let mut a = build_engine(0);
        let mut b = build_engine(1);
        b.drain_states();

        let mut batches = 0u64;
        let mut migrated = false;
        let mut left: u64 = 10_000_000;
        while a.live_count() > 0 && left > 0 {
            for _ in 0..64 {
                if a.live_count() == 0 || left == 0 {
                    break;
                }
                if a.step().is_none() {
                    break;
                }
                left -= 1;
            }
            if !migrated && a.live_count() > 1 {
                if batches == boundary {
                    // Detach exactly one state; keep the rest scheduled.
                    let keep = a.live_count() - 1;
                    let s = a.detach_overflow(keep).pop().unwrap();
                    let compact = a.evict_state(s, true);
                    let mut buf = Vec::new();
                    encode_compact(&compact, &mut buf).unwrap();
                    let mut r = WireReader::new(&buf);
                    let back = decode_compact(&mut r).unwrap();
                    let st = b.rehydrate(back);
                    b.attach_state(st);
                    migrated = true;
                }
                batches += 1;
            }
        }
        assert!(migrated, "boundary {boundary} never had a surplus state");
        run_to_exhaustion(&mut b, 10_000_000);

        let mut got = digests(&a);
        got.extend(digests(&b));
        got.sort_unstable();
        if got != expected {
            let mut only_got = got.clone();
            let mut only_exp = expected.clone();
            for d in &expected {
                if let Some(p) = only_got.iter().position(|x| x == d) {
                    only_got.remove(p);
                }
            }
            for d in &got {
                if let Some(p) = only_exp.iter().position(|x| x == d) {
                    only_exp.remove(p);
                }
            }
            panic!(
                "boundary {boundary}: migrated run diverged ({} vs {} paths): \
                 extra {only_got:x?}, missing {only_exp:x?}",
                got.len(),
                expected.len()
            );
        }
    }
}
