//! A worker process: the in-process explorer's three-phase loop
//! (run / export-overflow / steal-or-park), with every scheduler
//! interaction turned into a lock-step RPC on one TCP stream
//! (DESIGN.md §17).
//!
//! The loop body mirrors `s2e_core::parallel`'s deque worker closely
//! on purpose — same batch claims against a global budget, same
//! halve-when-hungry export heuristic, same reclaim/steal semantics
//! (the coordinator classifies by exporter id). Where the in-process
//! worker touches shared memory, this one sends a frame:
//!
//! * budget claim / refund   → `CLAIM` / `GRANT`
//! * deque push of overflow  → `EXPORT` (states evicted to compact
//!   wire form, fingerprint embedded and re-verified on rehydration)
//! * deque pop / park        → `NEED_WORK`, blocking until `ASSIGN`
//!   or `FINISHED`
//! * shared query cache      → periodic `CACHE_SYNC`/`CACHE_DELTA`
//!   batches against the coordinator's master cache
//! * telemetry sampler       → periodic `SNAPSHOT` lines in the
//!   single-worker `s2e-live-v1` schema, relayed into the merged feed
//!
//! Identity across processes needs two namespaces: the expression
//! builder's variable-id namespace and the engine's state-id
//! namespace, both keyed by the worker index exactly as the in-process
//! tiers do. Fresh ids minted by different processes can then never
//! collide when a state (whose journal replays variable allocation)
//! migrates.

use crate::guest;
use crate::proto::{
    self, Claim, ExportBatch, Grant, Hello, JobSpec, Refund, WorkerDone,
};
use s2e_core::wire::{decode_compact, encode_compact};
use s2e_core::{Engine, ExecState, SharedEngineContext};
use s2e_expr::wire::{bad_data, WireReader};
use s2e_obs::{snapshot_line, MetricsRegistry, MetricsSnapshot};
use std::io;
use std::net::TcpStream;
use std::time::Instant;

/// Cache-sync cadence, in claim batches. Syncing costs one round trip
/// plus an export scan under the cache lock; every 8 batches keeps the
/// cross-process hit rate close to the shared-memory tier's without
/// making the coordinator a per-query bottleneck.
const CACHE_SYNC_EVERY: u64 = 8;

/// Runs one worker process against the coordinator at `addr`.
/// Blocks until the coordinator declares the job finished.
pub fn run_worker(addr: &str, worker: usize) -> io::Result<()> {
    let mut conn = TcpStream::connect(addr)?;
    conn.set_nodelay(true)?;
    proto::send(&mut conn, proto::T_HELLO, &Hello { worker: worker as u32 }.encode())?;
    let spec = JobSpec::decode(&proto::recv(&mut conn, proto::T_JOB, "job")?)?;

    // A process-local shared context: this worker's engine is the only
    // user, but the namespaced builder and the query cache behave
    // exactly as one shard of the in-process exploration.
    let shared = SharedEngineContext::new();
    shared.builder.set_var_id_namespace(worker);
    let (machine, config) = guest::build(&spec.guest, spec.model)?;
    let mut engine = Engine::with_shared(machine, config, &shared);
    engine.set_state_id_namespace(worker);
    guest::inject(&mut engine, &spec.guest)?;
    engine.set_retain_terminated(spec.collect_digests);
    if worker != 0 {
        // Every worker builds the same root; only worker 0 explores it.
        engine.drain_states();
    }

    let telemetry = (spec.snapshot_every > 0).then(|| MetricsRegistry::new(1));
    if let Some(reg) = &telemetry {
        engine.set_telemetry(Some(reg.handle(0)));
    }
    let started = Instant::now();
    let mut snap_seq = 0u64;
    let mut snap_prev: Option<(MetricsSnapshot, u64)> = None;

    let mut cache_mark = 0u64;
    let mut refund = 0u64;
    let mut exports_total = 0u64;
    let mut batches = 0u64;

    'outer: loop {
        // Phase 1: run local work, batch by batch against the global
        // budget.
        while engine.live_count() > 0 {
            proto::send(
                &mut conn,
                proto::T_CLAIM,
                &Claim { refund, batch: spec.batch }.encode(),
            )?;
            refund = 0;
            let grant = Grant::decode(&proto::recv(&mut conn, proto::T_GRANT, "grant")?)?;
            if grant.steps == 0 {
                // Budget spent: the coordinator has marked the run done.
                break 'outer;
            }
            let mut used = 0;
            while used < grant.steps {
                if engine.step().is_none() {
                    break;
                }
                used += 1;
            }
            refund = grant.steps - used;
            batches += 1;

            if batches % CACHE_SYNC_EVERY == 0 {
                cache_mark = sync_cache(&mut conn, &shared, cache_mark)?;
            }
            if let Some(reg) = &telemetry {
                if batches % spec.snapshot_every == 0 {
                    engine.publish_telemetry();
                    send_snapshot(&mut conn, reg, &started, &mut snap_seq, &mut snap_prev, false)?;
                }
            }

            // Phase 2: export fork overflow. `hungry` is the starvation
            // count the coordinator piggybacked on the grant — the same
            // instantaneous signal the in-process heuristic reads, one
            // round trip stale.
            let live = engine.live_count();
            let keep = if grant.hungry > 0 && live > 1 {
                (live + 1) / 2
            } else if live > spec.max_local_states as usize {
                spec.max_local_states as usize
            } else {
                live
            };
            if keep < live {
                let surplus = engine.detach_overflow(keep);
                let states = pack_surplus(&mut engine, surplus)?;
                exports_total += states.len() as u64;
                proto::send(&mut conn, proto::T_EXPORT, &ExportBatch { states }.encode())?;
                proto::recv(&mut conn, proto::T_EXPORT_ACK, "export ack")?;
            }
        }

        // Phase 3: local frontier dry — ask for work and block. The
        // coordinator parks us server-side; no polling.
        proto::send(&mut conn, proto::T_NEED_WORK, &Refund { refund }.encode())?;
        refund = 0;
        let (ty, payload) = crate::frame::read_frame(&mut conn)?;
        match ty {
            proto::T_ASSIGN => {
                let a = proto::Assign::decode(&payload)?;
                let state = unpack_assigned(&mut engine, &a.state)?;
                engine.attach_state(state);
            }
            proto::T_FINISHED => break 'outer,
            other => {
                return Err(bad_data(format!(
                    "expected assignment or finished, got frame type {other}"
                )))
            }
        }
    }

    // Last cache delta and final snapshot, then the report.
    cache_mark = sync_cache(&mut conn, &shared, cache_mark)?;
    let _ = cache_mark;
    if let Some(reg) = &telemetry {
        engine.publish_telemetry();
        send_snapshot(&mut conn, reg, &started, &mut snap_seq, &mut snap_prev, true)?;
    }
    let done = build_report(&engine, worker as u32, refund, exports_total);
    proto::send(&mut conn, proto::T_DONE, &done.encode())?;
    proto::recv(&mut conn, proto::T_DONE_ACK, "done ack")?;
    Ok(())
}

/// Evicts each surplus state to compact form (replay-verified, so the
/// embedded fingerprint is known-good before it crosses the wire) and
/// encodes it for shipping.
fn pack_surplus(engine: &mut Engine, surplus: Vec<ExecState>) -> io::Result<Vec<Vec<u8>>> {
    let mut states = Vec::with_capacity(surplus.len());
    for s in surplus {
        let compact = engine.evict_state(s, true);
        let mut buf = Vec::new();
        encode_compact(&compact, &mut buf)?;
        states.push(buf);
    }
    Ok(states)
}

/// Decodes and rehydrates an assigned compact state. Rehydration
/// replays the journal on this engine and asserts the exporter's
/// fingerprint — the end-to-end integrity check for the wire transit.
fn unpack_assigned(engine: &mut Engine, bytes: &[u8]) -> io::Result<ExecState> {
    let mut r = WireReader::new(bytes);
    let compact = decode_compact(&mut r)?;
    if !r.is_empty() {
        return Err(bad_data("trailing bytes after assigned compact state"));
    }
    Ok(engine.rehydrate(compact))
}

/// One cache round trip: ship local entries newer than `mark`, import
/// the coordinator's delta, and move the mark past everything now
/// resident — the worker is single-threaded between syncs, so nothing
/// it later exports can be an echo of an import.
fn sync_cache(
    conn: &mut TcpStream,
    shared: &SharedEngineContext,
    mark: u64,
) -> io::Result<u64> {
    let (mine, _) = shared.query_cache.export_since(mark);
    proto::send(conn, proto::T_CACHE_SYNC, &proto::encode_cache_batch(&mine))?;
    let delta =
        proto::decode_cache_batch(&proto::recv(conn, proto::T_CACHE_DELTA, "cache delta")?)?;
    shared.query_cache.import(delta);
    Ok(shared.query_cache.next_stamp())
}

/// Emits one `s2e-live-v1` snapshot line for the relay.
fn send_snapshot(
    conn: &mut TcpStream,
    reg: &MetricsRegistry,
    started: &Instant,
    seq: &mut u64,
    prev: &mut Option<(MetricsSnapshot, u64)>,
    is_final: bool,
) -> io::Result<()> {
    let wall_ns = started.elapsed().as_nanos() as u64;
    let snap = reg.snapshot();
    let line = snapshot_line(
        *seq,
        wall_ns,
        1,
        &snap,
        prev.as_ref().map(|(s, w)| (s, *w)),
        is_final,
    )
    .render();
    *seq += 1;
    *prev = Some((snap, wall_ns));
    proto::send(conn, proto::T_SNAPSHOT, &proto::encode_line(&line))?;
    proto::recv(conn, proto::T_SNAPSHOT_ACK, "snapshot ack")?;
    Ok(())
}

/// Folds the engine's end-of-run numbers into the wire report.
fn build_report(engine: &Engine, worker: u32, refund: u64, exports: u64) -> WorkerDone {
    let stats = engine.stats();
    let solver = engine.solver_stats();
    let mut path_digests: Vec<u64> = engine
        .terminated_states()
        .iter()
        .map(ExecState::path_digest)
        .collect();
    path_digests.sort_unstable();
    let mut covered_blocks: Vec<u32> = engine.seen_blocks().iter().copied().collect();
    covered_blocks.sort_unstable();
    WorkerDone {
        worker,
        refund,
        paths: engine.terminated().len() as u64,
        exports,
        path_digests,
        covered_blocks,
        forks: stats.forks,
        states_created: stats.states_created,
        states_terminated: stats.states_terminated,
        blocks_executed: stats.blocks_executed,
        instrs_concrete: stats.instrs_concrete,
        instrs_symbolic: stats.instrs_symbolic,
        concretizations: stats.concretizations,
        evictions: stats.evictions,
        rehydrations: stats.rehydrations,
        replayed_instrs: stats.replayed_instrs,
        journal_bytes: stats.journal_bytes,
        solver_queries: solver.queries,
        shared_query_hits: solver.shared_hits,
        solver_core_solves: solver.core_solves,
    }
}
