//! Length-prefixed frames: the unit of the coordinator/worker wire
//! protocol (DESIGN.md §17).
//!
//! A frame is a little-endian `u32` length prefix followed by that many
//! bytes: one type byte, then the message payload. The length covers
//! the type byte, so a zero length is malformed by construction and the
//! prefix alone bounds every allocation at [`MAX_FRAME`].
//!
//! ```text
//! +----------------+------+-------------------+
//! | len: u32 LE    | type | payload (len - 1) |
//! +----------------+------+-------------------+
//! ```
//!
//! Untrusted input yields clean [`std::io::Error`]s, never a panic and
//! never an unbounded allocation: an oversized prefix is rejected
//! before any buffer is reserved, a truncated frame (including a peer
//! disconnecting mid-frame) surfaces as `UnexpectedEof`, and garbage
//! inside the payload is the message codec's problem
//! ([`crate::proto`]), which holds itself to the same rule.

use s2e_expr::wire::bad_data;
use std::io::{self, Read, Write};

/// Hard cap on one frame's length (prefix value), and therefore on the
/// single allocation a frame read performs. Compact states for large
/// guests dominate frame sizes; 64 MiB leaves two orders of magnitude
/// of headroom over the corpus while still bounding a hostile prefix.
pub const MAX_FRAME: usize = 64 << 20;

/// Writes one frame and flushes the stream (frames are the protocol's
/// request/response unit, so buffering across a frame boundary would
/// deadlock two well-behaved peers).
pub fn write_frame<W: Write>(w: &mut W, ty: u8, payload: &[u8]) -> io::Result<()> {
    let len = payload.len() + 1;
    if len > MAX_FRAME {
        return Err(bad_data(format!("frame of {len} bytes exceeds MAX_FRAME")));
    }
    w.write_all(&(len as u32).to_le_bytes())?;
    w.write_all(&[ty])?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame; returns its type byte and payload.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<(u8, Vec<u8>)> {
    let mut prefix = [0u8; 4];
    r.read_exact(&mut prefix)?;
    let len = u32::from_le_bytes(prefix) as usize;
    if len == 0 {
        return Err(bad_data("zero-length frame"));
    }
    if len > MAX_FRAME {
        return Err(bad_data(format!("frame prefix {len} exceeds MAX_FRAME")));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    let ty = buf[0];
    buf.copy_within(1.., 0);
    buf.truncate(len - 1);
    Ok((ty, buf))
}

/// Reads one frame and requires it to be of type `want` — the
/// lock-step request/response discipline every protocol state expects.
pub fn expect_frame<R: Read>(r: &mut R, want: u8, what: &str) -> io::Result<Vec<u8>> {
    let (ty, payload) = read_frame(r)?;
    if ty != want {
        return Err(bad_data(format!(
            "expected {what} frame (type {want}), got type {ty}"
        )));
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 7, b"hello").unwrap();
        write_frame(&mut buf, 9, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap(), (7, b"hello".to_vec()));
        assert_eq!(read_frame(&mut r).unwrap(), (9, Vec::new()));
        // Stream exhausted: the next read reports a clean EOF.
        assert_eq!(
            read_frame(&mut r).unwrap_err().kind(),
            io::ErrorKind::UnexpectedEof
        );
    }

    #[test]
    fn truncations_error_cleanly() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 3, b"payload bytes").unwrap();
        for cut in 0..buf.len() {
            let err = read_frame(&mut &buf[..cut]).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof, "cut at {cut}");
        }
    }

    #[test]
    fn oversized_prefix_rejected_before_allocating() {
        // A hostile 4 GiB prefix must be refused outright — not
        // trusted as an allocation size, not waited on.
        let mut buf = u32::MAX.to_le_bytes().to_vec();
        buf.push(1);
        let err = read_frame(&mut &buf[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let err = read_frame(&mut &((MAX_FRAME as u32 + 1).to_le_bytes())[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn zero_length_frame_rejected() {
        let buf = 0u32.to_le_bytes();
        let err = read_frame(&mut &buf[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn wrong_type_rejected_by_expect() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 4, b"x").unwrap();
        let err = expect_frame(&mut &buf[..], 5, "grant").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("grant"));
    }

    #[test]
    fn oversized_write_refused() {
        struct NullSink;
        impl Write for NullSink {
            fn write(&mut self, b: &[u8]) -> io::Result<usize> {
                Ok(b.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        // Don't materialize 64 MiB: a huge slice over a small allocation
        // is not possible safely, so build the payload for real but only
        // one byte over the cap, using a cheap zeroed vec.
        let payload = vec![0u8; MAX_FRAME];
        let err = write_frame(&mut NullSink, 1, &payload).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    /// A peer that disconnects mid-frame over real TCP must surface as
    /// a clean `UnexpectedEof` on the reader — no panic, no hang.
    #[test]
    fn mid_stream_disconnect_errors_cleanly() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut s = std::net::TcpStream::connect(addr).unwrap();
            // A valid frame, then a prefix promising 100 bytes that
            // never arrive: the socket closes on drop.
            write_frame(&mut s, 1, b"ok").unwrap();
            s.write_all(&100u32.to_le_bytes()).unwrap();
            s.write_all(b"only a few").unwrap();
        });
        let (mut conn, _) = listener.accept().unwrap();
        assert_eq!(read_frame(&mut conn).unwrap(), (1, b"ok".to_vec()));
        let err = read_frame(&mut conn).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        client.join().unwrap();
    }
}
