//! The guest-id registry: maps a [`crate::proto::JobSpec`] guest string
//! to a concrete machine image, engine config, and symbolic-input
//! injection.
//!
//! Both tiers build guests through this module — distributed worker
//! processes ([`crate::worker`]) and the in-process comparison arm of
//! `bench --bin dist_explore`. Using the same recipe verbatim is what
//! makes the path-digest identity check meaningful: any drift in the
//! guest image or its symbolic inputs would change the path set itself,
//! not just the schedule.

use s2e_core::selectors::{constrain_range, make_config_symbolic, make_reg_symbolic};
use s2e_core::{CodeRanges, ConsistencyModel, Engine, EngineConfig};
use s2e_expr::wire::bad_data;
use s2e_guests::drivers::{build_exerciser, smc91c111};
use s2e_guests::kernel::{boot, standard_annotations};
use s2e_guests::layout::cfg_keys;
use s2e_vm::asm::Assembler;
use s2e_vm::isa::reg;
use s2e_vm::machine::Machine;
use std::io;

/// Guest ids this registry resolves.
pub const GUESTS: &[&str] = &["91c111", "branchy"];

/// Builds the machine image and engine config for `guest`. The caller
/// wires them into an engine (shared context + state-id namespace) and
/// then calls [`inject`] on the result.
pub fn build(guest: &str, model: ConsistencyModel) -> io::Result<(Machine, EngineConfig)> {
    match guest {
        // The 91C111 driver corpus from the fig8 checkpoint arm: kernel
        // boot image + driver + entry exerciser, driver code ranges
        // instrumented, standard kernel annotations.
        "91c111" => {
            let driver = smc91c111::build();
            let (mut machine, _kernel) = boot();
            machine.load_aux(&driver.program);
            let exerciser = build_exerciser(&driver, true);
            machine.load(&exerciser);
            let mut ec = EngineConfig::with_model(model);
            ec.code_ranges = CodeRanges::all().include(driver.code_range.clone());
            ec.annotations = standard_annotations();
            Ok((machine, ec))
        }
        // Two nested branches on a symbolic register: 3 paths, cheap
        // enough for protocol tests that don't need a driver boot.
        "branchy" => {
            let mut a = Assembler::new(0x2000);
            a.movi(reg::R1, 0x4000_0000);
            a.bltu(reg::R0, reg::R1, "q1");
            a.movi(reg::R1, 0xc000_0000);
            a.bltu(reg::R0, reg::R1, "mid");
            a.halt_code(3);
            a.label("mid");
            a.halt_code(2);
            a.label("q1");
            a.halt_code(1);
            let mut m = Machine::new();
            m.load(&a.finish());
            Ok((m, EngineConfig::with_model(model)))
        }
        other => Err(bad_data(format!("unknown guest id {other:?}"))),
    }
}

/// Injects `guest`'s symbolic inputs into the engine's sole initial
/// state and applies the model's hardware policy. Must run before the
/// first step, on every engine built from [`build`].
pub fn inject(engine: &mut Engine, guest: &str) -> io::Result<()> {
    let id = engine
        .sole_state()
        .ok_or_else(|| bad_data("guest injection requires exactly one initial state"))?;
    let b = engine.builder_arc();
    match guest {
        "91c111" => {
            let state = engine.state_mut(id).unwrap();
            let card = make_config_symbolic(state, &b, cfg_keys::CARD_TYPE, "CardType");
            constrain_range(state, &b, &card, 0, 7);
            let flags = make_config_symbolic(state, &b, cfg_keys::FLAGS, "Flags");
            constrain_range(state, &b, &flags, 0, 3);
            engine.apply_model_hardware_policy();
        }
        "branchy" => {
            make_reg_symbolic(engine.state_mut(id).unwrap(), &b, reg::R0, "x");
        }
        other => return Err(bad_data(format!("unknown guest id {other:?}"))),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_guest_is_invalid_data() {
        let err = build("no-such-guest", ConsistencyModel::ScSe).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    /// The driver corpus exercises devices, interrupts, and config
    /// state that the branchy guest never touches — a compact state
    /// from it must survive the wire encoding and still rehydrate
    /// bit-identical.
    #[test]
    fn driver_compact_state_survives_wire_round_trip() {
        use s2e_core::wire::{decode_compact, encode_compact};
        use s2e_core::SharedEngineContext;
        use s2e_expr::wire::WireReader;

        let shared = SharedEngineContext::new();
        let (m, ec) = build("91c111", ConsistencyModel::Lc).unwrap();
        let mut e = Engine::with_shared(m, ec, &shared);
        inject(&mut e, "91c111").unwrap();
        for _ in 0..500_000 {
            if e.live_count() >= 2 {
                break;
            }
            if e.step().is_none() {
                break;
            }
        }
        assert!(e.live_count() >= 2, "driver corpus must fork");
        let s = e.detach_overflow(1).pop().unwrap();
        let fp = s.fingerprint();
        // verify=true proves replay identity holds before the wire.
        let compact = e.evict_state(s, true);
        let mut buf = Vec::new();
        encode_compact(&compact, &mut buf).unwrap();
        let mut r = WireReader::new(&buf);
        let back = decode_compact(&mut r).unwrap();
        assert!(r.is_empty());
        let rehydrated = e.rehydrate(back);
        assert_eq!(rehydrated.fingerprint(), fp);
    }

    #[test]
    fn branchy_builds_and_injects() {
        let (m, ec) = build("branchy", ConsistencyModel::ScSe).unwrap();
        let mut e = Engine::new(m, ec);
        inject(&mut e, "branchy").unwrap();
        e.run(10_000);
        assert_eq!(e.terminated().len(), 3);
    }
}
