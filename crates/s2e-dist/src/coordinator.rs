//! The coordinator process: global step budget, compact-state queue,
//! master query cache, merged telemetry feed, and the job API
//! (DESIGN.md §17).
//!
//! One handler thread per worker connection serves the lock-step RPCs
//! from [`crate::worker`]. All scheduling state lives in one mutex —
//! the coordinator is the deque scheduler's shared half with frames in
//! place of shared memory:
//!
//! * `CLAIM` debits the global budget; a zero grant marks the run done
//!   (mirroring the in-process budget-exhaustion path, which strands
//!   whatever is still queued as `queue_leftover`).
//! * `EXPORT` queues compact states tagged with their exporter, never
//!   decoding them — routing needs no expression interner.
//! * `NEED_WORK` parks the worker server-side on a condvar. Assignment
//!   back to the exporter is a reclaim, to anyone else a steal. When
//!   every worker is parked and the queue is empty, the job is done —
//!   sound for the same reason as in-process: exports are acked before
//!   the exporter proceeds, so a parked count of `workers` means no
//!   state is in flight.
//! * `CACHE_SYNC` merges the worker's delta into the master query
//!   cache and returns everything the worker hasn't seen. The
//!   returned delta is computed *before* the import, so a worker's own
//!   entries are echoed back at most once (its import skips keys it
//!   already holds) and other workers' entries are never missed.
//! * `SNAPSHOT` wraps the worker's `s2e-live-v1` line in an
//!   `s2e-live-dist-v1` envelope with a global sequence number and
//!   relays it to the job's feed sink.
//!
//! After the last `DONE`, the coordinator reconciles the global
//! ledger: `exports == steals + reclaims + queue_leftover`, worker
//! export counts against its own receipt count, and evictions against
//! rehydrations — a violated invariant is an error, not a statistic.

use crate::frame;
use crate::proto::{
    self, Assign, Claim, DistReport, ExportBatch, Hello, JobSpec, Refund, WorkerDone,
};
use s2e_expr::wire::bad_data;
use s2e_solver::SharedQueryCache;
use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::process::Child;
use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// Scheduling state shared by the per-worker handler threads.
struct Shared {
    /// Compact states awaiting assignment, tagged with their exporter.
    queue: VecDeque<(u32, Vec<u8>)>,
    /// Workers currently parked in `NEED_WORK`.
    waiting: usize,
    /// Set on budget exhaustion or global completion; never cleared.
    done: bool,
    /// Steps still grantable.
    budget_left: u64,
    steps_granted: u64,
    steps_refunded: u64,
    exports: u64,
    steals: u64,
    reclaims: u64,
    cache_imports: u64,
    snapshots_relayed: u64,
    reports: Vec<Option<WorkerDone>>,
}

/// A coordinator bound to a listening socket. One instance runs one
/// job at a time; the job server ([`serve_jobs`]) binds a fresh one
/// per submission.
pub struct Coordinator {
    listener: TcpListener,
}

impl Coordinator {
    /// Binds the worker-facing listener (use port 0 for an ephemeral
    /// port, then read it back with [`Coordinator::addr`]).
    pub fn bind(addr: &str) -> io::Result<Coordinator> {
        Ok(Coordinator { listener: TcpListener::bind(addr)? })
    }

    /// The bound address workers should connect to.
    pub fn addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Runs one job to completion: accepts `spec.workers` worker
    /// connections, serves the protocol, and returns the reconciled
    /// report. `feed` receives each merged `s2e-live-dist-v1` line.
    ///
    /// Any worker-connection failure (including a mid-stream
    /// disconnect) marks the job done so the remaining workers wind
    /// down instead of hanging, then surfaces as the job's error.
    pub fn run_job<F>(&self, spec: &JobSpec, feed: Option<F>) -> io::Result<DistReport>
    where
        F: FnMut(&str) + Send,
    {
        let started = Instant::now();
        let workers = spec.workers as usize;
        let mut conns: Vec<Option<TcpStream>> = (0..workers).map(|_| None).collect();
        for _ in 0..workers {
            let (mut conn, _) = self.listener.accept()?;
            conn.set_nodelay(true)?;
            let hello = Hello::decode(&proto::recv(&mut conn, proto::T_HELLO, "hello")?)?;
            let w = hello.worker as usize;
            if w >= workers {
                return Err(bad_data(format!("worker index {w} out of range")));
            }
            if conns[w].is_some() {
                return Err(bad_data(format!("duplicate worker index {w}")));
            }
            proto::send(&mut conn, proto::T_JOB, &spec.encode())?;
            conns[w] = Some(conn);
        }

        let mut reports = Vec::new();
        reports.resize_with(workers, || None);
        let st = Mutex::new(Shared {
            queue: VecDeque::new(),
            waiting: 0,
            done: false,
            budget_left: spec.max_steps,
            steps_granted: 0,
            steps_refunded: 0,
            exports: 0,
            steals: 0,
            reclaims: 0,
            cache_imports: 0,
            snapshots_relayed: 0,
            reports,
        });
        let cv = Condvar::new();
        let master = SharedQueryCache::default();
        let marks = Mutex::new(vec![0u64; workers]);
        let feed = Mutex::new(feed);

        let results: Vec<io::Result<()>> = std::thread::scope(|scope| {
            let handles: Vec<_> = conns
                .into_iter()
                .enumerate()
                .map(|(w, conn)| {
                    let conn = conn.unwrap();
                    let (st, cv, master, marks, feed, spec) =
                        (&st, &cv, &master, &marks, &feed, &*spec);
                    scope.spawn(move || {
                        let r = serve_worker(w, conn, spec, st, cv, master, marks, feed);
                        if r.is_err() {
                            // Don't strand the other workers on a dead
                            // peer: declare the run over and wake parkers.
                            let mut g = st.lock().unwrap();
                            g.done = true;
                            drop(g);
                            cv.notify_all();
                        }
                        r
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for r in results {
            r?;
        }

        let g = st.into_inner().unwrap();
        let mut workers_done = Vec::with_capacity(workers);
        for (w, r) in g.reports.into_iter().enumerate() {
            workers_done.push(r.ok_or_else(|| bad_data(format!("worker {w} never reported")))?);
        }

        let mut path_digests = Vec::new();
        let mut covered_blocks = Vec::new();
        for w in &workers_done {
            path_digests.extend(w.path_digests.iter().copied());
            covered_blocks.extend(w.covered_blocks.iter().copied());
        }
        path_digests.sort_unstable();
        covered_blocks.sort_unstable();
        covered_blocks.dedup();

        let report = DistReport {
            total_paths: workers_done.iter().map(|w| w.paths).sum(),
            path_digests,
            covered_blocks,
            forks: workers_done.iter().map(|w| w.forks).sum(),
            states_created: workers_done.iter().map(|w| w.states_created).sum(),
            blocks_executed: workers_done.iter().map(|w| w.blocks_executed).sum(),
            exports: g.exports,
            steals: g.steals,
            reclaims: g.reclaims,
            queue_leftover: g.queue.len() as u64,
            evictions: workers_done.iter().map(|w| w.evictions).sum(),
            rehydrations: workers_done.iter().map(|w| w.rehydrations).sum(),
            cache_entries: master.len() as u64,
            cache_imports: g.cache_imports,
            snapshots_relayed: g.snapshots_relayed,
            steps_used: g.steps_granted - g.steps_refunded,
            wall_ms: started.elapsed().as_millis() as u64,
            workers: workers_done,
        };
        check_conservation(&report)?;
        Ok(report)
    }
}

/// The global conservation check: every exported state must be
/// accounted as stolen, reclaimed, or left queued, across all
/// processes — and since every export ships compact, the
/// eviction/rehydration ledger must balance the same way.
pub fn check_conservation(r: &DistReport) -> io::Result<()> {
    if r.exports != r.steals + r.reclaims + r.queue_leftover {
        return Err(bad_data(format!(
            "conservation violated: exports {} != steals {} + reclaims {} + leftover {}",
            r.exports, r.steals, r.reclaims, r.queue_leftover
        )));
    }
    let worker_exports: u64 = r.workers.iter().map(|w| w.exports).sum();
    if worker_exports != r.exports {
        return Err(bad_data(format!(
            "conservation violated: workers exported {} states, coordinator received {}",
            worker_exports, r.exports
        )));
    }
    if r.evictions != r.rehydrations + r.queue_leftover {
        return Err(bad_data(format!(
            "conservation violated: evictions {} != rehydrations {} + leftover {}",
            r.evictions, r.rehydrations, r.queue_leftover
        )));
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn serve_worker<F>(
    w: usize,
    mut conn: TcpStream,
    spec: &JobSpec,
    st: &Mutex<Shared>,
    cv: &Condvar,
    master: &SharedQueryCache,
    marks: &Mutex<Vec<u64>>,
    feed: &Mutex<Option<F>>,
) -> io::Result<()>
where
    F: FnMut(&str) + Send,
{
    loop {
        let (ty, payload) = frame::read_frame(&mut conn)?;
        match ty {
            proto::T_CLAIM => {
                let c = Claim::decode(&payload)?;
                let mut g = st.lock().unwrap();
                g.budget_left += c.refund;
                g.steps_refunded += c.refund;
                let steps = if g.done { 0 } else { c.batch.min(g.budget_left) };
                g.budget_left -= steps;
                g.steps_granted += steps;
                if steps == 0 && !g.done {
                    // Budget exhausted: the run is over; whatever is
                    // still queued becomes queue_leftover.
                    g.done = true;
                    cv.notify_all();
                }
                let hungry = g.waiting as u32;
                drop(g);
                proto::send(&mut conn, proto::T_GRANT, &proto::Grant { steps, hungry }.encode())?;
            }
            proto::T_EXPORT => {
                let b = ExportBatch::decode(&payload)?;
                let mut g = st.lock().unwrap();
                g.exports += b.states.len() as u64;
                for s in b.states {
                    g.queue.push_back((w as u32, s));
                }
                drop(g);
                cv.notify_all();
                proto::send(&mut conn, proto::T_EXPORT_ACK, &[])?;
            }
            proto::T_NEED_WORK => {
                let r = Refund::decode(&payload)?;
                let mut g = st.lock().unwrap();
                g.budget_left += r.refund;
                g.steps_refunded += r.refund;
                loop {
                    if let Some((from, bytes)) = g.queue.pop_front() {
                        if from == w as u32 {
                            g.reclaims += 1;
                        } else {
                            g.steals += 1;
                        }
                        drop(g);
                        let a = Assign { from_worker: from, state: bytes };
                        proto::send(&mut conn, proto::T_ASSIGN, &a.encode())?;
                        break;
                    }
                    if g.done {
                        drop(g);
                        proto::send(&mut conn, proto::T_FINISHED, &[])?;
                        break;
                    }
                    g.waiting += 1;
                    if g.waiting == spec.workers as usize {
                        // Everyone is parked and the queue is empty:
                        // exploration is complete.
                        g.waiting -= 1;
                        g.done = true;
                        drop(g);
                        cv.notify_all();
                        proto::send(&mut conn, proto::T_FINISHED, &[])?;
                        break;
                    }
                    g = cv.wait(g).unwrap();
                    g.waiting -= 1;
                }
            }
            proto::T_CACHE_SYNC => {
                let batch = proto::decode_cache_batch(&payload)?;
                let mut m = marks.lock().unwrap();
                // Export before import: the worker's fresh entries are
                // echoed back at most once (its import skips existing
                // keys); other workers' entries are never skipped.
                let (delta, stamp_now) = master.export_since(m[w]);
                let added = master.import(batch);
                m[w] = stamp_now;
                drop(m);
                st.lock().unwrap().cache_imports += added as u64;
                proto::send(&mut conn, proto::T_CACHE_DELTA, &proto::encode_cache_batch(&delta))?;
            }
            proto::T_SNAPSHOT => {
                let line = proto::decode_line(&payload)?;
                let gseq = {
                    let mut g = st.lock().unwrap();
                    g.snapshots_relayed += 1;
                    g.snapshots_relayed - 1
                };
                // The worker line is itself a JSON object; embed it
                // verbatim under a dist envelope.
                let merged = format!(
                    "{{\"schema\":\"s2e-live-dist-v1\",\"gseq\":{gseq},\"worker\":{w},\"inner\":{line}}}"
                );
                if let Some(f) = feed.lock().unwrap().as_mut() {
                    f(&merged);
                }
                proto::send(&mut conn, proto::T_SNAPSHOT_ACK, &[])?;
            }
            proto::T_DONE => {
                let d = WorkerDone::decode(&payload)?;
                if d.worker as usize != w {
                    return Err(bad_data(format!(
                        "worker {w} reported as worker {}",
                        d.worker
                    )));
                }
                let mut g = st.lock().unwrap();
                g.budget_left += d.refund;
                g.steps_refunded += d.refund;
                g.reports[w] = Some(d);
                drop(g);
                proto::send(&mut conn, proto::T_DONE_ACK, &[])?;
                return Ok(());
            }
            other => {
                return Err(bad_data(format!(
                    "unexpected frame type {other} from worker {w}"
                )))
            }
        }
    }
}

/// A minimal long-running job server: accepts client connections,
/// runs one submitted job at a time (fresh coordinator + worker
/// processes spawned through `spawn_worker`), streams the merged feed
/// back as `JOB_EVENT` frames, and finishes each job with a
/// `JOB_REPORT`. A `SHUTDOWN` frame stops the server.
///
/// `spawn_worker(addr, index)` launches one worker process pointed at
/// `addr` — typically the current executable re-invoked in worker
/// mode, so the server stays free of any exec-path policy.
pub fn serve_jobs(
    listener: TcpListener,
    spawn_worker: &dyn Fn(&str, usize) -> io::Result<Child>,
) -> io::Result<()> {
    for conn in listener.incoming() {
        let mut conn = conn?;
        let (ty, payload) = match frame::read_frame(&mut conn) {
            Ok(f) => f,
            Err(_) => continue, // a client that sent garbage only hurts itself
        };
        match ty {
            proto::T_SHUTDOWN => return Ok(()),
            proto::T_SUBMIT => {
                // A failed job reports its error to the client (as a
                // dropped connection) but must not take the server down.
                let _ = run_submitted_job(&mut conn, &payload, spawn_worker);
            }
            _ => continue,
        }
    }
    Ok(())
}

fn run_submitted_job(
    conn: &mut TcpStream,
    payload: &[u8],
    spawn_worker: &dyn Fn(&str, usize) -> io::Result<Child>,
) -> io::Result<()> {
    let spec = JobSpec::decode(payload)?;
    let coordinator = Coordinator::bind("127.0.0.1:0")?;
    let addr = coordinator.addr()?.to_string();
    let mut children = Vec::new();
    for w in 0..spec.workers as usize {
        match spawn_worker(&addr, w) {
            Ok(c) => children.push(c),
            Err(e) => {
                for mut c in children {
                    let _ = c.kill();
                    let _ = c.wait();
                }
                return Err(e);
            }
        }
    }
    let feed_conn = Mutex::new(&mut *conn);
    let result = coordinator.run_job(
        &spec,
        Some(|line: &str| {
            let mut c = feed_conn.lock().unwrap();
            let _ = proto::send(&mut **c, proto::T_JOB_EVENT, &proto::encode_line(line));
        }),
    );
    for mut c in children {
        match &result {
            Ok(_) => {
                let _ = c.wait();
            }
            Err(_) => {
                let _ = c.kill();
                let _ = c.wait();
            }
        }
    }
    let report = result?;
    proto::send(conn, proto::T_JOB_REPORT, &report.encode())
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2e_core::ConsistencyModel;

    fn spec(workers: u32, max_steps: u64) -> JobSpec {
        let mut s = JobSpec::new("branchy", ConsistencyModel::ScSe, max_steps, workers);
        // Force migration even on a 3-path tree.
        s.batch = 1;
        s.max_local_states = 1;
        s
    }

    fn run_dist(spec: &JobSpec) -> DistReport {
        let coordinator = Coordinator::bind("127.0.0.1:0").unwrap();
        let addr = coordinator.addr().unwrap().to_string();
        std::thread::scope(|scope| {
            for w in 0..spec.workers as usize {
                let addr = addr.clone();
                scope.spawn(move || crate::worker::run_worker(&addr, w).unwrap());
            }
            coordinator.run_job(spec, None::<fn(&str)>).unwrap()
        })
    }

    /// The correctness bar: a distributed exhaustive run reports the
    /// same sorted path-digest multiset as a sequential engine on the
    /// same guest.
    #[test]
    fn distributed_matches_sequential_path_digests() {
        let mut engine = {
            let (m, ec) = crate::guest::build("branchy", ConsistencyModel::ScSe).unwrap();
            s2e_core::Engine::new(m, ec)
        };
        crate::guest::inject(&mut engine, "branchy").unwrap();
        engine.set_retain_terminated(true);
        engine.run(10_000);
        let mut seq_digests: Vec<u64> = engine
            .terminated_states()
            .iter()
            .map(s2e_core::ExecState::path_digest)
            .collect();
        seq_digests.sort_unstable();
        assert_eq!(seq_digests.len(), 3);

        let report = run_dist(&spec(2, 10_000));
        assert_eq!(report.total_paths, 3, "{report:?}");
        assert_eq!(report.path_digests, seq_digests, "{report:?}");
        assert_eq!(report.queue_leftover, 0, "exhaustive run strands nothing");
        assert!(report.exports > 0, "batch=1 must force migration");
    }

    /// Budget truncation: grants stop, workers wind down, and the
    /// conservation ledger still balances (leftover included).
    #[test]
    fn truncated_budget_still_balances() {
        let report = run_dist(&spec(2, 4));
        assert!(report.steps_used <= 4, "{report:?}");
        check_conservation(&report).unwrap();
    }

    /// A worker that dies mid-protocol must fail the job cleanly — no
    /// hang, no panic — and release the other workers.
    #[test]
    fn mid_stream_disconnect_fails_cleanly() {
        let coordinator = Coordinator::bind("127.0.0.1:0").unwrap();
        let addr = coordinator.addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut c = TcpStream::connect(addr).unwrap();
            proto::send(&mut c, proto::T_HELLO, &Hello { worker: 0 }.encode()).unwrap();
            let _job = proto::recv(&mut c, proto::T_JOB, "job").unwrap();
            // Promise a claim, deliver half of it, vanish.
            use std::io::Write;
            c.write_all(&10u32.to_le_bytes()).unwrap();
            c.write_all(&[proto::T_CLAIM, 0, 0]).unwrap();
        });
        let err = coordinator
            .run_job(&spec(1, 100), None::<fn(&str)>)
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
        client.join().unwrap();
    }
}
