//! Distributed exploration tier: a coordinator process load-balancing
//! compact states across worker processes over std-only TCP
//! (DESIGN.md §17).
//!
//! The in-process parallel explorer (`s2e_core::parallel`) shares one
//! address space: workers exchange `CompactState`s through a deque and
//! share one `SharedQueryCache` behind a mutex. This crate lifts the
//! same scheduler shape across process boundaries:
//!
//! * [`frame`] — length-prefixed frames, the hardened wire unit;
//! * [`proto`] — message codecs for the coordinator/worker protocol;
//! * [`guest`] — guest-id registry, shared verbatim by workers and the
//!   in-process comparison arm so path identity is meaningful;
//! * [`worker`] — a worker process: a local engine run under the
//!   three-phase claim/export/steal loop, with budget claims, state
//!   exports, cache syncs, and telemetry snapshots as RPCs;
//! * [`coordinator`] — the coordinator: global step budget, compact
//!   state queue, master query cache, merged `s2e-live-dist-v1` feed,
//!   the global conservation check
//!   `exports == steals + reclaims + queue_leftover`, and a
//!   long-running job server (submit a [`proto::JobSpec`], stream
//!   events, receive a [`proto::DistReport`]).
//!
//! Correctness bar: an exhaustive distributed run reports the same
//! sorted path-digest multiset as `explore_parallel` on the same guest
//! — bit-identical, any worker count. Per-state integrity is enforced
//! end-to-end by the fingerprint embedded in every exported compact
//! state, asserted on rehydration in the importing process.

pub mod coordinator;
pub mod frame;
pub mod guest;
pub mod proto;
pub mod worker;

pub use coordinator::Coordinator;
pub use proto::{DistReport, JobSpec, WorkerDone};
pub use worker::run_worker;
