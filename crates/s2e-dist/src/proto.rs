//! Message codecs for the coordinator/worker protocol (DESIGN.md §17).
//!
//! Every message is the payload of one [`crate::frame`] frame, encoded
//! with the same varint/expression primitives as the state codecs
//! (`s2e_expr::wire`). The protocol is strict request/response: each
//! worker message type has exactly one coordinator reply type, so both
//! sides always know which frame to expect next ([`frame::expect_frame`]).
//!
//! Decoding is hardened like every other wire surface: unknown tags,
//! truncated payloads, trailing bytes, and allocation-bomb counts all
//! yield clean [`std::io::Error`]s.
//!
//! ```text
//! worker -> coordinator        coordinator -> worker
//! ---------------------        ---------------------
//! HELLO{worker}                JOB{spec}
//! CLAIM{refund, batch}         GRANT{steps, hungry}
//! EXPORT{compact states}       EXPORT_ACK
//! NEED_WORK{refund}            ASSIGN{from, state} | FINISHED
//! CACHE_SYNC{entries}          CACHE_DELTA{entries}
//! SNAPSHOT{jsonl line}         SNAPSHOT_ACK
//! DONE{refund, report}         DONE_ACK
//!
//! client -> coordinator        coordinator -> client
//! ---------------------        ---------------------
//! SUBMIT{spec}                 JOB_EVENT{line}* then JOB_REPORT{report}
//! SHUTDOWN                     (server exits)
//! ```

use crate::frame;
use s2e_core::ConsistencyModel;
use s2e_expr::wire::{bad_data, write_varint, WireReader};
use s2e_expr::VarId;
use s2e_solver::PortableCacheEntry;
use std::io::{self, Read, Write};

/// Worker's first frame after connecting: its assigned index.
pub const T_HELLO: u8 = 1;
/// Coordinator's reply to HELLO: the job to run.
pub const T_JOB: u8 = 2;
/// Worker claims a step batch from the global budget.
pub const T_CLAIM: u8 = 3;
/// Budget grant; 0 steps means the budget is spent and the run is over.
pub const T_GRANT: u8 = 4;
/// Worker ships surplus states, evicted to compact form.
pub const T_EXPORT: u8 = 5;
/// Coordinator acknowledged an export batch.
pub const T_EXPORT_ACK: u8 = 6;
/// Worker's frontier is dry; blocks until work or termination.
pub const T_NEED_WORK: u8 = 7;
/// One compact state assigned to the requesting worker.
pub const T_ASSIGN: u8 = 8;
/// Exploration is over (all workers dry, or budget spent).
pub const T_FINISHED: u8 = 9;
/// Worker's shared-cache delta since its last sync.
pub const T_CACHE_SYNC: u8 = 10;
/// Coordinator's cache delta back to the worker.
pub const T_CACHE_DELTA: u8 = 11;
/// One `s2e-live-v1` snapshot line relayed for the merged feed.
pub const T_SNAPSHOT: u8 = 12;
/// Coordinator acknowledged a snapshot line.
pub const T_SNAPSHOT_ACK: u8 = 13;
/// Worker's final report.
pub const T_DONE: u8 = 14;
/// Coordinator acknowledged the report; the worker may exit.
pub const T_DONE_ACK: u8 = 15;

/// Client submits a job to a serving coordinator.
pub const T_SUBMIT: u8 = 20;
/// One merged-feed line streamed back to the job's client.
pub const T_JOB_EVENT: u8 = 21;
/// The job's final [`DistReport`].
pub const T_JOB_REPORT: u8 = 22;
/// Client asks the job server to exit once idle.
pub const T_SHUTDOWN: u8 = 23;

fn write_string(out: &mut Vec<u8>, s: &str) {
    write_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn read_string(r: &mut WireReader<'_>, cap: u64, what: &str) -> io::Result<String> {
    let len = r.read_len(cap, what)?;
    let bytes = r.read_bytes(len)?;
    String::from_utf8(bytes.to_vec())
        .map_err(|_| bad_data(format!("{what} is not valid UTF-8")))
}

fn write_bool(out: &mut Vec<u8>, b: bool) {
    out.push(b as u8);
}

fn read_bool(r: &mut WireReader<'_>, what: &str) -> io::Result<bool> {
    match r.read_u8()? {
        0 => Ok(false),
        1 => Ok(true),
        b => Err(bad_data(format!("{what} flag byte {b} is not 0/1"))),
    }
}

fn write_u64_list(out: &mut Vec<u8>, xs: &[u64]) {
    write_varint(out, xs.len() as u64);
    for x in xs {
        out.extend_from_slice(&x.to_le_bytes());
    }
}

fn read_u64_list(r: &mut WireReader<'_>, cap: u64, what: &str) -> io::Result<Vec<u64>> {
    let n = r.read_len(cap, what)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let bytes = r.read_bytes(8)?;
        out.push(u64::from_le_bytes(bytes.try_into().unwrap()));
    }
    Ok(out)
}

fn write_u32_list(out: &mut Vec<u8>, xs: &[u32]) {
    write_varint(out, xs.len() as u64);
    for x in xs {
        write_varint(out, u64::from(*x));
    }
}

fn read_u32_list(r: &mut WireReader<'_>, cap: u64, what: &str) -> io::Result<Vec<u32>> {
    let n = r.read_len(cap, what)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let v = r.read_varint()?;
        if v > u64::from(u32::MAX) {
            return Err(bad_data(format!("{what} entry {v:#x} exceeds 32 bits")));
        }
        out.push(v as u32);
    }
    Ok(out)
}

fn model_tag(m: ConsistencyModel) -> u8 {
    match m {
        ConsistencyModel::ScCe => 0,
        ConsistencyModel::ScUe => 1,
        ConsistencyModel::ScSe => 2,
        ConsistencyModel::Lc => 3,
        ConsistencyModel::RcOc => 4,
        ConsistencyModel::RcCc => 5,
    }
}

fn model_from_tag(t: u8) -> io::Result<ConsistencyModel> {
    Ok(match t {
        0 => ConsistencyModel::ScCe,
        1 => ConsistencyModel::ScUe,
        2 => ConsistencyModel::ScSe,
        3 => ConsistencyModel::Lc,
        4 => ConsistencyModel::RcOc,
        5 => ConsistencyModel::RcCc,
        t => return Err(bad_data(format!("unknown consistency-model tag {t}"))),
    })
}

/// Ensures a decode consumed its whole payload — trailing garbage is an
/// error, not something to silently ignore.
fn finish(r: &WireReader<'_>, what: &str) -> io::Result<()> {
    if r.is_empty() {
        Ok(())
    } else {
        Err(bad_data(format!("{} trailing bytes after {what}", r.remaining())))
    }
}

/// What a client submits and a worker executes: the guest image, the
/// execution consistency model, and the exploration budget/tuning. The
/// scheduler knobs mirror [`s2e_core::parallel::ParallelConfig`] so the
/// distributed run is parameter-for-parameter comparable with the
/// in-process one.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobSpec {
    /// Guest id resolved by [`crate::guest::build`] (e.g. `"91c111"`).
    pub guest: String,
    /// Execution consistency model for the run.
    pub model: ConsistencyModel,
    /// Global step budget shared by all worker processes.
    pub max_steps: u64,
    /// Worker-process count.
    pub workers: u32,
    /// Steps claimed from the global budget per round trip.
    pub batch: u64,
    /// A worker exports surplus states beyond this many.
    pub max_local_states: u32,
    /// Retain terminated states and report their path digests.
    pub collect_digests: bool,
    /// Worker telemetry-snapshot cadence in batches (0 = no snapshots).
    pub snapshot_every: u64,
}

impl JobSpec {
    /// A spec with the in-process explorer's default tuning.
    pub fn new(guest: &str, model: ConsistencyModel, max_steps: u64, workers: u32) -> JobSpec {
        JobSpec {
            guest: guest.to_string(),
            model,
            max_steps,
            workers,
            batch: 64,
            max_local_states: 8,
            collect_digests: true,
            snapshot_every: 8,
        }
    }

    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        write_string(&mut out, &self.guest);
        out.push(model_tag(self.model));
        write_varint(&mut out, self.max_steps);
        write_varint(&mut out, u64::from(self.workers));
        write_varint(&mut out, self.batch);
        write_varint(&mut out, u64::from(self.max_local_states));
        write_bool(&mut out, self.collect_digests);
        write_varint(&mut out, self.snapshot_every);
        out
    }

    pub fn decode(payload: &[u8]) -> io::Result<JobSpec> {
        let mut r = WireReader::new(payload);
        let guest = read_string(&mut r, 256, "guest id")?;
        let model = model_from_tag(r.read_u8()?)?;
        let max_steps = r.read_varint()?;
        let workers = r.read_len(4096, "worker count")? as u32;
        let batch = r.read_varint()?;
        let max_local_states = r.read_len(1 << 20, "max_local_states")? as u32;
        let collect_digests = read_bool(&mut r, "collect_digests")?;
        let snapshot_every = r.read_varint()?;
        finish(&r, "job spec")?;
        if workers == 0 || batch == 0 || max_local_states == 0 {
            return Err(bad_data("job spec: workers, batch, max_local_states must be nonzero"));
        }
        Ok(JobSpec {
            guest,
            model,
            max_steps,
            workers,
            batch,
            max_local_states,
            collect_digests,
            snapshot_every,
        })
    }
}

/// `HELLO`: the worker's first frame — its assigned index.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Hello {
    pub worker: u32,
}

impl Hello {
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        write_varint(&mut out, u64::from(self.worker));
        out
    }

    pub fn decode(payload: &[u8]) -> io::Result<Hello> {
        let mut r = WireReader::new(payload);
        let worker = r.read_len(4096, "worker index")? as u32;
        finish(&r, "hello")?;
        Ok(Hello { worker })
    }
}

/// `CLAIM`: take up to `batch` steps from the global budget, returning
/// `refund` unused steps from the previous grant first.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Claim {
    pub refund: u64,
    pub batch: u64,
}

impl Claim {
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        write_varint(&mut out, self.refund);
        write_varint(&mut out, self.batch);
        out
    }

    pub fn decode(payload: &[u8]) -> io::Result<Claim> {
        let mut r = WireReader::new(payload);
        let refund = r.read_varint()?;
        let batch = r.read_varint()?;
        finish(&r, "claim")?;
        Ok(Claim { refund, batch })
    }
}

/// `GRANT`: the claimed steps (0 = budget spent, stop exploring) plus
/// the number of workers currently starving — the instantaneous idle
/// signal the export heuristic feeds on, exactly like the in-process
/// scheduler's `hungry` counter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Grant {
    pub steps: u64,
    pub hungry: u32,
}

impl Grant {
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        write_varint(&mut out, self.steps);
        write_varint(&mut out, u64::from(self.hungry));
        out
    }

    pub fn decode(payload: &[u8]) -> io::Result<Grant> {
        let mut r = WireReader::new(payload);
        let steps = r.read_varint()?;
        let hungry = r.read_len(1 << 20, "hungry count")? as u32;
        finish(&r, "grant")?;
        Ok(Grant { steps, hungry })
    }
}

/// `EXPORT`: surplus states, each already encoded in compact wire form
/// (`s2e_core::wire::encode_compact`). The coordinator queues the raw
/// bytes without decoding them — only the taking worker pays the
/// decode + replay cost, and the coordinator needs no expression
/// interner of its own.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExportBatch {
    pub states: Vec<Vec<u8>>,
}

impl ExportBatch {
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        write_varint(&mut out, self.states.len() as u64);
        for s in &self.states {
            write_varint(&mut out, s.len() as u64);
            out.extend_from_slice(s);
        }
        out
    }

    pub fn decode(payload: &[u8]) -> io::Result<ExportBatch> {
        let mut r = WireReader::new(payload);
        let n = r.read_len(1 << 20, "export count")?;
        let mut states = Vec::with_capacity(n);
        for _ in 0..n {
            let len = r.read_len(frame::MAX_FRAME as u64, "compact state size")?;
            states.push(r.read_bytes(len)?.to_vec());
        }
        finish(&r, "export batch")?;
        Ok(ExportBatch { states })
    }
}

/// `NEED_WORK` / `DONE` both return unused budget before blocking or
/// exiting, so truncated runs account every step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Refund {
    pub refund: u64,
}

impl Refund {
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        write_varint(&mut out, self.refund);
        out
    }

    pub fn decode(payload: &[u8]) -> io::Result<Refund> {
        let mut r = WireReader::new(payload);
        let refund = r.read_varint()?;
        finish(&r, "refund")?;
        Ok(Refund { refund })
    }
}

/// `ASSIGN`: one queued compact state handed to a hungry worker, tagged
/// with its exporter so both sides can classify the migration as a
/// steal (taker != exporter) or a reclaim (taker == exporter).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Assign {
    pub from_worker: u32,
    pub state: Vec<u8>,
}

impl Assign {
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        write_varint(&mut out, u64::from(self.from_worker));
        write_varint(&mut out, self.state.len() as u64);
        out.extend_from_slice(&self.state);
        out
    }

    pub fn decode(payload: &[u8]) -> io::Result<Assign> {
        let mut r = WireReader::new(payload);
        let from_worker = r.read_len(4096, "exporter index")? as u32;
        let len = r.read_len(frame::MAX_FRAME as u64, "compact state size")?;
        let state = r.read_bytes(len)?.to_vec();
        finish(&r, "assignment")?;
        Ok(Assign { from_worker, state })
    }
}

/// `CACHE_SYNC` / `CACHE_DELTA`: a batch of portable solver query-cache
/// entries. Keys are order-independent query hashes built from
/// `Expr::cached_hash`, deterministic across processes, so an entry
/// answers the same query wherever it lands; lookups verify full
/// structural equality, so a corrupt entry costs a wasted comparison,
/// never a wrong verdict.
pub fn encode_cache_batch(entries: &[PortableCacheEntry]) -> Vec<u8> {
    let mut out = Vec::new();
    write_varint(&mut out, entries.len() as u64);
    for e in entries {
        out.extend_from_slice(&e.key.to_le_bytes());
        write_varint(&mut out, e.constraints.len() as u64);
        for c in &e.constraints {
            s2e_expr::wire::encode_expr(c, &mut out);
        }
        match &e.model {
            None => out.push(0),
            Some(pairs) => {
                out.push(1);
                write_varint(&mut out, pairs.len() as u64);
                for (var, val) in pairs {
                    write_varint(&mut out, var.0);
                    write_varint(&mut out, *val);
                }
            }
        }
        write_bool(&mut out, e.canonical);
    }
    out
}

/// Decodes a cache batch written by [`encode_cache_batch`].
pub fn decode_cache_batch(payload: &[u8]) -> io::Result<Vec<PortableCacheEntry>> {
    let mut r = WireReader::new(payload);
    let n = r.read_len(1 << 20, "cache batch size")?;
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        let key = u64::from_le_bytes(r.read_bytes(8)?.try_into().unwrap());
        let n_constraints = r.read_len(1 << 16, "cache entry constraint count")?;
        let mut constraints = Vec::with_capacity(n_constraints);
        for _ in 0..n_constraints {
            constraints.push(s2e_expr::wire::decode_expr(&mut r)?);
        }
        let model = match r.read_u8()? {
            0 => None,
            1 => {
                let n_pairs = r.read_len(1 << 16, "cache model binding count")?;
                let mut pairs = Vec::with_capacity(n_pairs);
                for _ in 0..n_pairs {
                    let var = VarId(r.read_varint()?);
                    let val = r.read_varint()?;
                    pairs.push((var, val));
                }
                Some(pairs)
            }
            t => return Err(bad_data(format!("unknown cache-model tag {t}"))),
        };
        let canonical = read_bool(&mut r, "cache entry canonical flag")?;
        entries.push(PortableCacheEntry { key, constraints, model, canonical });
    }
    finish(&r, "cache batch")?;
    Ok(entries)
}

/// `SNAPSHOT` / `JOB_EVENT`: one JSONL line, relayed verbatim.
pub fn encode_line(line: &str) -> Vec<u8> {
    let mut out = Vec::new();
    write_string(&mut out, line);
    out
}

/// Decodes a line written by [`encode_line`].
pub fn decode_line(payload: &[u8]) -> io::Result<String> {
    let mut r = WireReader::new(payload);
    let line = read_string(&mut r, 1 << 20, "feed line")?;
    finish(&r, "feed line")?;
    Ok(line)
}

/// `DONE`: everything a worker process knows at exit. Migration
/// classification (steals/reclaims) is coordinator-side knowledge and
/// deliberately absent — the worker reports what it *did* (exports,
/// evictions, rehydrations), the coordinator reconciles the ledgers.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WorkerDone {
    pub worker: u32,
    pub refund: u64,
    pub paths: u64,
    pub exports: u64,
    /// Sorted [`s2e_core::ExecState::path_digest`] multiset.
    pub path_digests: Vec<u64>,
    /// Sorted block-start addresses this worker executed.
    pub covered_blocks: Vec<u32>,
    pub forks: u64,
    pub states_created: u64,
    pub states_terminated: u64,
    pub blocks_executed: u64,
    pub instrs_concrete: u64,
    pub instrs_symbolic: u64,
    pub concretizations: u64,
    pub evictions: u64,
    pub rehydrations: u64,
    pub replayed_instrs: u64,
    pub journal_bytes: u64,
    pub solver_queries: u64,
    pub shared_query_hits: u64,
    pub solver_core_solves: u64,
}

impl WorkerDone {
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        write_varint(&mut out, u64::from(self.worker));
        write_varint(&mut out, self.refund);
        write_varint(&mut out, self.paths);
        write_varint(&mut out, self.exports);
        write_u64_list(&mut out, &self.path_digests);
        write_u32_list(&mut out, &self.covered_blocks);
        for v in self.counters() {
            write_varint(&mut out, v);
        }
        out
    }

    pub fn decode(payload: &[u8]) -> io::Result<WorkerDone> {
        let mut r = WireReader::new(payload);
        let mut d = WorkerDone {
            worker: r.read_len(4096, "worker index")? as u32,
            refund: r.read_varint()?,
            paths: r.read_varint()?,
            exports: r.read_varint()?,
            path_digests: read_u64_list(&mut r, 1 << 24, "path digest count")?,
            covered_blocks: read_u32_list(&mut r, 1 << 24, "covered block count")?,
            ..WorkerDone::default()
        };
        let mut counters = [0u64; 14];
        for c in counters.iter_mut() {
            *c = r.read_varint()?;
        }
        finish(&r, "worker report")?;
        [
            d.forks,
            d.states_created,
            d.states_terminated,
            d.blocks_executed,
            d.instrs_concrete,
            d.instrs_symbolic,
            d.concretizations,
            d.evictions,
            d.rehydrations,
            d.replayed_instrs,
            d.journal_bytes,
            d.solver_queries,
            d.shared_query_hits,
            d.solver_core_solves,
        ] = counters;
        Ok(d)
    }

    fn counters(&self) -> [u64; 14] {
        [
            self.forks,
            self.states_created,
            self.states_terminated,
            self.blocks_executed,
            self.instrs_concrete,
            self.instrs_symbolic,
            self.concretizations,
            self.evictions,
            self.rehydrations,
            self.replayed_instrs,
            self.journal_bytes,
            self.solver_queries,
            self.shared_query_hits,
            self.solver_core_solves,
        ]
    }
}

/// The coordinator's merged end-of-job report: per-worker breakdowns
/// plus the global migration ledger the conservation invariant is
/// checked against (DESIGN.md §17).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DistReport {
    /// Per-worker reports, in worker order.
    pub workers: Vec<WorkerDone>,
    /// Total paths terminated across all worker processes.
    pub total_paths: u64,
    /// Merged, sorted path-digest multiset — the schedule-independent
    /// identity compared bit-for-bit against the in-process explorer.
    pub path_digests: Vec<u64>,
    /// Union of covered block-start addresses, sorted.
    pub covered_blocks: Vec<u32>,
    pub forks: u64,
    pub states_created: u64,
    pub blocks_executed: u64,
    /// States shipped to the coordinator, counted on receipt.
    pub exports: u64,
    /// Assignments where the taker differed from the exporter.
    pub steals: u64,
    /// Assignments back to the exporting worker.
    pub reclaims: u64,
    /// States still queued when the run ended (budget truncation only).
    pub queue_leftover: u64,
    /// Evictions summed across workers (every export is one).
    pub evictions: u64,
    /// Rehydrations summed across workers (every assignment is one).
    pub rehydrations: u64,
    /// Entries resident in the coordinator's master query cache at end.
    pub cache_entries: u64,
    /// Worker-shipped cache entries that were new to the master.
    pub cache_imports: u64,
    /// Snapshot lines relayed into the merged feed.
    pub snapshots_relayed: u64,
    /// Steps actually consumed from the global budget.
    pub steps_used: u64,
    /// End-to-end wall-clock of the job, in milliseconds.
    pub wall_ms: u64,
}

impl DistReport {
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        write_varint(&mut out, self.workers.len() as u64);
        for w in &self.workers {
            let enc = w.encode();
            write_varint(&mut out, enc.len() as u64);
            out.extend_from_slice(&enc);
        }
        write_varint(&mut out, self.total_paths);
        write_u64_list(&mut out, &self.path_digests);
        write_u32_list(&mut out, &self.covered_blocks);
        for v in self.counters() {
            write_varint(&mut out, v);
        }
        out
    }

    pub fn decode(payload: &[u8]) -> io::Result<DistReport> {
        let mut r = WireReader::new(payload);
        let n = r.read_len(4096, "worker count")?;
        let mut workers = Vec::with_capacity(n);
        for _ in 0..n {
            let len = r.read_len(frame::MAX_FRAME as u64, "worker report size")?;
            workers.push(WorkerDone::decode(r.read_bytes(len)?)?);
        }
        let mut d = DistReport {
            workers,
            total_paths: r.read_varint()?,
            path_digests: read_u64_list(&mut r, 1 << 24, "path digest count")?,
            covered_blocks: read_u32_list(&mut r, 1 << 24, "covered block count")?,
            ..DistReport::default()
        };
        let mut counters = [0u64; 14];
        for c in counters.iter_mut() {
            *c = r.read_varint()?;
        }
        finish(&r, "dist report")?;
        [
            d.forks,
            d.states_created,
            d.blocks_executed,
            d.exports,
            d.steals,
            d.reclaims,
            d.queue_leftover,
            d.evictions,
            d.rehydrations,
            d.cache_entries,
            d.cache_imports,
            d.snapshots_relayed,
            d.steps_used,
            d.wall_ms,
        ] = counters;
        Ok(d)
    }

    fn counters(&self) -> [u64; 14] {
        [
            self.forks,
            self.states_created,
            self.blocks_executed,
            self.exports,
            self.steals,
            self.reclaims,
            self.queue_leftover,
            self.evictions,
            self.rehydrations,
            self.cache_entries,
            self.cache_imports,
            self.snapshots_relayed,
            self.steps_used,
            self.wall_ms,
        ]
    }
}

/// Sends one message frame.
pub fn send<W: Write>(w: &mut W, ty: u8, payload: &[u8]) -> io::Result<()> {
    frame::write_frame(w, ty, payload)
}

/// Receives a frame that must be of type `want`.
pub fn recv<R: Read>(r: &mut R, want: u8, what: &str) -> io::Result<Vec<u8>> {
    frame::expect_frame(r, want, what)
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2e_expr::{ExprBuilder, Width};

    fn sample_spec() -> JobSpec {
        JobSpec::new("91c111", ConsistencyModel::Lc, 1_000_000, 2)
    }

    #[test]
    fn job_spec_round_trip() {
        let spec = sample_spec();
        assert_eq!(JobSpec::decode(&spec.encode()).unwrap(), spec);
    }

    #[test]
    fn job_spec_rejects_garbage() {
        let spec = sample_spec();
        let enc = spec.encode();
        for cut in 0..enc.len() {
            assert!(JobSpec::decode(&enc[..cut]).is_err(), "cut {cut}");
        }
        let mut trailing = enc.clone();
        trailing.push(0);
        assert!(JobSpec::decode(&trailing).is_err());
        // Unknown model tag.
        let mut bad = enc;
        let tag_at = 1 + spec.guest.len(); // varint(6) is one byte
        bad[tag_at] = 99;
        assert!(JobSpec::decode(&bad).is_err());
    }

    #[test]
    fn small_messages_round_trip() {
        let c = Claim { refund: 3, batch: 64 };
        assert_eq!(Claim::decode(&c.encode()).unwrap(), c);
        let g = Grant { steps: 64, hungry: 1 };
        assert_eq!(Grant::decode(&g.encode()).unwrap(), g);
        let r = Refund { refund: 17 };
        assert_eq!(Refund::decode(&r.encode()).unwrap(), r);
        let a = Assign { from_worker: 1, state: vec![1, 2, 3] };
        assert_eq!(Assign::decode(&a.encode()).unwrap(), a);
        let e = ExportBatch { states: vec![vec![9; 4], vec![]] };
        assert_eq!(ExportBatch::decode(&e.encode()).unwrap(), e);
        assert_eq!(decode_line(&encode_line("{\"a\":1}")).unwrap(), "{\"a\":1}");
    }

    #[test]
    fn cache_batch_round_trip() {
        let b = ExprBuilder::new();
        let x = b.var("x", Width::W8);
        let entries = vec![
            PortableCacheEntry {
                key: 0xdead_beef_dead_beef,
                constraints: vec![b.eq(x.clone(), b.constant(3, Width::W8))],
                model: Some(vec![(VarId(7), 3)]),
                canonical: true,
            },
            PortableCacheEntry {
                key: 42,
                constraints: vec![b.ult(x.clone(), b.constant(2, Width::W8)), b.ult(b.constant(5, Width::W8), x)],
                model: None,
                canonical: false,
            },
        ];
        let back = decode_cache_batch(&encode_cache_batch(&entries)).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].key, entries[0].key);
        assert_eq!(back[0].model, entries[0].model);
        assert!(back[0].canonical);
        assert!(!back[1].canonical);
        assert_eq!(
            format!("{:?}", back[0].constraints),
            format!("{:?}", entries[0].constraints)
        );
        assert_eq!(back[1].model, None);
        // Truncations and unknown tags error cleanly.
        let enc = encode_cache_batch(&entries);
        for cut in 0..enc.len() {
            assert!(decode_cache_batch(&enc[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn worker_done_round_trip() {
        let d = WorkerDone {
            worker: 1,
            refund: 2,
            paths: 11,
            exports: 5,
            path_digests: vec![3, 9, 9, 14],
            covered_blocks: vec![0x2000, 0x2010],
            forks: 10,
            states_created: 11,
            states_terminated: 11,
            blocks_executed: 400,
            instrs_concrete: 3000,
            instrs_symbolic: 40,
            concretizations: 2,
            evictions: 5,
            rehydrations: 4,
            replayed_instrs: 77,
            journal_bytes: 512,
            solver_queries: 60,
            shared_query_hits: 8,
            solver_core_solves: 21,
        };
        assert_eq!(WorkerDone::decode(&d.encode()).unwrap(), d);
    }

    #[test]
    fn dist_report_round_trip() {
        let mut rep = DistReport::default();
        rep.workers.push(WorkerDone { worker: 0, paths: 3, ..WorkerDone::default() });
        rep.workers.push(WorkerDone { worker: 1, paths: 4, ..WorkerDone::default() });
        rep.total_paths = 7;
        rep.path_digests = vec![1, 2, 3];
        rep.covered_blocks = vec![0x2000];
        rep.exports = 6;
        rep.steals = 4;
        rep.reclaims = 2;
        rep.cache_entries = 31;
        rep.wall_ms = 1234;
        assert_eq!(DistReport::decode(&rep.encode()).unwrap(), rep);
        let enc = rep.encode();
        for cut in 0..enc.len() {
            assert!(DistReport::decode(&enc[..cut]).is_err(), "cut {cut}");
        }
    }
}
