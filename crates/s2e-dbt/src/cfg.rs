//! Static control-flow-graph recovery from a program image.
//!
//! Used for two purposes in the reproduction:
//!
//! - ground-truth basic-block counts for the coverage experiments (the
//!   denominators of Table 5 / Fig. 7);
//! - the offline half of REV+, which rebuilds a driver's CFG from traces
//!   and synthesizes equivalent code — the static CFG of the original
//!   driver is what the synthesized output is checked against.
//!
//! Static recovery is *best effort* (indirect jumps contribute no edges);
//! for the assembled guests in this repository, whose indirect control
//! flow is limited to returns, the leader analysis is exact.

use crate::MAX_BLOCK_INSTRS;
use s2e_vm::asm::Program;
use s2e_vm::isa::{Instr, Opcode, INSTR_SIZE};
use std::collections::{BTreeMap, BTreeSet};

/// A static basic block.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BasicBlock {
    /// Start address.
    pub start: u32,
    /// Instructions in the block.
    pub instrs: Vec<Instr>,
    /// Static successor addresses (indirect targets omitted).
    pub successors: Vec<u32>,
}

impl BasicBlock {
    /// Address one past the block.
    pub fn end(&self) -> u32 {
        self.start + self.instrs.len() as u32 * INSTR_SIZE
    }
}

/// A static CFG over a program image.
#[derive(Clone, Debug, Default)]
pub struct StaticCfg {
    /// Blocks keyed by start address.
    pub blocks: BTreeMap<u32, BasicBlock>,
}

impl StaticCfg {
    /// Number of basic blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Block start addresses.
    pub fn block_starts(&self) -> impl Iterator<Item = u32> + '_ {
        self.blocks.keys().copied()
    }

    /// The block containing `pc`, if any.
    pub fn block_containing(&self, pc: u32) -> Option<&BasicBlock> {
        self.blocks
            .range(..=pc)
            .next_back()
            .map(|(_, b)| b)
            .filter(|b| pc < b.end())
    }
}

fn decode_at(image: &[u8], base: u32, addr: u32) -> Option<Instr> {
    let off = addr.checked_sub(base)? as usize;
    if off + 8 > image.len() {
        return None;
    }
    let bytes: [u8; 8] = image[off..off + 8].try_into().ok()?;
    Instr::decode(&bytes)
}

fn static_successors(i: &Instr, pc: u32) -> (Vec<u32>, bool) {
    let next = pc + INSTR_SIZE;
    match i.op {
        Opcode::Jmp => (vec![i.imm], true),
        Opcode::Call => (vec![i.imm], true),
        Opcode::Beq | Opcode::Bne | Opcode::Bltu | Opcode::Bgeu | Opcode::Blts | Opcode::Bges => {
            (vec![i.imm, next], true)
        }
        Opcode::Halt => (vec![], true),
        // Indirect flow and traps: fall-through edge only where meaningful.
        Opcode::Ret | Opcode::JmpR | Opcode::Iret => (vec![], true),
        Opcode::CallR | Opcode::Syscall => (vec![next], true),
        _ => (vec![next], false),
    }
}

/// Recovers the static CFG of a program's executable region.
///
/// `roots` seed the reachability walk (entry points); every reachable
/// instruction is decoded and blocks are split at branch targets, exactly
/// like leaders in a classic two-pass disassembler.
pub fn build_cfg(prog: &Program, roots: &[u32]) -> StaticCfg {
    // Pass 1: discover reachable instructions and leaders.
    let mut reachable: BTreeSet<u32> = BTreeSet::new();
    let mut leaders: BTreeSet<u32> = BTreeSet::new();
    let mut work: Vec<u32> = roots.to_vec();
    for &r in roots {
        leaders.insert(r);
    }
    while let Some(mut pc) = work.pop() {
        loop {
            if !reachable.insert(pc) {
                break;
            }
            let Some(i) = decode_at(&prog.image, prog.base, pc) else {
                break;
            };
            let (succs, is_term) = static_successors(&i, pc);
            if is_term {
                for s in &succs {
                    if leaders.insert(*s) && !reachable.contains(s) {
                        work.push(*s);
                    } else if leaders.insert(*s) {
                        // already reachable: just a new split point
                    } else if !reachable.contains(s) {
                        work.push(*s);
                    }
                }
                // Calls also continue at the return site.
                if i.op == Opcode::Call {
                    let next = pc + INSTR_SIZE;
                    leaders.insert(next);
                    if !reachable.contains(&next) {
                        work.push(next);
                    }
                }
                break;
            }
            pc += INSTR_SIZE;
        }
    }

    // Pass 2: linear sweep within reachable code, splitting at leaders.
    let mut cfg = StaticCfg::default();
    for &start in &leaders {
        if !reachable.contains(&start) {
            continue;
        }
        let mut instrs = Vec::new();
        let mut pc = start;
        let mut successors = Vec::new();
        while let Some(i) = decode_at(&prog.image, prog.base, pc) {
            let (succs, is_term) = static_successors(&i, pc);
            instrs.push(i);
            let next = pc + INSTR_SIZE;
            if is_term {
                successors = succs;
                if i.op == Opcode::Call {
                    successors.push(next);
                    successors.dedup();
                }
                break;
            }
            if leaders.contains(&next) || instrs.len() >= MAX_BLOCK_INSTRS {
                successors = vec![next];
                break;
            }
            pc = next;
        }
        if !instrs.is_empty() {
            cfg.blocks.insert(
                start,
                BasicBlock {
                    start,
                    instrs,
                    successors,
                },
            );
        }
    }
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2e_vm::asm::Assembler;
    use s2e_vm::isa::reg;

    fn diamond() -> Program {
        let mut a = Assembler::new(0x2000);
        a.movi(reg::R1, 5); // B0
        a.bltu(reg::R0, reg::R1, "left");
        a.movi(reg::R2, 1); // B1
        a.jmp("join");
        a.label("left"); // B2
        a.movi(reg::R2, 2);
        a.label("join"); // B3
        a.halt();
        a.finish()
    }

    #[test]
    fn diamond_has_four_blocks() {
        let p = diamond();
        let cfg = build_cfg(&p, &[p.entry]);
        assert_eq!(cfg.block_count(), 4);
        // Entry block has two successors.
        let entry = &cfg.blocks[&0x2000];
        assert_eq!(entry.successors.len(), 2);
        // Join block ends in halt with no successors.
        let join = &cfg.blocks[&p.symbol("join")];
        assert!(join.successors.is_empty());
    }

    #[test]
    fn fallthrough_split_at_label_target() {
        let p = diamond();
        let cfg = build_cfg(&p, &[p.entry]);
        // The "movi r2,2" block falls through into "join".
        let left = &cfg.blocks[&p.symbol("left")];
        assert_eq!(left.successors, vec![p.symbol("join")]);
    }

    #[test]
    fn call_creates_return_site_leader() {
        let mut a = Assembler::new(0x3000);
        a.call("f");
        a.halt();
        a.label("f");
        a.ret();
        let p = a.finish();
        let cfg = build_cfg(&p, &[p.entry]);
        // Blocks: entry(call), return-site(halt), f(ret).
        assert_eq!(cfg.block_count(), 3);
        assert!(cfg.blocks.contains_key(&0x3008));
    }

    #[test]
    fn unreachable_code_excluded() {
        let mut a = Assembler::new(0x4000);
        a.jmp("end");
        a.movi(reg::R0, 9); // dead
        a.label("end");
        a.halt();
        let p = a.finish();
        let cfg = build_cfg(&p, &[p.entry]);
        assert_eq!(cfg.block_count(), 2);
        assert!(!cfg.blocks.contains_key(&0x4008));
    }

    #[test]
    fn multiple_roots_union() {
        let mut a = Assembler::new(0x5000);
        a.label("f1");
        a.halt();
        a.label("f2");
        a.halt();
        let p = a.finish();
        let cfg = build_cfg(&p, &[p.symbol("f1"), p.symbol("f2")]);
        assert_eq!(cfg.block_count(), 2);
    }

    #[test]
    fn block_containing_lookup() {
        let p = diamond();
        let cfg = build_cfg(&p, &[p.entry]);
        let b = cfg.block_containing(0x2008).unwrap();
        assert_eq!(b.start, 0x2000);
        assert!(cfg.block_containing(0x9999_0000).is_none());
    }
}
