//! Static control-flow-graph recovery from a program image.
//!
//! Used for two purposes in the reproduction:
//!
//! - ground-truth basic-block counts for the coverage experiments (the
//!   denominators of Table 5 / Fig. 7);
//! - the offline half of REV+, which rebuilds a driver's CFG from traces
//!   and synthesizes equivalent code — the static CFG of the original
//!   driver is what the synthesized output is checked against.
//!
//! Static recovery is *best effort*: indirect terminators (`Ret`, `JmpR`,
//! `Iret`, and the callee side of `CallR`) cannot name their targets, so
//! they contribute a conservative edge to the designated [`UNKNOWN_SINK`]
//! pseudo-block instead of silently dropping successors. Dataflow clients
//! (the `s2e-analysis` pre-pass) treat anything flowing into the sink as
//! escaping to an unknown location and widen accordingly.

use crate::MAX_BLOCK_INSTRS;
use s2e_vm::asm::Program;
use s2e_vm::isa::{Instr, Opcode, INSTR_SIZE};
use std::collections::{BTreeMap, BTreeSet};

/// Pseudo-address used as the successor of indirect control flow whose
/// target cannot be resolved statically. Never a real block start: code
/// is 8-byte aligned instructions, and an image would need to end past
/// the top of the address space to place a block here.
pub const UNKNOWN_SINK: u32 = u32::MAX;

/// A static basic block.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BasicBlock {
    /// Start address.
    pub start: u32,
    /// Instructions in the block.
    pub instrs: Vec<Instr>,
    /// Static successor addresses. Indirect targets appear as
    /// [`UNKNOWN_SINK`] rather than being dropped.
    pub successors: Vec<u32>,
}

impl BasicBlock {
    /// Address one past the block.
    pub fn end(&self) -> u32 {
        self.start + self.instrs.len() as u32 * INSTR_SIZE
    }

    /// Whether any successor is the unresolved-indirect sink.
    pub fn has_unknown_successor(&self) -> bool {
        self.successors.contains(&UNKNOWN_SINK)
    }
}

/// A static CFG over a program image.
#[derive(Clone, Debug, Default)]
pub struct StaticCfg {
    /// Blocks keyed by start address.
    pub blocks: BTreeMap<u32, BasicBlock>,
}

impl StaticCfg {
    /// Number of basic blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Block start addresses.
    pub fn block_starts(&self) -> impl Iterator<Item = u32> + '_ {
        self.blocks.keys().copied()
    }

    /// The block containing `pc`, if any.
    pub fn block_containing(&self, pc: u32) -> Option<&BasicBlock> {
        self.blocks
            .range(..=pc)
            .next_back()
            .map(|(_, b)| b)
            .filter(|b| pc < b.end())
    }

    /// Number of [`UNKNOWN_SINK`] edges across all blocks — the metric
    /// the value-range refinement pass exists to reduce.
    pub fn unknown_edge_count(&self) -> usize {
        self.blocks
            .values()
            .filter(|b| b.has_unknown_successor())
            .count()
    }

    /// Replaces the `UNKNOWN_SINK` edge of the block starting at `block`
    /// with the proven concrete `targets` (other successors — e.g. a
    /// `CallR` fall-through return site — are kept). Only call this with
    /// a *complete* target set established by a sound analysis; a partial
    /// set would silently drop feasible edges. No-op if the block has no
    /// sink edge.
    pub fn refine_successors(&mut self, block: u32, targets: &[u32]) {
        let Some(b) = self.blocks.get_mut(&block) else {
            return;
        };
        if !b.has_unknown_successor() {
            return;
        }
        let mut refined: Vec<u32> = Vec::with_capacity(b.successors.len() + targets.len());
        for &s in &b.successors {
            let replacements: &[u32] = if s == UNKNOWN_SINK { targets } else { std::slice::from_ref(&s) };
            for &t in replacements {
                if !refined.contains(&t) {
                    refined.push(t);
                }
            }
        }
        b.successors = refined;
    }
}

fn decode_at(image: &[u8], base: u32, addr: u32) -> Option<Instr> {
    let off = addr.checked_sub(base)? as usize;
    if off + 8 > image.len() {
        return None;
    }
    let bytes: [u8; 8] = image[off..off + 8].try_into().ok()?;
    Instr::decode(&bytes)
}

fn static_successors(i: &Instr, pc: u32) -> (Vec<u32>, bool) {
    let next = pc + INSTR_SIZE;
    match i.op {
        Opcode::Jmp => (vec![i.imm], true),
        Opcode::Call => (vec![i.imm], true),
        Opcode::Beq | Opcode::Bne | Opcode::Bltu | Opcode::Bgeu | Opcode::Blts | Opcode::Bges => {
            (vec![i.imm, next], true)
        }
        Opcode::Halt => (vec![], true),
        // Indirect flow: a conservative edge to the unknown sink, plus the
        // fall-through return site where one exists. Syscall transfers to
        // the environment but resumes at the return site via iret, so it
        // keeps only the fall-through edge (dataflow clients model the
        // environment's effects at the call site instead).
        Opcode::Ret | Opcode::JmpR | Opcode::Iret => (vec![UNKNOWN_SINK], true),
        Opcode::CallR => (vec![UNKNOWN_SINK, next], true),
        Opcode::Syscall => (vec![next], true),
        _ => (vec![next], false),
    }
}

/// Recovers the static CFG of a program's executable region.
///
/// `roots` seed the reachability walk (entry points); every reachable
/// instruction is decoded and blocks are split at branch targets, exactly
/// like leaders in a classic two-pass disassembler.
pub fn build_cfg(prog: &Program, roots: &[u32]) -> StaticCfg {
    // Pass 1: discover reachable instructions and leaders.
    let mut reachable: BTreeSet<u32> = BTreeSet::new();
    let mut leaders: BTreeSet<u32> = BTreeSet::new();
    let mut work: Vec<u32> = roots.to_vec();
    for &r in roots {
        leaders.insert(r);
    }
    while let Some(mut pc) = work.pop() {
        loop {
            if !reachable.insert(pc) {
                break;
            }
            let Some(i) = decode_at(&prog.image, prog.base, pc) else {
                break;
            };
            let (succs, is_term) = static_successors(&i, pc);
            if is_term {
                for s in &succs {
                    // The sink is a pseudo-block: never decoded or walked.
                    if *s == UNKNOWN_SINK {
                        continue;
                    }
                    if leaders.insert(*s) && !reachable.contains(s) {
                        work.push(*s);
                    } else if leaders.insert(*s) {
                        // already reachable: just a new split point
                    } else if !reachable.contains(s) {
                        work.push(*s);
                    }
                }
                // Calls also continue at the return site.
                if i.op == Opcode::Call {
                    let next = pc + INSTR_SIZE;
                    leaders.insert(next);
                    if !reachable.contains(&next) {
                        work.push(next);
                    }
                }
                break;
            }
            pc += INSTR_SIZE;
        }
    }

    // Pass 2: linear sweep within reachable code, splitting at leaders.
    // Blocks split at the size cap leave a successor that is not a
    // leader; those are queued and swept too, so every reachable
    // instruction ends up covered by exactly one block.
    let mut cfg = StaticCfg::default();
    let mut pending: Vec<u32> = leaders
        .iter()
        .copied()
        .filter(|s| reachable.contains(s))
        .collect();
    let mut done: BTreeSet<u32> = BTreeSet::new();
    while let Some(start) = pending.pop() {
        if !done.insert(start) {
            continue;
        }
        let mut instrs = Vec::new();
        let mut pc = start;
        let mut successors = Vec::new();
        while let Some(i) = decode_at(&prog.image, prog.base, pc) {
            let (succs, is_term) = static_successors(&i, pc);
            instrs.push(i);
            let next = pc + INSTR_SIZE;
            if is_term {
                successors = succs;
                if i.op == Opcode::Call {
                    successors.push(next);
                    successors.dedup();
                }
                break;
            }
            if leaders.contains(&next) || instrs.len() >= MAX_BLOCK_INSTRS {
                successors = vec![next];
                break;
            }
            pc = next;
        }
        for &s in &successors {
            if s != UNKNOWN_SINK && reachable.contains(&s) && !done.contains(&s) {
                pending.push(s);
            }
        }
        if !instrs.is_empty() {
            cfg.blocks.insert(
                start,
                BasicBlock {
                    start,
                    instrs,
                    successors,
                },
            );
        }
    }
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2e_vm::asm::Assembler;
    use s2e_vm::isa::reg;

    fn diamond() -> Program {
        let mut a = Assembler::new(0x2000);
        a.movi(reg::R1, 5); // B0
        a.bltu(reg::R0, reg::R1, "left");
        a.movi(reg::R2, 1); // B1
        a.jmp("join");
        a.label("left"); // B2
        a.movi(reg::R2, 2);
        a.label("join"); // B3
        a.halt();
        a.finish()
    }

    #[test]
    fn diamond_has_four_blocks() {
        let p = diamond();
        let cfg = build_cfg(&p, &[p.entry]);
        assert_eq!(cfg.block_count(), 4);
        // Entry block has two successors.
        let entry = &cfg.blocks[&0x2000];
        assert_eq!(entry.successors.len(), 2);
        // Join block ends in halt with no successors.
        let join = &cfg.blocks[&p.symbol("join")];
        assert!(join.successors.is_empty());
    }

    #[test]
    fn fallthrough_split_at_label_target() {
        let p = diamond();
        let cfg = build_cfg(&p, &[p.entry]);
        // The "movi r2,2" block falls through into "join".
        let left = &cfg.blocks[&p.symbol("left")];
        assert_eq!(left.successors, vec![p.symbol("join")]);
    }

    #[test]
    fn call_creates_return_site_leader() {
        let mut a = Assembler::new(0x3000);
        a.call("f");
        a.halt();
        a.label("f");
        a.ret();
        let p = a.finish();
        let cfg = build_cfg(&p, &[p.entry]);
        // Blocks: entry(call), return-site(halt), f(ret).
        assert_eq!(cfg.block_count(), 3);
        assert!(cfg.blocks.contains_key(&0x3008));
        // The ret's unknown target is represented by the sink edge.
        let f = &cfg.blocks[&p.symbol("f")];
        assert_eq!(f.successors, vec![UNKNOWN_SINK]);
        assert!(f.has_unknown_successor());
    }

    #[test]
    fn indirect_flow_points_at_unknown_sink() {
        let mut a = Assembler::new(0x6000);
        a.movi(reg::R5, 0x6010);
        a.callr(reg::R5); // B0: unknown callee + return-site edge
        a.halt(); // B1 (return site)
        a.jmpr(reg::R5); // B2: unknown target only
        let p = a.finish();
        let cfg = build_cfg(&p, &[p.entry, 0x6010]);
        let entry = &cfg.blocks[&0x6000];
        assert_eq!(entry.successors, vec![UNKNOWN_SINK, 0x6010]);
        let tail = &cfg.blocks[&0x6010];
        // halt splits the block; jmpr block is only reachable as a root.
        assert!(tail.successors.is_empty());
        let jr = build_cfg(&p, &[0x6018]);
        assert_eq!(jr.blocks[&0x6018].successors, vec![UNKNOWN_SINK]);
        // The sink itself never materializes as a block.
        assert!(!cfg.blocks.contains_key(&UNKNOWN_SINK));
    }

    #[test]
    fn unreachable_code_excluded() {
        let mut a = Assembler::new(0x4000);
        a.jmp("end");
        a.movi(reg::R0, 9); // dead
        a.label("end");
        a.halt();
        let p = a.finish();
        let cfg = build_cfg(&p, &[p.entry]);
        assert_eq!(cfg.block_count(), 2);
        assert!(!cfg.blocks.contains_key(&0x4008));
    }

    #[test]
    fn multiple_roots_union() {
        let mut a = Assembler::new(0x5000);
        a.label("f1");
        a.halt();
        a.label("f2");
        a.halt();
        let p = a.finish();
        let cfg = build_cfg(&p, &[p.symbol("f1"), p.symbol("f2")]);
        assert_eq!(cfg.block_count(), 2);
    }

    #[test]
    fn size_cap_split_covers_whole_run() {
        let mut a = Assembler::new(0x7000);
        for _ in 0..(MAX_BLOCK_INSTRS + 10) {
            a.nop();
        }
        a.halt();
        let p = a.finish();
        let cfg = build_cfg(&p, &[p.entry]);
        // The run splits at the cap; the tail must still be a block.
        assert_eq!(cfg.block_count(), 2);
        let head = &cfg.blocks[&0x7000];
        assert_eq!(head.instrs.len(), MAX_BLOCK_INSTRS);
        let tail_start = head.successors[0];
        let tail = &cfg.blocks[&tail_start];
        assert_eq!(tail.end(), p.base + p.image.len() as u32);
    }

    #[test]
    fn refine_replaces_sink_edges_in_place() {
        let mut a = Assembler::new(0x6000);
        a.movi(reg::R5, 0x6018);
        a.callr(reg::R5); // B0: [sink, return-site]
        a.halt(); // B1
        a.label("f");
        a.ret(); // f: [sink]
        let p = a.finish();
        let mut cfg = build_cfg(&p, &[p.entry, p.symbol("f")]);
        assert_eq!(cfg.unknown_edge_count(), 2);
        cfg.refine_successors(0x6000, &[p.symbol("f")]);
        assert_eq!(cfg.blocks[&0x6000].successors, vec![p.symbol("f"), 0x6010]);
        cfg.refine_successors(p.symbol("f"), &[0x6010]);
        assert_eq!(cfg.blocks[&p.symbol("f")].successors, vec![0x6010]);
        assert_eq!(cfg.unknown_edge_count(), 0);
        // Refining a block with no sink edge is a no-op.
        cfg.refine_successors(0x6000, &[0x9999]);
        assert_eq!(cfg.blocks[&0x6000].successors, vec![p.symbol("f"), 0x6010]);
    }

    #[test]
    fn block_containing_lookup() {
        let p = diamond();
        let cfg = build_cfg(&p, &[p.entry]);
        let b = cfg.block_containing(0x2008).unwrap();
        assert_eq!(b.start, 0x2000);
        assert!(cfg.block_containing(0x9999_0000).is_none());
    }
}
