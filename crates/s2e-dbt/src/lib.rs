//! Dynamic binary translation for the S2E platform.
//!
//! The original S2E modifies QEMU's DBT so that guest code is translated
//! once into host code (or LLVM, for symbolic execution) and cached. This
//! crate reproduces the structure: guest instructions are decoded into
//! *translation blocks* — straight-line runs ending at a control-flow
//! instruction — that are cached by start address and shared between all
//! execution states (translation is state-independent; only execution
//! differs per state).
//!
//! The split between translation and execution is what makes the paper's
//! `onInstrTranslation` / `onInstrExecution` event pair cheap (§4.2): a
//! block is translated once but executed millions of times, so analyzers
//! mark interesting instructions at translation time and pay per-execution
//! cost only for marked ones. The engine (`s2e-core`) fires those events;
//! this crate exposes the translation hook they build on.
//!
//! # Example
//!
//! ```
//! use s2e_dbt::BlockCache;
//! use s2e_vm::asm::Assembler;
//! use s2e_vm::isa::reg;
//! use s2e_vm::mem::Memory;
//!
//! let mut a = Assembler::new(0x2000);
//! a.movi(reg::R0, 1);
//! a.addi(reg::R0, reg::R0, 2);
//! a.jmp("next");
//! a.label("next");
//! a.halt();
//! let p = a.finish();
//!
//! let mut mem = Memory::new();
//! mem.load_image(p.base, &p.image);
//!
//! let mut cache = BlockCache::new();
//! let tb = cache.translate(&mem, 0x2000, &mut |_, _| {});
//! assert_eq!(tb.instrs.len(), 3); // ends at the jmp
//! // Second lookup hits the cache.
//! cache.translate(&mem, 0x2000, &mut |_, _| {});
//! assert_eq!(cache.stats().hits, 1);
//! ```

pub mod cfg;

use std::sync::Mutex;
use s2e_vm::isa::{Instr, INSTR_SIZE};
use s2e_vm::mem::Memory;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Maximum instructions per translation block.
pub const MAX_BLOCK_INSTRS: usize = 64;

/// Static pre-pass facts attached to a translation block at translation
/// time (see the `s2e-analysis` crate for the producer).
///
/// The default is fully conservative: every field claims nothing, so an
/// unannotated block behaves exactly as before the pre-pass existed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockAnnotation {
    /// No symbolic value can ever be *read* by an instruction in this
    /// block: the engine may skip per-instruction symbolic dispatch.
    pub concrete_only: bool,
    /// No pc in this block is eligible for forking under the engine's
    /// code ranges: symbolic branches may concretize without feasibility
    /// probes.
    pub fork_free: bool,
    /// Registers possibly read before being written on some path from
    /// the block entry (bit *r* set ⇒ register *r* is live-in).
    pub live_in: u16,
    /// Bit *i* set ⇒ the register written by instruction *i* is dead
    /// (never read before being overwritten on every outgoing path).
    pub dead_writes: u64,
    /// Bit *i* set ⇒ instruction *i* can never observe a symbolic
    /// register, even when the block as a whole is not `concrete_only`:
    /// the engine may skip that instruction's operand scan. Strictly
    /// weaker than `concrete_only` (which implies every bit).
    pub concrete_mask: u64,
}

impl Default for BlockAnnotation {
    fn default() -> BlockAnnotation {
        BlockAnnotation::conservative()
    }
}

impl BlockAnnotation {
    /// The no-information annotation (all optimizations disabled).
    pub fn conservative() -> BlockAnnotation {
        BlockAnnotation {
            concrete_only: false,
            fork_free: false,
            live_in: 0xffff,
            dead_writes: 0,
            concrete_mask: 0,
        }
    }
}

/// How a retired indirect control transfer relates to the static CFG's
/// prediction for its site (see [`IndirectPredictions::classify`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IndirectClass {
    /// The target was in the site's statically predicted successor set.
    Resolved,
    /// The analysis explicitly declined to predict this site (e.g. a
    /// `ret` with no matched call sites — control leaves the analyzed
    /// region).
    Escaped,
    /// The site claimed a (possibly empty) prediction and the target was
    /// not in it: a genuinely new edge the static CFG missed.
    Discovered,
}

/// Per-site successor prediction for one indirect control-flow site.
#[derive(Clone, Debug, Default)]
pub struct IndirectSite {
    /// Predicted concrete successors (block starts).
    pub targets: std::collections::BTreeSet<u32>,
    /// The analysis explicitly declined to predict: any retirement here
    /// classifies as [`IndirectClass::Escaped`], never `Discovered`.
    pub escapes: bool,
}

/// The static analysis' successor predictions for every indirect
/// control-flow site (`JmpR`/`CallR`/`Ret` instruction pcs), consumed by
/// the executor to classify retired targets and feed unpredicted ones
/// back into incremental re-analysis.
#[derive(Clone, Debug, Default)]
pub struct IndirectPredictions {
    /// Keyed by the pc of the indirect instruction itself.
    pub sites: std::collections::BTreeMap<u32, IndirectSite>,
}

impl IndirectPredictions {
    /// Classifies a retired `(site pc, target)` pair. Sites the analysis
    /// never saw classify as `Discovered` — an unknown site is exactly
    /// the "silent `UNKNOWN_SINK` absorption" the feedback loop exists
    /// to surface.
    pub fn classify(&self, pc: u32, target: u32) -> IndirectClass {
        match self.sites.get(&pc) {
            Some(site) if site.targets.contains(&target) => IndirectClass::Resolved,
            Some(site) if site.escapes => IndirectClass::Escaped,
            _ => IndirectClass::Discovered,
        }
    }
}

/// Producer of [`BlockAnnotation`]s, installed on a [`BlockCache`] via
/// [`BlockCache::set_annotator`]. Implemented by the static pre-pass;
/// the trait lives here so the cache does not depend on the analysis
/// crate.
pub trait BlockAnnotator: Send + Sync {
    /// Annotates the dynamic block starting at `start` covering `instrs`.
    /// Must be conservative for any code it has not analyzed.
    fn annotate(&self, start: u32, instrs: &[Instr]) -> BlockAnnotation;
}

/// A decoded straight-line block of guest code.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TranslationBlock {
    /// Guest address of the first instruction.
    pub start: u32,
    /// Decoded instructions, in order.
    pub instrs: Vec<Instr>,
    /// True if decoding stopped at an undecodable instruction; executing
    /// past the last decoded instruction must fault.
    pub ends_in_invalid: bool,
    /// Static pre-pass facts (conservative default when no annotator is
    /// installed).
    pub annotation: BlockAnnotation,
}

impl TranslationBlock {
    /// Guest address of the instruction at `index`.
    pub fn pc_of(&self, index: usize) -> u32 {
        self.start + (index as u32) * INSTR_SIZE
    }

    /// Byte length of the decoded portion.
    pub fn byte_len(&self) -> u32 {
        self.instrs.len() as u32 * INSTR_SIZE
    }

    /// Guest address one past the block (fall-through PC).
    pub fn end(&self) -> u32 {
        self.start + self.byte_len()
    }
}

/// Counters for the translator.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DbtStats {
    /// Blocks translated (cache misses).
    pub translations: u64,
    /// Cache hits (L1 hits plus shared/private map hits — every lookup
    /// that avoided a retranslation).
    pub hits: u64,
    /// Instructions decoded in total.
    pub instrs_translated: u64,
    /// Blocks discarded by invalidation (self-modifying code).
    pub invalidations: u64,
    /// Superblock links recorded along observed direct edges.
    pub chains_formed: u64,
    /// Block→block hops taken inside a chained run (no scheduler
    /// round-trip between the two blocks).
    pub chain_entries: u64,
    /// Chained runs that executed more than one block before returning
    /// to the scheduler.
    pub chain_exits: u64,
    /// Chain links severed by invalidation (inbound + outbound edges of
    /// every discarded block).
    pub unlinks: u64,
    /// Lookups answered by a per-worker L1 front cache without touching
    /// the shared cache (subset of `hits`).
    pub l1_hits: u64,
    /// Wall-clock time spent decoding and annotating blocks (cache
    /// misses only; hits cost a map lookup, not measured).
    pub translation_time: Duration,
}

impl DbtStats {
    /// Accumulates another counter set into this one (used to combine
    /// the shared cache's counters with each worker's L1 counters).
    pub fn merge(&mut self, other: &DbtStats) {
        self.translations += other.translations;
        self.hits += other.hits;
        self.instrs_translated += other.instrs_translated;
        self.invalidations += other.invalidations;
        self.chains_formed += other.chains_formed;
        self.chain_entries += other.chain_entries;
        self.chain_exits += other.chain_exits;
        self.unlinks += other.unlinks;
        self.l1_hits += other.l1_hits;
        self.translation_time += other.translation_time;
    }
}

/// Lock-free monotone bitmap of guest pages containing translated code.
///
/// Shared (behind `Arc`) between the owning [`BlockCache`] and every
/// per-worker L1 front so the store fast path can ask "might this write
/// hit code?" without taking the shared-cache mutex. Bits are only ever
/// set while the cache lock is held and only cleared by [`clear`], so a
/// stale *set* bit costs one spurious locked probe and a cleared bit is
/// exactly as stale as the racy locked check it replaces.
///
/// [`clear`]: CodePageFilter::reset
pub struct CodePageFilter {
    bits: Box<[AtomicU64]>,
}

/// One bit per 4 KiB page of the 32-bit guest address space: 128 KiB.
const FILTER_WORDS: usize = (1usize << (32 - PAGE_SHIFT)) / 64;

impl Default for CodePageFilter {
    fn default() -> CodePageFilter {
        let bits = (0..FILTER_WORDS).map(|_| AtomicU64::new(0)).collect();
        CodePageFilter { bits }
    }
}

impl std::fmt::Debug for CodePageFilter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let set: u64 = self
            .bits
            .iter()
            .map(|w| u64::from(w.load(Ordering::Relaxed).count_ones()))
            .sum();
        f.debug_struct("CodePageFilter").field("pages", &set).finish()
    }
}

impl CodePageFilter {
    fn mark_page(&self, page: u32) {
        let word = (page as usize) / 64;
        self.bits[word].fetch_or(1 << (page % 64), Ordering::Release);
    }

    /// True if `addr` lies in a page that has (or recently had)
    /// translated code. Lock-free.
    pub fn page_has_code(&self, addr: u32) -> bool {
        let page = addr >> PAGE_SHIFT;
        let word = (page as usize) / 64;
        self.bits[word].load(Ordering::Acquire) >> (page % 64) & 1 == 1
    }

    fn reset(&self) {
        for w in self.bits.iter() {
            w.store(0, Ordering::Release);
        }
    }
}

/// Cache of translation blocks, keyed by start address.
///
/// The cache is shared by all execution states: like in QEMU, translated
/// code is a pure function of guest memory contents, and stores into
/// translated pages invalidate the affected blocks
/// ([`BlockCache::invalidate_write`]).
#[derive(Default)]
pub struct BlockCache {
    blocks: HashMap<u32, Arc<TranslationBlock>>,
    /// Page index → block start addresses translated from that page.
    page_index: HashMap<u32, HashSet<u32>>,
    /// Superblock links: block start → `[taken/jump target, fall-through]`
    /// successors observed at execution time ([`BlockCache::chain`]).
    links: HashMap<u32, [Option<u32>; 2]>,
    /// Inverse of `links`: block start → predecessors linking to it, so
    /// invalidating a block can sever *inbound* edges without a scan.
    rev_links: HashMap<u32, HashSet<u32>>,
    /// Bumped on every invalidation (and on `clear`); per-worker L1
    /// fronts compare it lock-free to know when to flush.
    epoch: Arc<AtomicU64>,
    /// Lock-free page bitmap mirroring `page_index` occupancy.
    code_pages: Arc<CodePageFilter>,
    stats: DbtStats,
    /// Optional static pre-pass annotator applied at translation time.
    annotator: Option<Arc<dyn BlockAnnotator>>,
}

impl std::fmt::Debug for BlockCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlockCache")
            .field("blocks", &self.blocks.len())
            .field("links", &self.links.len())
            .field("epoch", &self.epoch.load(Ordering::Relaxed))
            .field("stats", &self.stats)
            .field("annotated", &self.annotator.is_some())
            .finish()
    }
}

const PAGE_SHIFT: u32 = 12;

impl BlockCache {
    /// Creates an empty cache.
    pub fn new() -> BlockCache {
        BlockCache::default()
    }

    /// Translator statistics.
    pub fn stats(&self) -> DbtStats {
        self.stats
    }

    /// Number of cached blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// True if no blocks are cached.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Returns the block starting at `pc`, translating and caching it on a
    /// miss. `on_translate` is invoked once per newly-decoded instruction
    /// with its guest address — this is the hook the engine uses to raise
    /// `onInstrTranslation` events.
    pub fn translate(
        &mut self,
        mem: &Memory,
        pc: u32,
        on_translate: &mut dyn FnMut(u32, &Instr),
    ) -> Arc<TranslationBlock> {
        self.translate_timed(mem, pc, on_translate).0
    }

    /// [`BlockCache::translate`], also returning the time spent decoding
    /// — `Duration::ZERO` on a cache hit, so hits never read the clock.
    /// The observability layer attributes this to its translate phase
    /// without wrapping the (overwhelmingly hit) lookup in a timed span.
    pub fn translate_timed(
        &mut self,
        mem: &Memory,
        pc: u32,
        on_translate: &mut dyn FnMut(u32, &Instr),
    ) -> (Arc<TranslationBlock>, Duration) {
        if let Some(tb) = self.blocks.get(&pc) {
            self.stats.hits += 1;
            return (Arc::clone(tb), Duration::ZERO);
        }
        let started = Instant::now();
        let mut decoded = Self::decode_block(mem, pc, on_translate);
        if let Some(ann) = &self.annotator {
            decoded.annotation = ann.annotate(decoded.start, &decoded.instrs);
        }
        let decode_time = started.elapsed();
        self.stats.translation_time += decode_time;
        let tb = Arc::new(decoded);
        self.stats.translations += 1;
        self.stats.instrs_translated += tb.instrs.len() as u64;
        for page in (tb.start >> PAGE_SHIFT)..=(tb.end().max(tb.start) >> PAGE_SHIFT) {
            self.page_index.entry(page).or_default().insert(pc);
            self.code_pages.mark_page(page);
        }
        self.blocks.insert(pc, Arc::clone(&tb));
        (tb, decode_time)
    }

    /// Records a superblock link: executing the block at `from` was
    /// observed to continue directly at `to`. `slot` 0 is the taken
    /// branch / jump / call edge, slot 1 the fall-through edge. Returns
    /// true when the link changed (new or retargeted).
    pub fn chain(&mut self, from: u32, to: u32, slot: usize) -> bool {
        debug_assert!(slot < 2);
        let entry = self.links.entry(from).or_default();
        if entry[slot] == Some(to) {
            return false;
        }
        if let Some(old) = entry[slot].replace(to) {
            // Retargeted (e.g. the successor was retranslated at a new
            // boundary): drop the stale inbound edge unless the other
            // slot still points there.
            if !entry.contains(&Some(old)) {
                if let Some(preds) = self.rev_links.get_mut(&old) {
                    preds.remove(&from);
                }
            }
        }
        self.rev_links.entry(to).or_default().insert(from);
        self.stats.chains_formed += 1;
        true
    }

    /// The recorded successors of the block at `from`:
    /// `[taken/jump, fall-through]`.
    pub fn chained_succ(&self, from: u32) -> [Option<u32>; 2] {
        self.links.get(&from).copied().unwrap_or([None, None])
    }

    /// Severs every chain edge touching the block at `pc` — outbound
    /// links it holds and inbound links other blocks hold to it —
    /// returning the number of edges removed.
    fn unlink(&mut self, pc: u32) -> u64 {
        let mut severed = 0u64;
        if let Some(succs) = self.links.remove(&pc) {
            for to in succs.into_iter().flatten() {
                severed += 1;
                if let Some(preds) = self.rev_links.get_mut(&to) {
                    preds.remove(&pc);
                }
            }
        }
        if let Some(preds) = self.rev_links.remove(&pc) {
            for pred in preds {
                if let Some(slots) = self.links.get_mut(&pred) {
                    for slot in slots.iter_mut() {
                        if *slot == Some(pc) {
                            *slot = None;
                            severed += 1;
                        }
                    }
                }
            }
        }
        severed
    }

    /// The invalidation-epoch counter per-worker L1 fronts watch.
    pub fn epoch_handle(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.epoch)
    }

    /// The lock-free code-page bitmap shared with L1 fronts.
    pub fn code_page_filter(&self) -> Arc<CodePageFilter> {
        Arc::clone(&self.code_pages)
    }

    fn decode_block(
        mem: &Memory,
        pc: u32,
        on_translate: &mut dyn FnMut(u32, &Instr),
    ) -> TranslationBlock {
        let mut instrs = Vec::new();
        let mut cur = pc;
        let mut ends_in_invalid = false;
        while instrs.len() < MAX_BLOCK_INSTRS {
            let raw = mem.read_bytes_concrete(cur, INSTR_SIZE);
            let bytes: [u8; 8] = raw.try_into().expect("8 bytes");
            match Instr::decode(&bytes) {
                None => {
                    ends_in_invalid = true;
                    break;
                }
                Some(i) => {
                    on_translate(cur, &i);
                    let term = i.op.is_terminator();
                    instrs.push(i);
                    cur += INSTR_SIZE;
                    if term {
                        break;
                    }
                }
            }
        }
        TranslationBlock {
            start: pc,
            instrs,
            ends_in_invalid,
            annotation: BlockAnnotation::conservative(),
        }
    }

    /// Installs (or removes) the static pre-pass annotator. Drops all
    /// cached blocks so stale annotations never mix with fresh ones.
    pub fn set_annotator(&mut self, annotator: Option<Arc<dyn BlockAnnotator>>) {
        self.annotator = annotator;
        self.clear();
    }

    /// Invalidates every block overlapping a guest store at `addr` of
    /// `len` bytes. Call on stores into pages containing translated code
    /// (self-modifying or JITed guests).
    pub fn invalidate_write(&mut self, addr: u32, len: u32) {
        let first = addr >> PAGE_SHIFT;
        let last = addr.saturating_add(len.saturating_sub(1)) >> PAGE_SHIFT;
        let mut victims: Vec<u32> = Vec::new();
        for page in first..=last {
            if let Some(starts) = self.page_index.get(&page) {
                for &s in starts {
                    if let Some(tb) = self.blocks.get(&s) {
                        let tb_end = tb.end();
                        if s < addr.saturating_add(len) && tb_end > addr {
                            victims.push(s);
                        }
                    }
                }
            }
        }
        // A page-spanning block is indexed on every page it covers;
        // count (and unlink) it once.
        victims.sort_unstable();
        victims.dedup();
        let invalidated = !victims.is_empty();
        for s in victims {
            self.blocks.remove(&s);
            self.stats.invalidations += 1;
            self.stats.unlinks += self.unlink(s);
        }
        if invalidated {
            // Publish after the maps are consistent: an L1 front that
            // observes the new epoch re-reads through the lock and sees
            // the post-invalidation cache.
            self.epoch.fetch_add(1, Ordering::Release);
        }
    }

    /// True if `addr` lies in a page containing translated code (cheap
    /// pre-check before [`BlockCache::invalidate_write`]).
    pub fn page_has_code(&self, addr: u32) -> bool {
        self.page_index
            .get(&(addr >> PAGE_SHIFT))
            .map(|s| !s.is_empty())
            .unwrap_or(false)
    }

    /// Drops all cached blocks, chain links, and the page filter.
    pub fn clear(&mut self) {
        self.blocks.clear();
        self.page_index.clear();
        self.links.clear();
        self.rev_links.clear();
        self.code_pages.reset();
        self.epoch.fetch_add(1, Ordering::Release);
    }
}

/// A thread-safe shared block cache for the parallel explorer.
#[derive(Clone, Debug, Default)]
pub struct SharedBlockCache(Arc<Mutex<BlockCache>>);

impl SharedBlockCache {
    /// Creates an empty shared cache.
    pub fn new() -> SharedBlockCache {
        SharedBlockCache::default()
    }

    /// See [`BlockCache::translate`].
    pub fn translate(
        &self,
        mem: &Memory,
        pc: u32,
        on_translate: &mut dyn FnMut(u32, &Instr),
    ) -> Arc<TranslationBlock> {
        self.0.lock().unwrap().translate(mem, pc, on_translate)
    }

    /// See [`BlockCache::translate_timed`].
    pub fn translate_timed(
        &self,
        mem: &Memory,
        pc: u32,
        on_translate: &mut dyn FnMut(u32, &Instr),
    ) -> (Arc<TranslationBlock>, Duration) {
        self.0.lock().unwrap().translate_timed(mem, pc, on_translate)
    }

    /// See [`BlockCache::invalidate_write`].
    pub fn invalidate_write(&self, addr: u32, len: u32) {
        self.0.lock().unwrap().invalidate_write(addr, len)
    }

    /// See [`BlockCache::page_has_code`].
    pub fn page_has_code(&self, addr: u32) -> bool {
        self.0.lock().unwrap().page_has_code(addr)
    }

    /// See [`BlockCache::chain`].
    pub fn chain(&self, from: u32, to: u32, slot: usize) -> bool {
        self.0.lock().unwrap().chain(from, to, slot)
    }

    /// See [`BlockCache::chained_succ`].
    pub fn chained_succ(&self, from: u32) -> [Option<u32>; 2] {
        self.0.lock().unwrap().chained_succ(from)
    }

    /// See [`BlockCache::epoch_handle`].
    pub fn epoch_handle(&self) -> Arc<AtomicU64> {
        self.0.lock().unwrap().epoch_handle()
    }

    /// See [`BlockCache::code_page_filter`].
    pub fn code_page_filter(&self) -> Arc<CodePageFilter> {
        self.0.lock().unwrap().code_page_filter()
    }

    /// See [`BlockCache::stats`].
    pub fn stats(&self) -> DbtStats {
        self.0.lock().unwrap().stats()
    }

    /// See [`BlockCache::clear`].
    pub fn clear(&self) {
        self.0.lock().unwrap().clear()
    }

    /// See [`BlockCache::set_annotator`]. Affects every worker sharing
    /// this cache.
    pub fn set_annotator(&self, annotator: Option<Arc<dyn BlockAnnotator>>) {
        self.0.lock().unwrap().set_annotator(annotator)
    }
}

/// The translation cache an engine executes against: private to one
/// engine, or shared between the parallel explorer's workers.
///
/// Translation is a pure function of guest memory, so workers exploring
/// the same image can share one warm cache; a stolen state never pays
/// for re-translating blocks its previous owner already decoded. The
/// engine holds this handle rather than a `BlockCache` directly so the
/// sequential fast path keeps its lock-free cache.
#[derive(Debug)]
pub enum CacheHandle {
    /// A lock-free cache owned by one engine.
    Private(BlockCache),
    /// A mutex-guarded cache shared across engines.
    Shared(SharedBlockCache),
}

impl Default for CacheHandle {
    fn default() -> CacheHandle {
        CacheHandle::Private(BlockCache::new())
    }
}

impl CacheHandle {
    /// A fresh private cache.
    pub fn private() -> CacheHandle {
        CacheHandle::default()
    }

    /// A handle onto an existing shared cache.
    pub fn shared(cache: SharedBlockCache) -> CacheHandle {
        CacheHandle::Shared(cache)
    }

    /// True when backed by a cross-engine shared cache.
    pub fn is_shared(&self) -> bool {
        matches!(self, CacheHandle::Shared(_))
    }

    /// See [`BlockCache::translate`].
    pub fn translate(
        &mut self,
        mem: &Memory,
        pc: u32,
        on_translate: &mut dyn FnMut(u32, &Instr),
    ) -> Arc<TranslationBlock> {
        match self {
            CacheHandle::Private(c) => c.translate(mem, pc, on_translate),
            CacheHandle::Shared(c) => c.translate(mem, pc, on_translate),
        }
    }

    /// See [`BlockCache::translate_timed`].
    pub fn translate_timed(
        &mut self,
        mem: &Memory,
        pc: u32,
        on_translate: &mut dyn FnMut(u32, &Instr),
    ) -> (Arc<TranslationBlock>, Duration) {
        match self {
            CacheHandle::Private(c) => c.translate_timed(mem, pc, on_translate),
            CacheHandle::Shared(c) => c.translate_timed(mem, pc, on_translate),
        }
    }

    /// See [`BlockCache::invalidate_write`].
    pub fn invalidate_write(&mut self, addr: u32, len: u32) {
        match self {
            CacheHandle::Private(c) => c.invalidate_write(addr, len),
            CacheHandle::Shared(c) => c.invalidate_write(addr, len),
        }
    }

    /// See [`BlockCache::page_has_code`].
    pub fn page_has_code(&self, addr: u32) -> bool {
        match self {
            CacheHandle::Private(c) => c.page_has_code(addr),
            CacheHandle::Shared(c) => c.page_has_code(addr),
        }
    }

    /// See [`BlockCache::chain`].
    pub fn chain(&mut self, from: u32, to: u32, slot: usize) -> bool {
        match self {
            CacheHandle::Private(c) => c.chain(from, to, slot),
            CacheHandle::Shared(c) => c.chain(from, to, slot),
        }
    }

    /// See [`BlockCache::chained_succ`].
    pub fn chained_succ(&self, from: u32) -> [Option<u32>; 2] {
        match self {
            CacheHandle::Private(c) => c.chained_succ(from),
            CacheHandle::Shared(c) => c.chained_succ(from),
        }
    }

    /// See [`BlockCache::epoch_handle`].
    pub fn epoch_handle(&self) -> Arc<AtomicU64> {
        match self {
            CacheHandle::Private(c) => c.epoch_handle(),
            CacheHandle::Shared(c) => c.epoch_handle(),
        }
    }

    /// See [`BlockCache::code_page_filter`].
    pub fn code_page_filter(&self) -> Arc<CodePageFilter> {
        match self {
            CacheHandle::Private(c) => c.code_page_filter(),
            CacheHandle::Shared(c) => c.code_page_filter(),
        }
    }

    /// See [`BlockCache::stats`]. For a shared handle these counters
    /// aggregate every participating engine.
    pub fn stats(&self) -> DbtStats {
        match self {
            CacheHandle::Private(c) => c.stats(),
            CacheHandle::Shared(c) => c.stats(),
        }
    }

    /// See [`BlockCache::clear`].
    pub fn clear(&mut self) {
        match self {
            CacheHandle::Private(c) => c.clear(),
            CacheHandle::Shared(c) => c.clear(),
        }
    }

    /// See [`BlockCache::set_annotator`].
    pub fn set_annotator(&mut self, annotator: Option<Arc<dyn BlockAnnotator>>) {
        match self {
            CacheHandle::Private(c) => c.set_annotator(annotator),
            CacheHandle::Shared(c) => c.set_annotator(annotator),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2e_vm::asm::Assembler;
    use s2e_vm::isa::{reg, Opcode};

    fn asm_mem(build: impl FnOnce(&mut Assembler)) -> Memory {
        let mut a = Assembler::new(0x2000);
        build(&mut a);
        let p = a.finish();
        let mut mem = Memory::new();
        mem.load_image(p.base, &p.image);
        mem
    }

    #[test]
    fn block_ends_at_terminator() {
        let mem = asm_mem(|a| {
            a.movi(reg::R0, 1);
            a.movi(reg::R1, 2);
            a.beq(reg::R0, reg::R1, "target");
            a.movi(reg::R2, 3); // next block
            a.label("target");
            a.halt();
        });
        let mut c = BlockCache::new();
        let tb = c.translate(&mem, 0x2000, &mut |_, _| {});
        assert_eq!(tb.instrs.len(), 3);
        assert_eq!(tb.instrs[2].op, Opcode::Beq);
        assert_eq!(tb.end(), 0x2018);
        assert!(!tb.ends_in_invalid);
    }

    #[test]
    fn invalid_instruction_marks_block() {
        let mut mem = Memory::new();
        mem.load_image(0x2000, &[0xff; 8]);
        let mut c = BlockCache::new();
        let tb = c.translate(&mem, 0x2000, &mut |_, _| {});
        assert!(tb.instrs.is_empty());
        assert!(tb.ends_in_invalid);
    }

    #[test]
    fn block_caps_at_max_instrs() {
        let mem = asm_mem(|a| {
            for _ in 0..(MAX_BLOCK_INSTRS + 10) {
                a.nop();
            }
            a.halt();
        });
        let mut c = BlockCache::new();
        let tb = c.translate(&mem, 0x2000, &mut |_, _| {});
        assert_eq!(tb.instrs.len(), MAX_BLOCK_INSTRS);
        assert!(!tb.ends_in_invalid);
    }

    #[test]
    fn translation_fires_hook_once_per_instr() {
        let mem = asm_mem(|a| {
            a.movi(reg::R0, 1);
            a.halt();
        });
        let mut c = BlockCache::new();
        let mut seen = Vec::new();
        c.translate(&mem, 0x2000, &mut |pc, i| seen.push((pc, i.op)));
        assert_eq!(seen, vec![(0x2000, Opcode::MovI), (0x2008, Opcode::Halt)]);
        // Cache hit: hook must NOT fire again.
        c.translate(&mem, 0x2000, &mut |_, _| panic!("retranslated"));
    }

    #[test]
    fn stats_track_hits_and_misses() {
        let mem = asm_mem(|a| {
            a.halt();
        });
        let mut c = BlockCache::new();
        c.translate(&mem, 0x2000, &mut |_, _| {});
        c.translate(&mem, 0x2000, &mut |_, _| {});
        c.translate(&mem, 0x2000, &mut |_, _| {});
        let s = c.stats();
        assert_eq!(s.translations, 1);
        assert_eq!(s.hits, 2);
        assert_eq!(s.instrs_translated, 1);
    }

    #[test]
    fn invalidation_on_store() {
        let mem = asm_mem(|a| {
            a.movi(reg::R0, 1);
            a.halt();
        });
        let mut c = BlockCache::new();
        c.translate(&mem, 0x2000, &mut |_, _| {});
        assert!(c.page_has_code(0x2004));
        // A write inside the block invalidates it.
        c.invalidate_write(0x2004, 4);
        assert_eq!(c.len(), 0);
        assert_eq!(c.stats().invalidations, 1);
        // Retranslation is a miss again.
        c.translate(&mem, 0x2000, &mut |_, _| {});
        assert_eq!(c.stats().translations, 2);
    }

    #[test]
    fn invalidation_misses_disjoint_write() {
        let mem = asm_mem(|a| {
            a.movi(reg::R0, 1);
            a.halt();
        });
        let mut c = BlockCache::new();
        c.translate(&mem, 0x2000, &mut |_, _| {});
        c.invalidate_write(0x2100, 4); // same page, outside the block
        assert_eq!(c.len(), 1);
        assert_eq!(c.stats().invalidations, 0);
    }

    #[test]
    fn pc_of_indexes_instructions() {
        let mem = asm_mem(|a| {
            a.nop();
            a.nop();
            a.halt();
        });
        let mut c = BlockCache::new();
        let tb = c.translate(&mem, 0x2000, &mut |_, _| {});
        assert_eq!(tb.pc_of(0), 0x2000);
        assert_eq!(tb.pc_of(2), 0x2010);
    }

    #[test]
    fn shared_cache_is_cloneable_and_shared() {
        let mem = asm_mem(|a| {
            a.halt();
        });
        let c1 = SharedBlockCache::new();
        let c2 = c1.clone();
        c1.translate(&mem, 0x2000, &mut |_, _| {});
        c2.translate(&mem, 0x2000, &mut |_, _| {});
        assert_eq!(c1.stats().translations, 1);
        assert_eq!(c1.stats().hits, 1);
    }

    #[test]
    fn cache_handle_dispatches_both_backends() {
        let mem = asm_mem(|a| {
            a.halt();
        });
        let shared = SharedBlockCache::new();
        let mut h1 = CacheHandle::shared(shared.clone());
        let mut h2 = CacheHandle::shared(shared);
        assert!(h1.is_shared());
        h1.translate(&mem, 0x2000, &mut |_, _| {});
        // The second handle sees the first handle's translation.
        h2.translate(&mem, 0x2000, &mut |_, _| panic!("retranslated"));
        assert_eq!(h2.stats().hits, 1);
        assert!(h2.page_has_code(0x2000));

        let mut p = CacheHandle::private();
        assert!(!p.is_shared());
        p.translate(&mem, 0x2000, &mut |_, _| {});
        assert_eq!(p.stats().translations, 1);
        p.clear();
        assert!(!p.page_has_code(0x2000));
    }

    struct MarkAll;
    impl BlockAnnotator for MarkAll {
        fn annotate(&self, _start: u32, instrs: &[Instr]) -> BlockAnnotation {
            BlockAnnotation {
                concrete_only: true,
                fork_free: true,
                live_in: 0,
                dead_writes: (1 << instrs.len()) - 1,
                concrete_mask: (1 << instrs.len()) - 1,
            }
        }
    }

    #[test]
    fn annotator_applies_at_translation_time() {
        let mem = asm_mem(|a| {
            a.movi(reg::R0, 1);
            a.halt();
        });
        let mut c = BlockCache::new();
        let tb = c.translate(&mem, 0x2000, &mut |_, _| {});
        assert_eq!(tb.annotation, BlockAnnotation::conservative());
        c.set_annotator(Some(Arc::new(MarkAll)));
        // Installing the annotator dropped the cached block.
        let tb = c.translate(&mem, 0x2000, &mut |_, _| {});
        assert!(tb.annotation.concrete_only);
        assert_eq!(tb.annotation.dead_writes, 0b11);
        assert_eq!(c.stats().translations, 2);
        // Cached hits keep the annotation.
        let tb = c.translate(&mem, 0x2000, &mut |_, _| {});
        assert!(tb.annotation.fork_free);
    }

    #[test]
    fn clear_drops_everything() {
        let mem = asm_mem(|a| {
            a.halt();
        });
        let mut c = BlockCache::new();
        c.translate(&mem, 0x2000, &mut |_, _| {});
        c.chain(0x2000, 0x2008, 1);
        let epoch = c.epoch_handle();
        let before = epoch.load(Ordering::Relaxed);
        c.clear();
        assert!(c.is_empty());
        assert!(!c.page_has_code(0x2000));
        assert!(!c.code_page_filter().page_has_code(0x2000));
        assert_eq!(c.chained_succ(0x2000), [None, None]);
        assert!(epoch.load(Ordering::Relaxed) > before, "clear publishes an epoch");
    }

    #[test]
    fn chain_records_and_dedups_links() {
        let mut c = BlockCache::new();
        assert!(c.chain(0x2000, 0x3000, 0));
        assert!(!c.chain(0x2000, 0x3000, 0), "idempotent re-link");
        assert!(c.chain(0x2000, 0x2020, 1));
        assert_eq!(c.chained_succ(0x2000), [Some(0x3000), Some(0x2020)]);
        assert_eq!(c.stats().chains_formed, 2);
        // Retargeting a slot replaces the link and keeps rev_links sane.
        assert!(c.chain(0x2000, 0x3008, 0));
        assert_eq!(c.chained_succ(0x2000), [Some(0x3008), Some(0x2020)]);
    }

    #[test]
    fn invalidation_severs_inbound_and_outbound_links() {
        let mem = asm_mem(|a| {
            a.movi(reg::R0, 1); // block A @0x2000
            a.jmp("b");
            a.label("b"); // block B @0x2010
            a.movi(reg::R1, 2);
            a.jmp("c");
            a.label("c"); // block C @0x2020
            a.halt();
        });
        let mut c = BlockCache::new();
        c.translate(&mem, 0x2000, &mut |_, _| {});
        c.translate(&mem, 0x2010, &mut |_, _| {});
        c.translate(&mem, 0x2020, &mut |_, _| {});
        c.chain(0x2000, 0x2010, 0); // A → B (inbound edge of B)
        c.chain(0x2010, 0x2020, 0); // B → C (outbound edge of B)
        let epoch = c.epoch_handle();
        let before = epoch.load(Ordering::Relaxed);

        // Overwrite B: both of its edges must be severed; A → and → C
        // survive as blocks but hold no link through B.
        c.invalidate_write(0x2010, 4);
        assert_eq!(c.stats().invalidations, 1);
        assert_eq!(c.stats().unlinks, 2, "inbound + outbound severed");
        assert_eq!(c.chained_succ(0x2000), [None, None]);
        assert_eq!(c.chained_succ(0x2010), [None, None]);
        assert!(epoch.load(Ordering::Relaxed) > before, "invalidation publishes an epoch");

        // A disjoint write severs nothing and publishes nothing.
        let quiet = epoch.load(Ordering::Relaxed);
        c.invalidate_write(0x2f00, 4);
        assert_eq!(epoch.load(Ordering::Relaxed), quiet, "no victims, no epoch");
    }

    #[test]
    fn page_spanning_write_severs_links_on_both_pages() {
        let mut mem = Memory::new();
        // One block at the end of page 2 (0x2ff8) and one at the start
        // of page 3 (0x3000), chained; a write spanning the boundary
        // must invalidate and unlink both.
        let mut a = Assembler::new(0x2ff8);
        a.halt(); // block X: single instr at 0x2ff8
        let p = a.finish();
        mem.load_image(p.base, &p.image);
        let mut a = Assembler::new(0x3000);
        a.halt(); // block Y at 0x3000
        let p = a.finish();
        mem.load_image(p.base, &p.image);

        let mut c = BlockCache::new();
        c.translate(&mem, 0x2ff8, &mut |_, _| {});
        c.translate(&mem, 0x3000, &mut |_, _| {});
        c.chain(0x2ff8, 0x3000, 1);
        assert!(c.code_page_filter().page_has_code(0x2fff));
        assert!(c.code_page_filter().page_has_code(0x3000));

        c.invalidate_write(0x2ffe, 4); // spans pages 2 and 3
        assert_eq!(c.len(), 0, "both blocks invalidated");
        assert_eq!(c.stats().invalidations, 2);
        assert_eq!(c.chained_succ(0x2ff8), [None, None]);
        assert!(c.stats().unlinks >= 1, "the X→Y link was severed");
    }

    #[test]
    fn stats_merge_sums_counters() {
        let mut a = DbtStats { hits: 3, l1_hits: 2, ..DbtStats::default() };
        let b = DbtStats {
            hits: 5,
            translations: 1,
            chains_formed: 4,
            chain_entries: 7,
            chain_exits: 2,
            unlinks: 1,
            translation_time: Duration::from_nanos(10),
            ..DbtStats::default()
        };
        a.merge(&b);
        assert_eq!(a.hits, 8);
        assert_eq!(a.l1_hits, 2);
        assert_eq!(a.translations, 1);
        assert_eq!(a.chains_formed, 4);
        assert_eq!(a.chain_entries, 7);
        assert_eq!(a.chain_exits, 2);
        assert_eq!(a.unlinks, 1);
        assert_eq!(a.translation_time, Duration::from_nanos(10));
    }
}
