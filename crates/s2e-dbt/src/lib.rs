//! Dynamic binary translation for the S2E platform.
//!
//! The original S2E modifies QEMU's DBT so that guest code is translated
//! once into host code (or LLVM, for symbolic execution) and cached. This
//! crate reproduces the structure: guest instructions are decoded into
//! *translation blocks* — straight-line runs ending at a control-flow
//! instruction — that are cached by start address and shared between all
//! execution states (translation is state-independent; only execution
//! differs per state).
//!
//! The split between translation and execution is what makes the paper's
//! `onInstrTranslation` / `onInstrExecution` event pair cheap (§4.2): a
//! block is translated once but executed millions of times, so analyzers
//! mark interesting instructions at translation time and pay per-execution
//! cost only for marked ones. The engine (`s2e-core`) fires those events;
//! this crate exposes the translation hook they build on.
//!
//! # Example
//!
//! ```
//! use s2e_dbt::BlockCache;
//! use s2e_vm::asm::Assembler;
//! use s2e_vm::isa::reg;
//! use s2e_vm::mem::Memory;
//!
//! let mut a = Assembler::new(0x2000);
//! a.movi(reg::R0, 1);
//! a.addi(reg::R0, reg::R0, 2);
//! a.jmp("next");
//! a.label("next");
//! a.halt();
//! let p = a.finish();
//!
//! let mut mem = Memory::new();
//! mem.load_image(p.base, &p.image);
//!
//! let mut cache = BlockCache::new();
//! let tb = cache.translate(&mem, 0x2000, &mut |_, _| {});
//! assert_eq!(tb.instrs.len(), 3); // ends at the jmp
//! // Second lookup hits the cache.
//! cache.translate(&mem, 0x2000, &mut |_, _| {});
//! assert_eq!(cache.stats().hits, 1);
//! ```

pub mod cfg;

use std::sync::Mutex;
use s2e_vm::isa::{Instr, INSTR_SIZE};
use s2e_vm::mem::Memory;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Maximum instructions per translation block.
pub const MAX_BLOCK_INSTRS: usize = 64;

/// Static pre-pass facts attached to a translation block at translation
/// time (see the `s2e-analysis` crate for the producer).
///
/// The default is fully conservative: every field claims nothing, so an
/// unannotated block behaves exactly as before the pre-pass existed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockAnnotation {
    /// No symbolic value can ever be *read* by an instruction in this
    /// block: the engine may skip per-instruction symbolic dispatch.
    pub concrete_only: bool,
    /// No pc in this block is eligible for forking under the engine's
    /// code ranges: symbolic branches may concretize without feasibility
    /// probes.
    pub fork_free: bool,
    /// Registers possibly read before being written on some path from
    /// the block entry (bit *r* set ⇒ register *r* is live-in).
    pub live_in: u16,
    /// Bit *i* set ⇒ the register written by instruction *i* is dead
    /// (never read before being overwritten on every outgoing path).
    pub dead_writes: u64,
}

impl Default for BlockAnnotation {
    fn default() -> BlockAnnotation {
        BlockAnnotation::conservative()
    }
}

impl BlockAnnotation {
    /// The no-information annotation (all optimizations disabled).
    pub fn conservative() -> BlockAnnotation {
        BlockAnnotation {
            concrete_only: false,
            fork_free: false,
            live_in: 0xffff,
            dead_writes: 0,
        }
    }
}

/// Producer of [`BlockAnnotation`]s, installed on a [`BlockCache`] via
/// [`BlockCache::set_annotator`]. Implemented by the static pre-pass;
/// the trait lives here so the cache does not depend on the analysis
/// crate.
pub trait BlockAnnotator: Send + Sync {
    /// Annotates the dynamic block starting at `start` covering `instrs`.
    /// Must be conservative for any code it has not analyzed.
    fn annotate(&self, start: u32, instrs: &[Instr]) -> BlockAnnotation;
}

/// A decoded straight-line block of guest code.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TranslationBlock {
    /// Guest address of the first instruction.
    pub start: u32,
    /// Decoded instructions, in order.
    pub instrs: Vec<Instr>,
    /// True if decoding stopped at an undecodable instruction; executing
    /// past the last decoded instruction must fault.
    pub ends_in_invalid: bool,
    /// Static pre-pass facts (conservative default when no annotator is
    /// installed).
    pub annotation: BlockAnnotation,
}

impl TranslationBlock {
    /// Guest address of the instruction at `index`.
    pub fn pc_of(&self, index: usize) -> u32 {
        self.start + (index as u32) * INSTR_SIZE
    }

    /// Byte length of the decoded portion.
    pub fn byte_len(&self) -> u32 {
        self.instrs.len() as u32 * INSTR_SIZE
    }

    /// Guest address one past the block (fall-through PC).
    pub fn end(&self) -> u32 {
        self.start + self.byte_len()
    }
}

/// Counters for the translator.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DbtStats {
    /// Blocks translated (cache misses).
    pub translations: u64,
    /// Cache hits.
    pub hits: u64,
    /// Instructions decoded in total.
    pub instrs_translated: u64,
    /// Blocks discarded by invalidation (self-modifying code).
    pub invalidations: u64,
    /// Wall-clock time spent decoding and annotating blocks (cache
    /// misses only; hits cost a map lookup, not measured).
    pub translation_time: Duration,
}

/// Cache of translation blocks, keyed by start address.
///
/// The cache is shared by all execution states: like in QEMU, translated
/// code is a pure function of guest memory contents, and stores into
/// translated pages invalidate the affected blocks
/// ([`BlockCache::invalidate_write`]).
#[derive(Default)]
pub struct BlockCache {
    blocks: HashMap<u32, Arc<TranslationBlock>>,
    /// Page index → block start addresses translated from that page.
    page_index: HashMap<u32, HashSet<u32>>,
    stats: DbtStats,
    /// Optional static pre-pass annotator applied at translation time.
    annotator: Option<Arc<dyn BlockAnnotator>>,
}

impl std::fmt::Debug for BlockCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlockCache")
            .field("blocks", &self.blocks.len())
            .field("stats", &self.stats)
            .field("annotated", &self.annotator.is_some())
            .finish()
    }
}

const PAGE_SHIFT: u32 = 12;

impl BlockCache {
    /// Creates an empty cache.
    pub fn new() -> BlockCache {
        BlockCache::default()
    }

    /// Translator statistics.
    pub fn stats(&self) -> DbtStats {
        self.stats
    }

    /// Number of cached blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// True if no blocks are cached.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Returns the block starting at `pc`, translating and caching it on a
    /// miss. `on_translate` is invoked once per newly-decoded instruction
    /// with its guest address — this is the hook the engine uses to raise
    /// `onInstrTranslation` events.
    pub fn translate(
        &mut self,
        mem: &Memory,
        pc: u32,
        on_translate: &mut dyn FnMut(u32, &Instr),
    ) -> Arc<TranslationBlock> {
        self.translate_timed(mem, pc, on_translate).0
    }

    /// [`BlockCache::translate`], also returning the time spent decoding
    /// — `Duration::ZERO` on a cache hit, so hits never read the clock.
    /// The observability layer attributes this to its translate phase
    /// without wrapping the (overwhelmingly hit) lookup in a timed span.
    pub fn translate_timed(
        &mut self,
        mem: &Memory,
        pc: u32,
        on_translate: &mut dyn FnMut(u32, &Instr),
    ) -> (Arc<TranslationBlock>, Duration) {
        if let Some(tb) = self.blocks.get(&pc) {
            self.stats.hits += 1;
            return (Arc::clone(tb), Duration::ZERO);
        }
        let started = Instant::now();
        let mut decoded = Self::decode_block(mem, pc, on_translate);
        if let Some(ann) = &self.annotator {
            decoded.annotation = ann.annotate(decoded.start, &decoded.instrs);
        }
        let decode_time = started.elapsed();
        self.stats.translation_time += decode_time;
        let tb = Arc::new(decoded);
        self.stats.translations += 1;
        self.stats.instrs_translated += tb.instrs.len() as u64;
        for page in (tb.start >> PAGE_SHIFT)..=(tb.end().max(tb.start) >> PAGE_SHIFT) {
            self.page_index.entry(page).or_default().insert(pc);
        }
        self.blocks.insert(pc, Arc::clone(&tb));
        (tb, decode_time)
    }

    fn decode_block(
        mem: &Memory,
        pc: u32,
        on_translate: &mut dyn FnMut(u32, &Instr),
    ) -> TranslationBlock {
        let mut instrs = Vec::new();
        let mut cur = pc;
        let mut ends_in_invalid = false;
        while instrs.len() < MAX_BLOCK_INSTRS {
            let raw = mem.read_bytes_concrete(cur, INSTR_SIZE);
            let bytes: [u8; 8] = raw.try_into().expect("8 bytes");
            match Instr::decode(&bytes) {
                None => {
                    ends_in_invalid = true;
                    break;
                }
                Some(i) => {
                    on_translate(cur, &i);
                    let term = i.op.is_terminator();
                    instrs.push(i);
                    cur += INSTR_SIZE;
                    if term {
                        break;
                    }
                }
            }
        }
        TranslationBlock {
            start: pc,
            instrs,
            ends_in_invalid,
            annotation: BlockAnnotation::conservative(),
        }
    }

    /// Installs (or removes) the static pre-pass annotator. Drops all
    /// cached blocks so stale annotations never mix with fresh ones.
    pub fn set_annotator(&mut self, annotator: Option<Arc<dyn BlockAnnotator>>) {
        self.annotator = annotator;
        self.clear();
    }

    /// Invalidates every block overlapping a guest store at `addr` of
    /// `len` bytes. Call on stores into pages containing translated code
    /// (self-modifying or JITed guests).
    pub fn invalidate_write(&mut self, addr: u32, len: u32) {
        let first = addr >> PAGE_SHIFT;
        let last = addr.saturating_add(len.saturating_sub(1)) >> PAGE_SHIFT;
        let mut victims: Vec<u32> = Vec::new();
        for page in first..=last {
            if let Some(starts) = self.page_index.get(&page) {
                for &s in starts {
                    if let Some(tb) = self.blocks.get(&s) {
                        let tb_end = tb.end();
                        if s < addr.saturating_add(len) && tb_end > addr {
                            victims.push(s);
                        }
                    }
                }
            }
        }
        for s in victims {
            self.blocks.remove(&s);
            self.stats.invalidations += 1;
        }
    }

    /// True if `addr` lies in a page containing translated code (cheap
    /// pre-check before [`BlockCache::invalidate_write`]).
    pub fn page_has_code(&self, addr: u32) -> bool {
        self.page_index
            .get(&(addr >> PAGE_SHIFT))
            .map(|s| !s.is_empty())
            .unwrap_or(false)
    }

    /// Drops all cached blocks.
    pub fn clear(&mut self) {
        self.blocks.clear();
        self.page_index.clear();
    }
}

/// A thread-safe shared block cache for the parallel explorer.
#[derive(Clone, Debug, Default)]
pub struct SharedBlockCache(Arc<Mutex<BlockCache>>);

impl SharedBlockCache {
    /// Creates an empty shared cache.
    pub fn new() -> SharedBlockCache {
        SharedBlockCache::default()
    }

    /// See [`BlockCache::translate`].
    pub fn translate(
        &self,
        mem: &Memory,
        pc: u32,
        on_translate: &mut dyn FnMut(u32, &Instr),
    ) -> Arc<TranslationBlock> {
        self.0.lock().unwrap().translate(mem, pc, on_translate)
    }

    /// See [`BlockCache::translate_timed`].
    pub fn translate_timed(
        &self,
        mem: &Memory,
        pc: u32,
        on_translate: &mut dyn FnMut(u32, &Instr),
    ) -> (Arc<TranslationBlock>, Duration) {
        self.0.lock().unwrap().translate_timed(mem, pc, on_translate)
    }

    /// See [`BlockCache::invalidate_write`].
    pub fn invalidate_write(&self, addr: u32, len: u32) {
        self.0.lock().unwrap().invalidate_write(addr, len)
    }

    /// See [`BlockCache::page_has_code`].
    pub fn page_has_code(&self, addr: u32) -> bool {
        self.0.lock().unwrap().page_has_code(addr)
    }

    /// See [`BlockCache::stats`].
    pub fn stats(&self) -> DbtStats {
        self.0.lock().unwrap().stats()
    }

    /// See [`BlockCache::clear`].
    pub fn clear(&self) {
        self.0.lock().unwrap().clear()
    }

    /// See [`BlockCache::set_annotator`]. Affects every worker sharing
    /// this cache.
    pub fn set_annotator(&self, annotator: Option<Arc<dyn BlockAnnotator>>) {
        self.0.lock().unwrap().set_annotator(annotator)
    }
}

/// The translation cache an engine executes against: private to one
/// engine, or shared between the parallel explorer's workers.
///
/// Translation is a pure function of guest memory, so workers exploring
/// the same image can share one warm cache; a stolen state never pays
/// for re-translating blocks its previous owner already decoded. The
/// engine holds this handle rather than a `BlockCache` directly so the
/// sequential fast path keeps its lock-free cache.
#[derive(Debug)]
pub enum CacheHandle {
    /// A lock-free cache owned by one engine.
    Private(BlockCache),
    /// A mutex-guarded cache shared across engines.
    Shared(SharedBlockCache),
}

impl Default for CacheHandle {
    fn default() -> CacheHandle {
        CacheHandle::Private(BlockCache::new())
    }
}

impl CacheHandle {
    /// A fresh private cache.
    pub fn private() -> CacheHandle {
        CacheHandle::default()
    }

    /// A handle onto an existing shared cache.
    pub fn shared(cache: SharedBlockCache) -> CacheHandle {
        CacheHandle::Shared(cache)
    }

    /// True when backed by a cross-engine shared cache.
    pub fn is_shared(&self) -> bool {
        matches!(self, CacheHandle::Shared(_))
    }

    /// See [`BlockCache::translate`].
    pub fn translate(
        &mut self,
        mem: &Memory,
        pc: u32,
        on_translate: &mut dyn FnMut(u32, &Instr),
    ) -> Arc<TranslationBlock> {
        match self {
            CacheHandle::Private(c) => c.translate(mem, pc, on_translate),
            CacheHandle::Shared(c) => c.translate(mem, pc, on_translate),
        }
    }

    /// See [`BlockCache::translate_timed`].
    pub fn translate_timed(
        &mut self,
        mem: &Memory,
        pc: u32,
        on_translate: &mut dyn FnMut(u32, &Instr),
    ) -> (Arc<TranslationBlock>, Duration) {
        match self {
            CacheHandle::Private(c) => c.translate_timed(mem, pc, on_translate),
            CacheHandle::Shared(c) => c.translate_timed(mem, pc, on_translate),
        }
    }

    /// See [`BlockCache::invalidate_write`].
    pub fn invalidate_write(&mut self, addr: u32, len: u32) {
        match self {
            CacheHandle::Private(c) => c.invalidate_write(addr, len),
            CacheHandle::Shared(c) => c.invalidate_write(addr, len),
        }
    }

    /// See [`BlockCache::page_has_code`].
    pub fn page_has_code(&self, addr: u32) -> bool {
        match self {
            CacheHandle::Private(c) => c.page_has_code(addr),
            CacheHandle::Shared(c) => c.page_has_code(addr),
        }
    }

    /// See [`BlockCache::stats`]. For a shared handle these counters
    /// aggregate every participating engine.
    pub fn stats(&self) -> DbtStats {
        match self {
            CacheHandle::Private(c) => c.stats(),
            CacheHandle::Shared(c) => c.stats(),
        }
    }

    /// See [`BlockCache::clear`].
    pub fn clear(&mut self) {
        match self {
            CacheHandle::Private(c) => c.clear(),
            CacheHandle::Shared(c) => c.clear(),
        }
    }

    /// See [`BlockCache::set_annotator`].
    pub fn set_annotator(&mut self, annotator: Option<Arc<dyn BlockAnnotator>>) {
        match self {
            CacheHandle::Private(c) => c.set_annotator(annotator),
            CacheHandle::Shared(c) => c.set_annotator(annotator),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2e_vm::asm::Assembler;
    use s2e_vm::isa::{reg, Opcode};

    fn asm_mem(build: impl FnOnce(&mut Assembler)) -> Memory {
        let mut a = Assembler::new(0x2000);
        build(&mut a);
        let p = a.finish();
        let mut mem = Memory::new();
        mem.load_image(p.base, &p.image);
        mem
    }

    #[test]
    fn block_ends_at_terminator() {
        let mem = asm_mem(|a| {
            a.movi(reg::R0, 1);
            a.movi(reg::R1, 2);
            a.beq(reg::R0, reg::R1, "target");
            a.movi(reg::R2, 3); // next block
            a.label("target");
            a.halt();
        });
        let mut c = BlockCache::new();
        let tb = c.translate(&mem, 0x2000, &mut |_, _| {});
        assert_eq!(tb.instrs.len(), 3);
        assert_eq!(tb.instrs[2].op, Opcode::Beq);
        assert_eq!(tb.end(), 0x2018);
        assert!(!tb.ends_in_invalid);
    }

    #[test]
    fn invalid_instruction_marks_block() {
        let mut mem = Memory::new();
        mem.load_image(0x2000, &[0xff; 8]);
        let mut c = BlockCache::new();
        let tb = c.translate(&mem, 0x2000, &mut |_, _| {});
        assert!(tb.instrs.is_empty());
        assert!(tb.ends_in_invalid);
    }

    #[test]
    fn block_caps_at_max_instrs() {
        let mem = asm_mem(|a| {
            for _ in 0..(MAX_BLOCK_INSTRS + 10) {
                a.nop();
            }
            a.halt();
        });
        let mut c = BlockCache::new();
        let tb = c.translate(&mem, 0x2000, &mut |_, _| {});
        assert_eq!(tb.instrs.len(), MAX_BLOCK_INSTRS);
        assert!(!tb.ends_in_invalid);
    }

    #[test]
    fn translation_fires_hook_once_per_instr() {
        let mem = asm_mem(|a| {
            a.movi(reg::R0, 1);
            a.halt();
        });
        let mut c = BlockCache::new();
        let mut seen = Vec::new();
        c.translate(&mem, 0x2000, &mut |pc, i| seen.push((pc, i.op)));
        assert_eq!(seen, vec![(0x2000, Opcode::MovI), (0x2008, Opcode::Halt)]);
        // Cache hit: hook must NOT fire again.
        c.translate(&mem, 0x2000, &mut |_, _| panic!("retranslated"));
    }

    #[test]
    fn stats_track_hits_and_misses() {
        let mem = asm_mem(|a| {
            a.halt();
        });
        let mut c = BlockCache::new();
        c.translate(&mem, 0x2000, &mut |_, _| {});
        c.translate(&mem, 0x2000, &mut |_, _| {});
        c.translate(&mem, 0x2000, &mut |_, _| {});
        let s = c.stats();
        assert_eq!(s.translations, 1);
        assert_eq!(s.hits, 2);
        assert_eq!(s.instrs_translated, 1);
    }

    #[test]
    fn invalidation_on_store() {
        let mem = asm_mem(|a| {
            a.movi(reg::R0, 1);
            a.halt();
        });
        let mut c = BlockCache::new();
        c.translate(&mem, 0x2000, &mut |_, _| {});
        assert!(c.page_has_code(0x2004));
        // A write inside the block invalidates it.
        c.invalidate_write(0x2004, 4);
        assert_eq!(c.len(), 0);
        assert_eq!(c.stats().invalidations, 1);
        // Retranslation is a miss again.
        c.translate(&mem, 0x2000, &mut |_, _| {});
        assert_eq!(c.stats().translations, 2);
    }

    #[test]
    fn invalidation_misses_disjoint_write() {
        let mem = asm_mem(|a| {
            a.movi(reg::R0, 1);
            a.halt();
        });
        let mut c = BlockCache::new();
        c.translate(&mem, 0x2000, &mut |_, _| {});
        c.invalidate_write(0x2100, 4); // same page, outside the block
        assert_eq!(c.len(), 1);
        assert_eq!(c.stats().invalidations, 0);
    }

    #[test]
    fn pc_of_indexes_instructions() {
        let mem = asm_mem(|a| {
            a.nop();
            a.nop();
            a.halt();
        });
        let mut c = BlockCache::new();
        let tb = c.translate(&mem, 0x2000, &mut |_, _| {});
        assert_eq!(tb.pc_of(0), 0x2000);
        assert_eq!(tb.pc_of(2), 0x2010);
    }

    #[test]
    fn shared_cache_is_cloneable_and_shared() {
        let mem = asm_mem(|a| {
            a.halt();
        });
        let c1 = SharedBlockCache::new();
        let c2 = c1.clone();
        c1.translate(&mem, 0x2000, &mut |_, _| {});
        c2.translate(&mem, 0x2000, &mut |_, _| {});
        assert_eq!(c1.stats().translations, 1);
        assert_eq!(c1.stats().hits, 1);
    }

    #[test]
    fn cache_handle_dispatches_both_backends() {
        let mem = asm_mem(|a| {
            a.halt();
        });
        let shared = SharedBlockCache::new();
        let mut h1 = CacheHandle::shared(shared.clone());
        let mut h2 = CacheHandle::shared(shared);
        assert!(h1.is_shared());
        h1.translate(&mem, 0x2000, &mut |_, _| {});
        // The second handle sees the first handle's translation.
        h2.translate(&mem, 0x2000, &mut |_, _| panic!("retranslated"));
        assert_eq!(h2.stats().hits, 1);
        assert!(h2.page_has_code(0x2000));

        let mut p = CacheHandle::private();
        assert!(!p.is_shared());
        p.translate(&mem, 0x2000, &mut |_, _| {});
        assert_eq!(p.stats().translations, 1);
        p.clear();
        assert!(!p.page_has_code(0x2000));
    }

    struct MarkAll;
    impl BlockAnnotator for MarkAll {
        fn annotate(&self, _start: u32, instrs: &[Instr]) -> BlockAnnotation {
            BlockAnnotation {
                concrete_only: true,
                fork_free: true,
                live_in: 0,
                dead_writes: (1 << instrs.len()) - 1,
            }
        }
    }

    #[test]
    fn annotator_applies_at_translation_time() {
        let mem = asm_mem(|a| {
            a.movi(reg::R0, 1);
            a.halt();
        });
        let mut c = BlockCache::new();
        let tb = c.translate(&mem, 0x2000, &mut |_, _| {});
        assert_eq!(tb.annotation, BlockAnnotation::conservative());
        c.set_annotator(Some(Arc::new(MarkAll)));
        // Installing the annotator dropped the cached block.
        let tb = c.translate(&mem, 0x2000, &mut |_, _| {});
        assert!(tb.annotation.concrete_only);
        assert_eq!(tb.annotation.dead_writes, 0b11);
        assert_eq!(c.stats().translations, 2);
        // Cached hits keep the annotation.
        let tb = c.translate(&mem, 0x2000, &mut |_, _| {});
        assert!(tb.annotation.fork_free);
    }

    #[test]
    fn clear_drops_everything() {
        let mem = asm_mem(|a| {
            a.halt();
        });
        let mut c = BlockCache::new();
        c.translate(&mem, 0x2000, &mut |_, _| {});
        c.clear();
        assert!(c.is_empty());
        assert!(!c.page_has_code(0x2000));
    }
}
