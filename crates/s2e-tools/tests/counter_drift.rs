//! Counter-drift tripwire: every field of the engine/solver/translator
//! stat structs must surface in all three report renderings — the
//! `RunReport` JSON, the Chrome trace, and the `trace-report` text.
//!
//! Field names are recovered by reflection over the structs' `Debug`
//! output, so adding a counter to `EngineStats`, `SolverStats`,
//! `DbtStats`, or `SharedCacheStats` without threading it through
//! `build_run_report` (and thus through every renderer) fails this test
//! immediately instead of silently dropping the number from the
//! operator-facing reports. Duration-typed fields are expected under
//! their `<name>_ns` spelling.

use s2e_core::{build_run_report, runreport_twins, EngineStats, ParallelReport};
use s2e_dbt::DbtStats;
use s2e_obs::chrome_trace_report;
use s2e_solver::{SharedCacheStats, SolverStats};
use s2e_tools::trace_report;
use std::collections::HashSet;
use std::time::Duration;

/// Extracts `(field, value_token)` pairs — at every nesting level —
/// from a struct's `Debug` rendering.
fn debug_fields(s: &str) -> Vec<(String, String)> {
    let bytes = s.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while let Some(j) = s[i..].find(": ").map(|off| i + off) {
        let mut k = j;
        while k > 0 && (bytes[k - 1].is_ascii_alphanumeric() || bytes[k - 1] == b'_') {
            k -= 1;
        }
        let name = &s[k..j];
        let rest = &s[j + 2..];
        let end = rest
            .find(|c: char| matches!(c, ',' | ' ' | '}' | ']'))
            .unwrap_or(rest.len());
        if name.chars().next().is_some_and(|c| c.is_ascii_lowercase()) {
            out.push((name.to_string(), rest[..end].to_string()));
        }
        i = j + 2;
    }
    out
}

/// A `Debug` value token like `0ns`, `1.5ms`, or `2s` marks a
/// `Duration` field; those are reported in nanoseconds under `_ns`.
fn is_duration(value: &str) -> bool {
    value.chars().next().is_some_and(|c| c.is_ascii_digit())
        && value.chars().last().is_some_and(|c| c.is_ascii_alphabetic())
}

/// The report keys implied by one stats struct's `Debug` output.
fn expected_keys(debug: &str) -> Vec<String> {
    let mut seen = HashSet::new();
    debug_fields(debug)
        .into_iter()
        .map(|(name, value)| {
            if is_duration(&value) && !name.ends_with("_ns") {
                format!("{name}_ns")
            } else {
                name
            }
        })
        .filter(|k| seen.insert(k.clone()))
        .collect()
}

fn empty_report() -> ParallelReport {
    ParallelReport {
        workers: Vec::new(),
        stats: EngineStats::default(),
        bugs: Vec::new(),
        covered_blocks: HashSet::new(),
        total_paths: 0,
        steals: 0,
        reclaims: 0,
        exports: 0,
        queue_leftover: 0,
        evicted_leftover: 0,
        queue_bytes_peak: 0,
        shared_cache: SharedCacheStats::default(),
        dbt: DbtStats::default(),
        solver: SolverStats::default(),
        wall_time: Duration::from_millis(1),
    }
}

#[test]
fn every_stats_field_reaches_all_three_renderings() {
    let run_report = build_run_report(&empty_report(), None);
    let json = run_report.render();
    let chrome = chrome_trace_report(&run_report);
    let text = trace_report::render(&run_report, 16);

    let sources = [
        format!("{:?}", EngineStats::default()),
        format!("{:?}", SolverStats::default()),
        format!("{:?}", DbtStats::default()),
        format!("{:?}", SharedCacheStats::default()),
    ];
    for debug in &sources {
        let keys = expected_keys(debug);
        assert!(!keys.is_empty(), "reflection found no fields in {debug}");
        for key in keys {
            assert!(json.contains(&key), "RunReport JSON dropped counter {key}");
            assert!(chrome.contains(&key), "Chrome trace dropped counter {key}");
            assert!(text.contains(&key), "trace-report text dropped counter {key}");
        }
    }
}

#[test]
fn every_registry_twin_resolves_in_the_report() {
    let run_report = build_run_report(&empty_report(), None);
    for (counter, section, key) in runreport_twins() {
        let found = run_report
            .section(section)
            .and_then(|s| s.get(key))
            .is_some();
        assert!(
            found,
            "registry counter {} claims twin {section}.{key}, absent from the RunReport",
            counter.name()
        );
    }
}
