//! PROFS — the multi-path in-vivo performance profiler (paper §6.1.3).
//!
//! "To our knowledge, such a tool did not exist previously, and this use
//! case is the first in the literature to employ symbolic execution for
//! performance analysis." PROFS attaches the `PerformanceProfile`
//! analyzer (instructions + configurable cache/TLB/page-fault hierarchy,
//! forked per path) to an exploration and reports *performance
//! envelopes*: the distribution of costs across entire families of paths,
//! plus paths with no apparent upper bound.

use s2e_cache::HierarchyConfig;
use s2e_core::analyzers::{PathKiller, PathProfile, PerformanceProfile};
use s2e_core::selectors::make_cstring_symbolic;
use s2e_core::{ConsistencyModel, Engine, EngineConfig, TerminationReason};
use s2e_expr::Assignment;
use s2e_guests::kernel::{boot, standard_annotations};
use s2e_guests::layout::INPUT_BUF;
use s2e_vm::machine::Machine;
use std::ops::Range;

/// PROFS configuration.
#[derive(Clone, Debug)]
pub struct ProfsConfig {
    /// Consistency model ("performance analysis can be done under local
    /// consistency or any stricter model").
    pub model: ConsistencyModel,
    /// Memory-hierarchy geometry.
    pub hierarchy: HierarchyConfig,
    /// Restrict profiling to this PC range (`None` = in-vivo: include the
    /// kernel's effect on the unit's caches).
    pub profile_range: Option<Range<u32>>,
    /// Engine step budget.
    pub max_steps: u64,
    /// Live-state cap.
    pub max_states: usize,
    /// Per-path instruction budget; paths exceeding it are reported as
    /// "no upper bound found".
    pub path_fuel: u64,
}

impl Default for ProfsConfig {
    fn default() -> ProfsConfig {
        ProfsConfig {
            model: ConsistencyModel::Lc,
            hierarchy: HierarchyConfig::paper(),
            profile_range: None,
            max_steps: 200_000,
            max_states: 256,
            path_fuel: 200_000,
        }
    }
}

/// The profiling report: one [`PathProfile`] per explored path.
#[derive(Debug)]
pub struct ProfsReport {
    /// Every completed path's profile.
    pub paths: Vec<PathProfile>,
    /// Exit status per path (parallel to `paths`).
    pub reasons: Vec<TerminationReason>,
    /// Total engine steps used.
    pub steps: u64,
}

impl ProfsReport {
    /// Profiles of paths that ran to completion (halted or killed by the
    /// guest, not by budget exhaustion).
    pub fn completed(&self) -> impl Iterator<Item = &PathProfile> {
        self.paths.iter().filter(|p| {
            matches!(
                p.reason,
                TerminationReason::Halted(_) | TerminationReason::Killed(_)
            )
        })
    }

    /// Paths that hit the fuel budget — candidates for unbounded
    /// execution (the ping RR loop).
    pub fn unbounded_suspects(&self) -> impl Iterator<Item = &PathProfile> {
        self.paths
            .iter()
            .filter(|p| p.reason == TerminationReason::FuelExhausted)
    }

    /// (min, max) instructions over completed paths — the performance
    /// envelope.
    pub fn instruction_envelope(&self) -> Option<(u64, u64)> {
        let mut it = self.completed().map(|p| p.instructions);
        let first = it.next()?;
        Some(it.fold((first, first), |(lo, hi), v| (lo.min(v), hi.max(v))))
    }

    /// (min, max) total cache misses over completed paths.
    pub fn cache_miss_envelope(&self) -> Option<(u64, u64)> {
        let mut it = self.completed().map(|p| p.hierarchy.total_cache_misses());
        let first = it.next()?;
        Some(it.fold((first, first), |(lo, hi), v| (lo.min(v), hi.max(v))))
    }

    /// (min, max) page faults over completed paths.
    pub fn page_fault_envelope(&self) -> Option<(u64, u64)> {
        let mut it = self.completed().map(|p| p.hierarchy.page_faults);
        let first = it.next()?;
        Some(it.fold((first, first), |(lo, hi), v| (lo.min(v), hi.max(v))))
    }
}

/// Runs PROFS over a prepared machine. `inject` runs once before
/// exploration to introduce symbolic inputs.
pub fn profile(
    machine: Machine,
    config: &ProfsConfig,
    inject: impl FnOnce(&mut Engine),
) -> ProfsReport {
    let mut ec = EngineConfig::with_model(config.model);
    ec.max_states = config.max_states;
    ec.max_instrs_per_path = config.path_fuel;
    if config.model == ConsistencyModel::Lc {
        ec.annotations = standard_annotations();
    }
    let mut engine = Engine::new(machine, ec);
    let (perf, results) =
        PerformanceProfile::with_hierarchy(config.hierarchy.clone(), config.profile_range.clone());
    engine.add_plugin(Box::new(perf));
    inject(&mut engine);

    let summary = engine.run(config.max_steps);
    // Flush still-live paths (budget exhausted mid-path).
    let live: Vec<_> = engine.live_states().map(|s| s.id).collect();
    for id in live {
        engine.kill_state(id, TerminationReason::FuelExhausted);
    }

    let paths = results.lock().unwrap().clone();
    let reasons = paths.iter().map(|p| p.reason.clone()).collect();
    ProfsReport {
        paths,
        reasons,
        steps: summary.steps,
    }
}

/// §6.1.3 experiment 1: the URL parser's per-path instruction counts for
/// all URLs of length `len`. Returns per-path (slash count, instructions,
/// cache misses).
pub fn profile_url_parser(len: u32, config: &ProfsConfig) -> Vec<(u32, u64, u64)> {
    let (mut machine, _k) = boot();
    machine.load(&s2e_guests::url_parser::program());
    let report = profile(machine, config, |engine| {
        let id = engine.sole_state().unwrap();
        let b = engine.builder_arc();
        make_cstring_symbolic(engine.state_mut(id).unwrap(), &b, INPUT_BUF, len, "url");
    });
    report
        .paths
        .iter()
        .filter_map(|p| match p.reason {
            // The parser reports its slash count through KillPath.
            TerminationReason::Killed(slashes) => Some((
                slashes,
                p.instructions,
                p.hierarchy.total_cache_misses(),
            )),
            _ => None,
        })
        .collect()
}

/// §6.1.3 experiment 2: the ping performance envelope. Makes `reply_len`
/// bytes of the ICMP reply symbolic.
pub fn profile_ping(patched: bool, reply_len: u32, config: &ProfsConfig) -> ProfsReport {
    let (mut machine, _k) = boot();
    machine.load(&s2e_guests::ping::program(patched));
    profile(machine, config, |engine| {
        let id = engine.sole_state().unwrap();
        let b = engine.builder_arc();
        s2e_core::selectors::make_mem_symbolic(
            engine.state_mut(id).unwrap(),
            &b,
            INPUT_BUF,
            reply_len,
            "reply",
        );
    })
}

/// §6.1.3 experiment 4: best-case-input search. Explores with
/// lower-bound pruning (paths worse than the best completed path are
/// killed by the `PathKiller` selector) and returns the minimum
/// instruction count plus concrete inputs achieving it.
pub fn best_case_search(
    machine: Machine,
    config: &ProfsConfig,
    inject: impl FnOnce(&mut Engine),
) -> Option<(u64, Assignment)> {
    let mut ec = EngineConfig::with_model(config.model);
    ec.max_states = config.max_states;
    ec.max_instrs_per_path = config.path_fuel;
    if config.model == ConsistencyModel::Lc {
        ec.annotations = standard_annotations();
    }
    let mut engine = Engine::new(machine, ec);
    engine.set_retain_terminated(true);
    let (killer, best) =
        PathKiller::new(u32::MAX).with_lower_bound(|s| Some(s.instrs_retired));
    engine.add_plugin(Box::new(killer));
    inject(&mut engine);
    engine.run(config.max_steps);

    let best_cost = (*best.lock().unwrap())?;
    // Find a completed state achieving the bound and solve its
    // constraints for inputs.
    let states: Vec<_> = engine.terminated_states().to_vec();
    for st in &states {
        if matches!(st.status, Some(TerminationReason::Halted(_)))
            && st.instrs_retired == best_cost
        {
            if let s2e_solver::SatResult::Sat(model) = engine.solver_mut().check(&st.constraints)
            {
                return Some((best_cost, model));
            }
        }
    }
    Some((best_cost, Assignment::new()))
}

/// §6.1.3 experiment 3: web-server page-fault distribution over all
/// requests of length `len`.
pub fn profile_webserver(len: u32, config: &ProfsConfig) -> ProfsReport {
    let (mut machine, _k) = boot();
    machine.load(&s2e_guests::webserver::program());
    profile(machine, config, |engine| {
        let id = engine.sole_state().unwrap();
        let b = engine.builder_arc();
        make_cstring_symbolic(engine.state_mut(id).unwrap(), &b, INPUT_BUF, len, "req");
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn quick_config() -> ProfsConfig {
        ProfsConfig {
            max_steps: 120_000,
            max_states: 128,
            path_fuel: 20_000,
            ..ProfsConfig::default()
        }
    }

    #[test]
    fn url_parser_ten_instructions_per_slash() {
        let rows = profile_url_parser(4, &quick_config());
        assert!(!rows.is_empty());
        // Group by slash count; within a fixed URL length, instruction
        // count must be an affine function: base + 10 * slashes.
        let mut by_slash: BTreeMap<u32, u64> = BTreeMap::new();
        for (slashes, instrs, _) in &rows {
            let e = by_slash.entry(*slashes).or_insert(*instrs);
            *e = (*e).max(*instrs);
        }
        assert!(by_slash.len() >= 3, "need several slash counts: {by_slash:?}");
        let deltas: Vec<i64> = by_slash
            .values()
            .zip(by_slash.values().skip(1))
            .map(|(a, b)| *b as i64 - *a as i64)
            .collect();
        for d in &deltas {
            assert_eq!(
                *d,
                s2e_guests::url_parser::EXTRA_INSTRS_PER_SLASH as i64,
                "deltas {deltas:?} (profile {by_slash:?})"
            );
        }
    }

    #[test]
    fn url_parser_cache_misses_nearly_constant() {
        let rows = profile_url_parser(4, &quick_config());
        let misses: Vec<u64> = rows.iter().map(|(_, _, m)| *m).collect();
        let (lo, hi) = (
            *misses.iter().min().unwrap(),
            *misses.iter().max().unwrap(),
        );
        // The paper reports 15,984 ± 20: a tight band, not identical.
        assert!(hi - lo <= 40, "cache-miss band too wide: {lo}..{hi}");
    }

    #[test]
    fn buggy_ping_has_unbounded_path() {
        let mut config = quick_config();
        config.path_fuel = 6_000;
        config.max_steps = 400_000;
        let report = profile_ping(false, 4, &config);
        assert!(
            report.unbounded_suspects().count() > 0,
            "the RR loop must show up as a fuel-exhausted path"
        );
    }

    #[test]
    fn patched_ping_has_bounded_envelope() {
        let mut config = quick_config();
        config.path_fuel = 6_000;
        config.max_steps = 400_000;
        let report = profile_ping(true, 4, &config);
        assert_eq!(report.unbounded_suspects().count(), 0);
        let (lo, hi) = report.instruction_envelope().expect("completed paths");
        assert!(lo > 0 && hi < 6_000, "envelope {lo}..{hi}");
        assert!(hi > lo, "multi-path envelope expected");
    }

    #[test]
    fn webserver_page_faults_constant_in_crypto() {
        let report = profile_webserver(6, &quick_config());
        let (lo, hi) = report.page_fault_envelope().expect("completed paths");
        // All request-handling paths touch the same pages.
        assert!(hi - lo <= 1, "page-fault envelope {lo}..{hi} not flat");
    }

    #[test]
    fn best_case_search_finds_minimum() {
        let (mut machine, _k) = boot();
        machine.load(&s2e_guests::url_parser::program());
        let mut config = quick_config();
        config.max_steps = 200_000;
        let (best, _inputs) = best_case_search(machine, &config, |engine| {
            let id = engine.sole_state().unwrap();
            let b = engine.builder_arc();
            make_cstring_symbolic(engine.state_mut(id).unwrap(), &b, INPUT_BUF, 3, "url");
        })
        .expect("a best path");
        // The cheapest 3-char URL has zero slashes; compare against a
        // concrete zero-slash run.
        let rows = profile_url_parser(3, &config);
        let min_zero_slash = rows
            .iter()
            .filter(|(s, _, _)| *s == 0)
            .map(|(_, i, _)| *i)
            .min()
            .unwrap();
        assert!(best <= min_zero_slash, "{best} > {min_zero_slash}");
    }
}
