//! Terminal rendering of the live telemetry stream — the `live-top`
//! view (DESIGN.md §16).
//!
//! Consumes either an `s2e-live-v1` JSONL line (as streamed to
//! `results/run_live.jsonl` by the sampler) or a bare registry snapshot
//! (as served by the `/report` endpoint) and renders the one screen an
//! operator watches during a run: headline rates, liveness gauges, the
//! biggest counter movers of the last tick, and p50/p90/p99 for every
//! latency histogram. All functions are pure text-in/text-out; the
//! `live-top` binary adds only file tailing and endpoint polling.

use s2e_obs::json::{parse, Json};
use std::fmt::Write as _;

/// Renders the last line of an `s2e-live-v1` JSONL stream.
pub fn render_latest(jsonl_text: &str) -> Result<String, String> {
    let line = jsonl_text
        .lines()
        .rev()
        .find(|l| !l.trim().is_empty())
        .ok_or_else(|| "empty live stream".to_string())?;
    let json = parse(line).map_err(|e| format!("bad live line: {e}"))?;
    render_line(&json)
}

/// Renders one parsed `s2e-live-v1` line.
pub fn render_line(line: &Json) -> Result<String, String> {
    let schema = line.get("schema").and_then(Json::as_str);
    if schema != Some(s2e_obs::LIVE_SCHEMA) {
        return Err(format!(
            "unsupported live schema {:?} (want {})",
            schema,
            s2e_obs::LIVE_SCHEMA
        ));
    }
    let mut out = String::new();
    let seq = line.get("seq").and_then(Json::as_u64).unwrap_or(0);
    let wall = line.get("wall_ns").and_then(Json::as_u64).unwrap_or(0);
    let workers = line.get("workers").and_then(Json::as_u64).unwrap_or(0);
    let done = line.get("final").and_then(Json::as_bool).unwrap_or(false);
    writeln!(
        out,
        "s2e live-top — seq {seq}, wall {}, workers {workers}{}",
        fmt_ns(wall),
        if done { " [final]" } else { "" }
    )
    .unwrap();

    if let Some(derived) = line.get("derived") {
        let f = |key: &str| derived.get(key).and_then(Json::as_f64).unwrap_or(0.0);
        writeln!(
            out,
            "rates: paths/s {:.1}, forks/s {:.1}, blocks/s {:.0}, queries/s {:.1}, \
             solver share {:.1}%",
            f("paths_per_s"),
            f("forks_per_s"),
            f("blocks_per_s"),
            f("queries_per_s"),
            f("solver_share") * 100.0,
        )
        .unwrap();
        writeln!(
            out,
            "now: live states {}, queue depth {}, covered blocks <= {}",
            f("live_states") as u64,
            f("queue_depth") as u64,
            f("covered_blocks_ub") as u64,
        )
        .unwrap();
    }

    // Biggest counter movers of the tick, largest delta first.
    if let Some(deltas) = line
        .get("delta")
        .and_then(|d| d.get("counters"))
        .and_then(Json::as_obj)
    {
        let mut movers: Vec<(&str, u64)> = deltas
            .iter()
            .filter_map(|(k, v)| v.as_u64().map(|n| (k.as_str(), n)))
            .collect();
        movers.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        if !movers.is_empty() {
            writeln!(out, "top movers this tick:").unwrap();
            for (name, delta) in movers.iter().take(MOVERS_SHOWN) {
                let total = line
                    .get("counters")
                    .and_then(|c| c.get(name))
                    .and_then(Json::as_u64)
                    .unwrap_or(0);
                writeln!(out, "  {name:<40} +{delta:<12} total {total}").unwrap();
            }
        }
    }

    if let Some(hists) = line.get("hists") {
        out.push_str(&render_hists(hists));
    }
    Ok(out)
}

/// Renders a bare `/report` snapshot (counters/gauges/hists, no
/// seq/delta envelope).
pub fn render_report(text: &str) -> Result<String, String> {
    let json = parse(text).map_err(|e| format!("bad report: {e}"))?;
    let mut out = String::new();
    writeln!(out, "s2e live-top — /report snapshot").unwrap();
    if let Some(gauges) = json.get("gauges").and_then(Json::as_obj) {
        let g = |key: &str| {
            gauges
                .iter()
                .find(|(k, _)| k == key)
                .and_then(|(_, v)| v.as_u64())
                .unwrap_or(0)
        };
        writeln!(
            out,
            "now: live states {}, queue depth {}, queue bytes {}, hungry workers {}",
            g("live_states"),
            g("queue_depth"),
            g("queue_bytes"),
            g("hungry_workers"),
        )
        .unwrap();
    }
    if let Some(counters) = json.get("counters").and_then(Json::as_obj) {
        let mut biggest: Vec<(&str, u64)> = counters
            .iter()
            .filter_map(|(k, v)| v.as_u64().map(|n| (k.as_str(), n)))
            .filter(|&(_, n)| n > 0)
            .collect();
        biggest.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        if !biggest.is_empty() {
            writeln!(out, "largest counters:").unwrap();
            for (name, value) in biggest.iter().take(MOVERS_SHOWN) {
                writeln!(out, "  {name:<40} {value}").unwrap();
            }
        }
    }
    if let Some(hists) = json.get("hists") {
        out.push_str(&render_hists(hists));
    }
    Ok(out)
}

/// Rows shown in the top-movers / largest-counters tables.
const MOVERS_SHOWN: usize = 10;

fn render_hists(hists: &Json) -> String {
    let mut out = String::new();
    let Some(entries) = hists.as_obj() else {
        return out;
    };
    let populated: Vec<(&str, &Json)> = entries
        .iter()
        .filter(|(_, v)| v.get("count").and_then(Json::as_u64).unwrap_or(0) > 0)
        .map(|(k, v)| (k.as_str(), v))
        .collect();
    if populated.is_empty() {
        return out;
    }
    writeln!(out, "latency p50 / p90 / p99:").unwrap();
    for (name, h) in populated {
        let q = |key: &str| h.get(key).and_then(Json::as_u64).unwrap_or(0);
        writeln!(
            out,
            "  {:<28} {:>10} {:>10} {:>10}   n {}",
            name,
            fmt_ns(q("p50")),
            fmt_ns(q("p90")),
            fmt_ns(q("p99")),
            q("count"),
        )
        .unwrap();
    }
    out
}

/// Nanoseconds as a human-scaled duration: ns, µs, ms, or s.
fn fmt_ns(ns: u64) -> String {
    match ns {
        0..=999 => format!("{ns} ns"),
        1_000..=999_999 => format!("{:.1} µs", ns as f64 / 1e3),
        1_000_000..=999_999_999 => format!("{:.2} ms", ns as f64 / 1e6),
        _ => format!("{:.3} s", ns as f64 / 1e9),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2e_obs::{snapshot_line, Counter, Hist, MetricsRegistry};

    fn canned_line(is_final: bool) -> Json {
        let reg = MetricsRegistry::new(2);
        let t = reg.handle(0);
        t.set_counter(Counter::EngineBlocksExecuted, 5_000);
        t.set_counter(Counter::EngineForks, 40);
        t.set_counter(Counter::SolverQueries, 17);
        t.observe(Hist::HistSolveFeasibility, 12_000);
        t.observe(Hist::HistSolveFeasibility, 90_000);
        let snap = reg.snapshot();
        snapshot_line(3, 2_000_000_000, 2, &snap, None, is_final)
    }

    #[test]
    fn renders_headline_movers_and_hists() {
        let text = render_line(&canned_line(false)).unwrap();
        assert!(text.contains("seq 3"), "{text}");
        assert!(text.contains("workers 2"), "{text}");
        assert!(!text.contains("[final]"), "{text}");
        // Largest delta first.
        let blocks = text.find("engine.blocks_executed").unwrap();
        let forks = text.find("engine.forks").unwrap();
        assert!(blocks < forks, "{text}");
        assert!(text.contains("latency p50 / p90 / p99:"), "{text}");
        assert!(text.contains("latency.solve_feasibility"), "{text}");
    }

    #[test]
    fn final_line_is_marked() {
        let text = render_line(&canned_line(true)).unwrap();
        assert!(text.contains("[final]"), "{text}");
    }

    #[test]
    fn latest_takes_the_last_nonempty_line() {
        let first = canned_line(false).render_compact();
        let last = canned_line(true).render_compact();
        let stream = format!("{first}\n{last}\n\n");
        let text = render_latest(&stream).unwrap();
        assert!(text.contains("[final]"), "{text}");
        assert!(render_latest("  \n").is_err());
        assert!(render_latest("{}").is_err());
    }

    #[test]
    fn report_snapshot_renders_without_envelope() {
        let reg = MetricsRegistry::new(1);
        reg.handle(0).set_counter(Counter::SolverQueries, 9);
        reg.handle(0).observe(Hist::HistPark, 1_500);
        let text = render_report(&reg.snapshot().to_json().render()).unwrap();
        assert!(text.contains("/report snapshot"), "{text}");
        assert!(text.contains("solver.queries"), "{text}");
        assert!(text.contains("latency.park"), "{text}");
        assert!(render_report("not json").is_err());
    }
}
