//! Static dead-code report over the bundled drivers.
//!
//! Offline consumer of the `s2e-analysis` pre-pass: for each driver it
//! runs the three dataflow passes over the driver's own CFG (rooted at
//! every entry point plus the IRQ handler) and tabulates what the
//! analysis proved — statically-dead branch edges, unreachable blocks,
//! dead register writes, and the concrete-only fraction. REV+ uses the
//! same CFG for code synthesis, so anything reported here is code REV+
//! would emit that no execution can reach; DDT+ reads the concrete-only
//! fraction as an upper bound on how much of a driver its symbolic
//! exploration can skip per-instruction checks for.

use s2e_analysis::range::ValueRange;
use s2e_analysis::{analyze, analyze_refined, interproc, AnalysisConfig, RegSet, TaintSeed};
use s2e_guests::drivers::{all_drivers, build_exerciser, Driver, ENTRY_ORDER};
use s2e_guests::kernel::boot;
use s2e_vm::isa::reg;

/// What the pre-pass proved about one driver.
#[derive(Clone, Debug)]
pub struct DriverDeadCode {
    /// Driver name.
    pub name: &'static str,
    /// Statically-reachable basic blocks in the driver CFG.
    pub blocks: usize,
    /// Block starts proven unreachable once dead edges are pruned.
    pub unreachable: Vec<u32>,
    /// Statically-dead CFG edges `(from, to)`.
    pub dead_edges: Vec<(u32, u32)>,
    /// Register writes proven dead (never observed on any path).
    pub dead_writes: usize,
    /// Blocks where no symbolic value can ever flow in.
    pub concrete_only: usize,
    /// Total worklist pops across the three passes.
    pub iterations: usize,
    /// Per-pass iteration bound for this CFG.
    pub bound: usize,
}

impl DriverDeadCode {
    /// Fraction of blocks the engine may run on the lean dispatch path.
    pub fn concrete_fraction(&self) -> f64 {
        if self.blocks == 0 {
            0.0
        } else {
            self.concrete_only as f64 / self.blocks as f64
        }
    }
}

/// The analysis environment convention for driver-only CFGs: syscalls
/// into the kernel return through `r0` and may scribble the kernel's
/// scratch registers and `kr`, and the registry/syscall results they
/// deliver are not statically known.
pub fn driver_analysis_config() -> AnalysisConfig {
    AnalysisConfig {
        env_clobbers: RegSet::single(reg::R0)
            .with(reg::R10)
            .with(reg::R11)
            .with(reg::R12)
            .with(reg::KR),
        env_taints_memory: true,
    }
}

/// Analyzes one driver. With `symbolic_args` the entry points are seeded
/// the way the DDT+/LC harness calls them — argument registers `r0`/`r1`
/// symbolic and guest memory tainted — so the concrete-only set reflects
/// what survives relaxed-consistency exploration. Without it only
/// hardware input (port reads, which the taint pass seeds on its own) is
/// symbolic, matching the SC configurations.
pub fn analyze_driver(driver: &Driver, symbolic_args: bool) -> DriverDeadCode {
    let seed = if symbolic_args {
        TaintSeed {
            regs: RegSet::single(reg::R0).with(reg::R1),
            mem: true,
        }
    } else {
        TaintSeed::clean()
    };
    // The IRQ handler preempts arbitrary code, so any register may hold
    // symbolic data at its entry (the handler's register saves *observe*
    // them): its root is always fully tainted.
    let roots: Vec<(u32, TaintSeed)> = ENTRY_ORDER
        .iter()
        .map(|e| (driver.entry(e), seed))
        .chain([(driver.entry("irq"), TaintSeed::all())])
        .collect();
    let a = analyze(&driver.program, &roots, &driver_analysis_config())
        .expect("driver CFG analysis exceeded its iteration bound");
    DriverDeadCode {
        name: driver.name,
        blocks: a.graph.cfg.block_count(),
        unreachable: a.unreachable().iter().copied().collect(),
        dead_edges: a.dead_edges().iter().copied().collect(),
        dead_writes: a
            .liveness
            .dead_writes
            .values()
            .map(|bits| bits.count_ones() as usize)
            .sum(),
        concrete_only: a.taint.concrete_only.len(),
        iterations: a.iterations(),
        bound: a.bound(),
    }
}

/// The full report: every bundled driver under the DDT+/LC seeding.
pub fn report() -> Vec<DriverDeadCode> {
    all_drivers().iter().map(|d| analyze_driver(d, true)).collect()
}

/// What the interprocedural value-range refinement (DESIGN.md §15)
/// proved about one driver's whole loaded image (kernel + driver +
/// exerciser).
#[derive(Clone, Debug)]
pub struct DriverRefinement {
    /// Driver name.
    pub name: &'static str,
    /// Indirect sites proven into concrete successor sets, as
    /// `(site pc, resolved target count)`.
    pub resolved_sites: Vec<(u32, usize)>,
    /// Blocks still ending in an unresolved indirect transfer.
    pub unresolved_blocks: usize,
    /// `UNKNOWN_SINK` edges in the merged CFG before/after refinement.
    pub unknown_before: usize,
    pub unknown_after: usize,
    /// Refinement rounds to the resolved-site fixpoint.
    pub rounds: usize,
    /// Blocks whose entry state carries at least one finite range fact.
    pub blocks_with_facts: usize,
    /// Finite register facts at block entries, by shape.
    pub set_facts: usize,
    pub interval_facts: usize,
    /// Blocks whose entry state hit the widening budget.
    pub widened_blocks: usize,
}

/// Runs the refinement over one driver's full image with the same roots
/// and seeds the DDT+/LC engine harness uses: the kernel entered from
/// arbitrary unit context, driver entries under the harness calling
/// convention, the IRQ handler fully tainted, the exerciser clean.
pub fn refine_driver(driver: &Driver) -> DriverRefinement {
    let (_, kernel) = boot();
    let exerciser = build_exerciser(driver, true);
    let args = TaintSeed { regs: RegSet::single(reg::R0).with(reg::R1), mem: true };
    let roots: Vec<(u32, TaintSeed)> = [(kernel.entry, TaintSeed::all())]
        .into_iter()
        .chain(ENTRY_ORDER.iter().map(|e| (driver.entry(e), args)))
        .chain([(driver.entry("irq"), TaintSeed::all())])
        .chain([(exerciser.entry, TaintSeed::clean())])
        .collect();
    let ra = analyze_refined(
        &[&kernel, &driver.program, &exerciser],
        &roots,
        &driver_analysis_config(),
    )
    .expect("refined image analysis exceeded its iteration bound");
    let r = &ra.prepass.refinement;
    let (mut blocks_with_facts, mut set_facts, mut interval_facts) = (0, 0, 0);
    for regs in r.ranges.entry.values() {
        let mut any = false;
        for vr in regs {
            match vr {
                ValueRange::Set(_) => {
                    set_facts += 1;
                    any = true;
                }
                ValueRange::Interval { .. } => {
                    interval_facts += 1;
                    any = true;
                }
                ValueRange::Top => {}
            }
        }
        blocks_with_facts += any as usize;
    }
    DriverRefinement {
        name: driver.name,
        resolved_sites: r
            .resolved_sites
            .iter()
            .map(|(&site, targets)| (site, targets.len()))
            .collect(),
        unresolved_blocks: interproc::unresolved_blocks(&r.graph),
        unknown_before: r.unknown_edges_before,
        unknown_after: r.unknown_edges_after,
        rounds: r.rounds,
        blocks_with_facts,
        set_facts,
        interval_facts,
        widened_blocks: r.ranges.widened_blocks,
    }
}

/// The refinement report: every bundled driver's image.
pub fn refinement_report() -> Vec<DriverRefinement> {
    all_drivers().iter().map(refine_driver).collect()
}

/// Renders the resolved-indirect and range-fact tables.
pub fn render_refinement(rows: &[DriverRefinement]) -> String {
    let mut out = String::from(
        "driver      resolved  targets  unresolved  unknown-edges  rounds\n",
    );
    for r in rows {
        let targets: usize = r.resolved_sites.iter().map(|&(_, n)| n).sum();
        out.push_str(&format!(
            "{:<11} {:>8}  {:>7}  {:>10}  {:>6} -> {:>3}  {:>6}\n",
            r.name,
            r.resolved_sites.len(),
            targets,
            r.unresolved_blocks,
            r.unknown_before,
            r.unknown_after,
            r.rounds,
        ));
    }
    out.push_str("\ndriver      fact-blocks  set-facts  interval-facts  widened\n");
    for r in rows {
        out.push_str(&format!(
            "{:<11} {:>11}  {:>9}  {:>14}  {:>7}\n",
            r.name, r.blocks_with_facts, r.set_facts, r.interval_facts, r.widened_blocks,
        ));
    }
    out
}

/// Renders rows as a fixed-width text table.
pub fn render(rows: &[DriverDeadCode]) -> String {
    let mut out = String::from(
        "driver      blocks  unreach  dead-edges  dead-writes  concrete-only\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<11} {:>6}  {:>7}  {:>10}  {:>11}  {:>6} ({:>5.1}%)\n",
            r.name,
            r.blocks,
            r.unreachable.len(),
            r.dead_edges.len(),
            r.dead_writes,
            r.concrete_only,
            100.0 * r.concrete_fraction(),
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_covers_all_drivers_within_bounds() {
        let rows = report();
        assert_eq!(rows.len(), all_drivers().len());
        for r in &rows {
            assert!(r.blocks > 10, "{}: CFG too small", r.name);
            assert!(
                r.iterations <= 3 * r.bound,
                "{}: passes blew the iteration bound",
                r.name
            );
            assert!(r.concrete_fraction() <= 1.0);
            // Unreachable blocks are a subset of the CFG.
            assert!(r.unreachable.len() <= r.blocks);
        }
    }

    #[test]
    fn symbolic_args_never_increase_concrete_only() {
        // LC seeding taints strictly more than the SC configurations, so
        // the concrete-only set can only shrink.
        for d in all_drivers() {
            let sc = analyze_driver(&d, false);
            let lc = analyze_driver(&d, true);
            assert!(
                lc.concrete_only <= sc.concrete_only,
                "{}: LC {} > SC {}",
                d.name,
                lc.concrete_only,
                sc.concrete_only
            );
        }
    }

    #[test]
    fn render_lists_every_driver() {
        let rows = report();
        let table = render(&rows);
        for r in &rows {
            assert!(table.contains(r.name), "{} missing from table", r.name);
        }
    }

    #[test]
    fn refinement_resolves_sites_on_every_image() {
        let rows = refinement_report();
        assert_eq!(rows.len(), all_drivers().len());
        for r in &rows {
            assert!(
                !r.resolved_sites.is_empty(),
                "{}: refinement resolved no indirect site",
                r.name
            );
            assert!(
                r.unknown_after < r.unknown_before,
                "{}: unknown edges did not drop ({} -> {})",
                r.name,
                r.unknown_before,
                r.unknown_after
            );
            for &(site, n) in &r.resolved_sites {
                assert!(n > 0, "{}: site {site:#x} resolved to nothing", r.name);
            }
            assert!(
                r.blocks_with_facts > 0,
                "{}: range analysis produced no finite fact",
                r.name
            );
        }
        let table = render_refinement(&rows);
        for r in &rows {
            assert!(table.contains(r.name), "{} missing from table", r.name);
        }
    }
}
