//! DDT+ — automated testing of device drivers (paper §6.1.1).
//!
//! Reimplements DDT as a platform composition: the driver's code segment
//! is the multi-path region, the kernel runs per the chosen consistency
//! model, and the stock bug analyzers watch every path. Under LC, the
//! kernel interface annotations inject contract-constrained symbolic
//! values and the registry becomes symbolic; under SC-SE, "the only
//! symbolic input comes from hardware".

use s2e_core::analyzers::{BugCheck, Coverage, DataRaceDetector, MemoryChecker, PathKiller};
use s2e_core::selectors::{constrain_range, make_config_symbolic};
use s2e_core::{
    BugKind, BugReport, CodeRanges, ConsistencyModel, Engine, EngineConfig, TerminationReason,
};
use s2e_guests::drivers::{build_exerciser, Driver};
use s2e_guests::kernel::{boot, heap_config, standard_annotations};
use s2e_guests::layout::{cfg_keys, driver_data_range};
use std::collections::BTreeSet;
use std::time::{Duration, Instant};

/// Priority-based path selection for DDT+ (the paper's §4.1 selector
/// family: "S2E includes basic ones, such as Random, DepthFirst, and
/// BreadthFirst, as well as ... MaxCoverage").
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SearchKind {
    /// Depth-first (dives into loops; good at deep iteration-count bugs).
    DepthFirst,
    /// Breadth-first.
    BreadthFirst,
    /// Uniform random (seeded, deterministic).
    Random(u64),
    /// Coverage-guided.
    MaxCoverage,
}

impl SearchKind {
    fn build(self) -> Box<dyn s2e_core::search::SearchStrategy> {
        use s2e_core::search::{Bfs, Dfs, MaxCoverage, RandomSearch};
        match self {
            SearchKind::DepthFirst => Box::new(Dfs::new()),
            SearchKind::BreadthFirst => Box::new(Bfs::new()),
            SearchKind::Random(seed) => Box::new(RandomSearch::new(seed)),
            SearchKind::MaxCoverage => Box::new(MaxCoverage::new()),
        }
    }
}

/// DDT+ configuration.
#[derive(Clone, Debug)]
pub struct DdtConfig {
    /// Consistency model for the exploration (the paper compares SC-SE
    /// against LC).
    pub model: ConsistencyModel,
    /// Engine step (block) budget.
    pub max_steps: u64,
    /// Live-state cap.
    pub max_states: usize,
    /// If no new driver block is covered for this many steps and more
    /// than one path is live, all paths but one are killed (the §6.3
    /// stagnation policy standing in for the 60-second timer).
    pub stagnation_steps: u64,
    /// Path-selection strategy.
    pub search: SearchKind,
}

impl Default for DdtConfig {
    fn default() -> DdtConfig {
        DdtConfig {
            model: ConsistencyModel::Lc,
            max_steps: 60_000,
            max_states: 64,
            stagnation_steps: 4_000,
            search: SearchKind::DepthFirst,
        }
    }
}

/// One distinct bug found.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct DistinctBug {
    /// Classification.
    pub kind: BugKind,
    /// Program counter of the defect.
    pub pc: u32,
}

/// DDT+ run report.
#[derive(Debug)]
pub struct DdtReport {
    /// Driver under test.
    pub driver: &'static str,
    /// Model used.
    pub model: ConsistencyModel,
    /// Distinct bugs (deduplicated by kind and PC).
    pub distinct_bugs: Vec<DistinctBug>,
    /// All raw reports (with reproducing inputs).
    pub raw_bugs: Vec<BugReport>,
    /// Completed paths.
    pub paths: usize,
    /// Driver blocks covered.
    pub covered_blocks: usize,
    /// Statically reachable driver blocks.
    pub total_blocks: usize,
    /// Wall-clock duration of the exploration.
    pub duration: Duration,
    /// Engine steps executed.
    pub steps: u64,
}

impl DdtReport {
    /// Coverage fraction.
    pub fn coverage(&self) -> f64 {
        if self.total_blocks == 0 {
            0.0
        } else {
            self.covered_blocks as f64 / self.total_blocks as f64
        }
    }
}

/// Builds the DDT+ engine for a driver without running it (exposed for
/// the experiment harnesses that need custom run loops).
pub fn make_engine(driver: &Driver, config: &DdtConfig) -> Engine {
    let (mut machine, _kernel) = boot();
    machine.load_aux(&driver.program);
    let symbolic_args = config.model == ConsistencyModel::Lc;
    let harness = build_exerciser(driver, symbolic_args);
    machine.load(&harness);

    let mut ec = EngineConfig::with_model(config.model);
    ec.code_ranges = CodeRanges::all().include(driver.code_range.clone());
    ec.max_states = config.max_states;
    if config.model == ConsistencyModel::Lc {
        ec.annotations = standard_annotations();
    }

    let mut engine = Engine::new(machine, ec);
    engine.set_strategy(config.search.build());
    engine.add_plugin(Box::new(MemoryChecker::new(heap_config())));
    engine.add_plugin(Box::new(BugCheck::new()));
    engine.add_plugin(Box::new(DataRaceDetector::new(driver_data_range())));
    engine.add_plugin(Box::new(PathKiller::new(2_000)));

    // Data-based selection per model.
    match config.model {
        ConsistencyModel::Lc | ConsistencyModel::RcOc | ConsistencyModel::RcCc => {
            let id = engine.sole_state().unwrap();
            let b = engine.builder_arc();
            let state = engine.state_mut(id).unwrap();
            let card = make_config_symbolic(state, &b, cfg_keys::CARD_TYPE, "CardType");
            constrain_range(state, &b, &card, 0, 7);
            let flags = make_config_symbolic(state, &b, cfg_keys::FLAGS, "Flags");
            constrain_range(state, &b, &flags, 0, 3);
            let media = make_config_symbolic(state, &b, cfg_keys::MEDIA, "Media");
            constrain_range(state, &b, &media, 0, 1000);
        }
        _ => {}
    }
    engine.apply_model_hardware_policy();
    engine
}

/// Runs DDT+ on a driver.
pub fn test_driver(driver: &Driver, config: &DdtConfig) -> DdtReport {
    let started = Instant::now();
    let mut engine = make_engine(driver, config);
    let (coverage, cov_data) = Coverage::new(Some(driver.code_range.clone()));
    engine.add_plugin(Box::new(coverage));

    let mut steps = 0u64;
    let mut last_new_coverage_step = 0u64;
    let mut last_covered = 0usize;
    while steps < config.max_steps {
        if engine.step().is_none() {
            break;
        }
        steps += 1;
        let covered = cov_data.lock().unwrap().covered();
        if covered > last_covered {
            last_covered = covered;
            last_new_coverage_step = steps;
        } else if steps - last_new_coverage_step > config.stagnation_steps
            && engine.live_count() > 1
        {
            // §6.3: kill all paths but one so exploration can proceed to
            // the next entry point instead of churning in a subtree.
            let keep = engine
                .live_states()
                .max_by_key(|s| s.instrs_retired)
                .map(|s| s.id)
                .expect("live states exist");
            engine.kill_all_except(keep);
            last_new_coverage_step = steps;
        }
    }

    let mut distinct: BTreeSet<DistinctBug> = BTreeSet::new();
    for b in engine.bugs() {
        distinct.insert(DistinctBug {
            kind: b.kind,
            pc: b.pc,
        });
    }
    let paths = engine
        .terminated()
        .iter()
        .filter(|(_, r)| !matches!(r, TerminationReason::Killed(_)))
        .count();

    DdtReport {
        driver: driver.name,
        model: config.model,
        distinct_bugs: distinct.into_iter().collect(),
        raw_bugs: engine.bugs().to_vec(),
        paths: paths.max(engine.terminated().len()),
        covered_blocks: last_covered,
        total_blocks: driver.total_blocks(),
        duration: started.elapsed(),
        steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2e_guests::drivers::{pcnet, rtl8029, rtl8139};

    #[test]
    fn sc_se_finds_hardware_bugs_in_pcnet() {
        let d = pcnet::build();
        let report = test_driver(
            &d,
            &DdtConfig {
                model: ConsistencyModel::ScSe,
                max_steps: 30_000,
                ..DdtConfig::default()
            },
        );
        // B1: the diagnostic-path null write behind an impossible status
        // bit, reachable only with symbolic hardware.
        assert!(
            report
                .distinct_bugs
                .iter()
                .any(|b| b.kind == BugKind::NullDereference),
            "expected the B1 null write, got {:?}",
            report.distinct_bugs
        );
    }

    #[test]
    fn lc_finds_annotation_dependent_bugs_in_pcnet() {
        let d = pcnet::build();
        let report = test_driver(
            &d,
            &DdtConfig {
                model: ConsistencyModel::Lc,
                max_steps: 80_000,
                ..DdtConfig::default()
            },
        );
        let kinds: Vec<BugKind> = report.distinct_bugs.iter().map(|b| b.kind).collect();
        // B2: alloc-failure null deref (needs the alloc annotation).
        assert!(
            kinds.contains(&BugKind::NullDereference),
            "B2 missing: {kinds:?}"
        );
        // B3: the leak behind the symbolic registry flag.
        assert!(kinds.contains(&BugKind::MemoryLeak), "B3 missing: {kinds:?}");
        // B4: the unlocked rx_count race.
        assert!(kinds.contains(&BugKind::DataRace), "B4 missing: {kinds:?}");
    }

    #[test]
    fn sc_se_finds_rx_overflow_in_rtl8029() {
        let d = rtl8029::build();
        let report = test_driver(
            &d,
            &DdtConfig {
                model: ConsistencyModel::ScSe,
                max_steps: 60_000,
                max_states: 128,
                ..DdtConfig::default()
            },
        );
        assert!(
            report
                .distinct_bugs
                .iter()
                .any(|b| b.kind == BugKind::HeapOutOfBounds),
            "expected the B5 overflow, got {:?}",
            report.distinct_bugs
        );
    }

    #[test]
    fn lc_finds_double_free_and_panic_in_rtl8029() {
        let d = rtl8029::build();
        let report = test_driver(
            &d,
            &DdtConfig {
                model: ConsistencyModel::Lc,
                max_steps: 80_000,
                ..DdtConfig::default()
            },
        );
        let kinds: Vec<BugKind> = report.distinct_bugs.iter().map(|b| b.kind).collect();
        assert!(kinds.contains(&BugKind::DoubleFree), "B6 missing: {kinds:?}");
        assert!(kinds.contains(&BugKind::KernelPanic), "B7 missing: {kinds:?}");
    }

    #[test]
    fn clean_driver_reports_no_bugs() {
        let d = rtl8139::build();
        for model in [ConsistencyModel::ScSe, ConsistencyModel::Lc] {
            let report = test_driver(
                &d,
                &DdtConfig {
                    model,
                    max_steps: 40_000,
                    ..DdtConfig::default()
                },
            );
            assert!(
                report.distinct_bugs.is_empty(),
                "{model}: {:?}",
                report.distinct_bugs
            );
            assert!(report.covered_blocks > 0);
        }
    }

    #[test]
    fn bug_reports_carry_reproducing_inputs() {
        let d = pcnet::build();
        let report = test_driver(
            &d,
            &DdtConfig {
                model: ConsistencyModel::Lc,
                max_steps: 80_000,
                ..DdtConfig::default()
            },
        );
        assert!(!report.raw_bugs.is_empty());
        assert!(
            report.raw_bugs.iter().any(|b| b.inputs.is_some()),
            "at least one bug should come with concrete inputs"
        );
    }
}

/// Renders a bug report as a textual crash dump — the analog of the
/// WinDbg-readable dumps DDT+ emits (§6.1.1): classification, faulting
/// PC, register block (symbolic registers shown as `<sym>`), path depth,
/// and the concrete inputs that reproduce the crash.
pub fn render_crash_dump(bug: &BugReport) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(out, "*** BUG CHECK: {:?} ***", bug.kind);
    let _ = writeln!(out, "{}", bug.description);
    let _ = writeln!(out, "state: {}   pc: {:#010x}", bug.state, bug.pc);
    let s = &bug.snapshot;
    let _ = writeln!(
        out,
        "path: {} instructions retired, env depth {}, {} constraints",
        s.instrs_retired, s.env_depth, s.constraints
    );
    let _ = writeln!(out, "registers:");
    for row in 0..4 {
        let mut line = String::new();
        for col in 0..4 {
            let r = row * 4 + col;
            let val = match s.regs[r] {
                Some(v) => format!("{v:#010x}"),
                None => "     <sym>".to_string(),
            };
            let _ = write!(line, "  r{r:<2}={val}");
        }
        let _ = writeln!(out, "{line}");
    }
    match &bug.inputs {
        Some(model) if !model.is_empty() => {
            let _ = writeln!(out, "reproducing inputs ({} symbols):", model.len());
            let mut pairs: Vec<_> = model.iter().collect();
            pairs.sort_by_key(|(id, _)| *id);
            for (id, v) in pairs.into_iter().take(16) {
                let _ = writeln!(out, "  {id} = {v:#x}");
            }
        }
        _ => {
            let _ = writeln!(out, "reproducing inputs: none required (concrete path)");
        }
    }
    out
}

#[cfg(test)]
mod dump_tests {
    use super::*;
    use s2e_core::ConsistencyModel;
    use s2e_guests::drivers::pcnet;

    #[test]
    fn crash_dumps_render_for_every_bug() {
        let d = pcnet::build();
        let report = test_driver(
            &d,
            &DdtConfig {
                model: ConsistencyModel::ScSe,
                max_steps: 30_000,
                ..DdtConfig::default()
            },
        );
        assert!(!report.raw_bugs.is_empty());
        for bug in &report.raw_bugs {
            let dump = render_crash_dump(bug);
            assert!(dump.contains("BUG CHECK"));
            assert!(dump.contains("registers:"));
            assert!(dump.contains("r0 ="), "{dump}");
        }
    }
}
