//! The three analysis tools the paper builds on S2E (§6.1).
//!
//! Each tool is a thin composition of platform plugins plus a little glue
//! — which was the paper's headline productivity claim (Table 4: tools
//! that took 47–57 KLOC from scratch take a few hundred lines on the
//! platform):
//!
//! - [`ddt`] — **DDT+**: automated testing of (closed-source) drivers.
//!   Combines `CodeSelector`-style range restriction, the
//!   `MemoryChecker` / `DataRaceDetector` / `BugCheck` analyzers, LC
//!   interface annotations, and the §6.3 stagnation-kill exploration
//!   policy.
//! - [`rev`] — **REV+**: reverse engineering of driver binaries. Traces
//!   driver execution under RC-OC (coverage over consistency), then an
//!   offline pass rebuilds the CFG and synthesizes equivalent driver
//!   code. Includes the single-path "RevNIC" baseline for Table 5.
//! - [`profs`] — **PROFS**: the multi-path in-vivo performance profiler
//!   (the first use of symbolic execution for performance analysis).
//!   Produces per-path instruction/cache/TLB/page-fault envelopes.

//! - [`deadcode`] — the static pre-pass report: dead edges, unreachable
//!   blocks, dead writes, and concrete-only fractions per driver,
//!   computed offline by `s2e-analysis` without executing anything.
//! - [`trace_report`] — plain-text renderer for the unified run report
//!   produced by the observability layer (DESIGN.md §11).

pub mod ddt;
pub mod deadcode;
pub mod live_top;
pub mod profs;
pub mod rev;
pub mod trace_report;
