//! REV+ — reverse engineering of driver binaries (paper §6.1.2).
//!
//! Two halves, like RevNIC:
//!
//! 1. **Online tracing** — the driver runs under RC-OC ("the goal of the
//!    tracer is to see each basic block execute, in order to extract its
//!    logic — full path consistency is not necessary"), with symbolic
//!    hardware, registry, and arguments. The `ExecutionTracer` logs
//!    executed blocks, memory accesses, and port I/O per path.
//! 2. **Offline analysis** — the traces are merged into a recovered CFG,
//!    checked against the binary, and *synthesized* into driver source
//!    implementing the same hardware protocol.
//!
//! The single-path "RevNIC baseline" used for Table 5 runs the same
//! harness concretely under randomized configurations.

use s2e_prng::SplitMix64;
use s2e_core::analyzers::{Coverage, ExecutionTracer, PathKiller, TraceEntry};
use s2e_core::selectors::{constrain_range, make_config_symbolic};
use s2e_core::{CodeRanges, ConsistencyModel, Engine, EngineConfig};
use s2e_dbt::cfg::StaticCfg;
use s2e_guests::drivers::{build_exerciser, Driver};
use s2e_guests::kernel::boot;
use s2e_guests::layout::cfg_keys;
use s2e_vm::isa::{Instr, Opcode, INSTR_SIZE};
use s2e_vm::value::Value;
use std::collections::{BTreeMap, BTreeSet};

/// REV+ configuration.
#[derive(Clone, Debug)]
pub struct RevConfig {
    /// Engine step budget (the "1 hour" budget of Table 5, scaled).
    pub max_steps: u64,
    /// Live-state cap.
    pub max_states: usize,
    /// Stagnation kill window (steps without new coverage).
    pub stagnation_steps: u64,
}

impl Default for RevConfig {
    fn default() -> RevConfig {
        RevConfig {
            max_steps: 60_000,
            max_states: 64,
            stagnation_steps: 4_000,
        }
    }
}

/// Port-protocol operation recovered from traces.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PortOp {
    /// Port accessed.
    pub port: u16,
    /// True for writes.
    pub is_write: bool,
}

/// The CFG recovered from traces.
#[derive(Clone, Debug, Default)]
pub struct RecoveredCfg {
    /// Executed block start addresses.
    pub blocks: BTreeSet<u32>,
    /// Observed control-flow edges between blocks.
    pub edges: BTreeSet<(u32, u32)>,
    /// Hardware protocol: port operations by instruction PC.
    pub port_ops: BTreeMap<u32, PortOp>,
}

/// Result of the online tracing phase.
#[derive(Debug)]
pub struct TraceReport {
    /// Recovered CFG.
    pub recovered: RecoveredCfg,
    /// (seconds, cumulative covered blocks) samples — Fig. 6's series.
    pub coverage_timeline: Vec<(f64, usize)>,
    /// Covered driver blocks.
    pub covered: usize,
    /// Statically reachable blocks (the denominator).
    pub total_blocks: usize,
    /// Paths traced.
    pub paths: usize,
    /// Steps executed.
    pub steps: u64,
}

impl TraceReport {
    /// Basic-block coverage fraction.
    pub fn coverage(&self) -> f64 {
        if self.total_blocks == 0 {
            0.0
        } else {
            self.covered as f64 / self.total_blocks as f64
        }
    }
}

/// Runs the online tracing phase under RC-OC.
pub fn trace_driver(driver: &Driver, config: &RevConfig) -> TraceReport {
    let (mut machine, _kernel) = boot();
    machine.load_aux(&driver.program);
    machine.load(&build_exerciser(driver, true));

    let mut ec = EngineConfig::with_model(ConsistencyModel::RcOc);
    ec.code_ranges = CodeRanges::all().include(driver.code_range.clone());
    ec.max_states = config.max_states;
    // Keep the allocator's pointer identity: RC-OC's overapproximation is
    // aimed at hardware and value-typed results (paper §3.1.3).
    ec.rc_oc_excluded_syscalls = vec![s2e_guests::kernel::sys::ALLOC];
    let mut engine = Engine::new(machine, ec);
    // Coverage is the goal: use the MaxCoverage selector (§4.1) so shallow
    // unexplored siblings are not starved by deep loop paths.
    engine.set_strategy(Box::new(s2e_core::search::MaxCoverage::new()));

    let (tracer, store) = ExecutionTracer::new(Some(driver.code_range.clone()), 100_000);
    engine.add_plugin(Box::new(tracer));
    let (coverage, cov_data) = Coverage::new(Some(driver.code_range.clone()));
    engine.add_plugin(Box::new(coverage));
    engine.add_plugin(Box::new(PathKiller::new(2_000)));

    {
        let id = engine.sole_state().unwrap();
        let b = engine.builder_arc();
        let state = engine.state_mut(id).unwrap();
        let card = make_config_symbolic(state, &b, cfg_keys::CARD_TYPE, "CardType");
        constrain_range(state, &b, &card, 0, 7);
        let flags = make_config_symbolic(state, &b, cfg_keys::FLAGS, "Flags");
        constrain_range(state, &b, &flags, 0, 3);
    }
    engine.apply_model_hardware_policy();

    let mut steps = 0u64;
    let mut last_new = 0u64;
    let mut last_count = 0usize;
    while steps < config.max_steps {
        if engine.step().is_none() {
            break;
        }
        steps += 1;
        let covered = cov_data.lock().unwrap().covered();
        if covered > last_count {
            last_count = covered;
            last_new = steps;
        } else if steps - last_new > config.stagnation_steps && engine.live_count() > 1 {
            let keep = engine
                .live_states()
                .max_by_key(|s| s.instrs_retired)
                .map(|s| s.id)
                .expect("live states");
            engine.kill_all_except(keep);
            last_new = steps;
        }
    }
    // Flush still-live paths into the trace store.
    let live: Vec<_> = engine.live_states().map(|s| s.id).collect();
    for id in live {
        engine.kill_state(id, s2e_core::TerminationReason::Killed(0));
    }

    let traces = store.lock().unwrap();
    let recovered = reconstruct(traces.iter().map(|(_, _, t)| t.as_slice()));
    let timeline = {
        let d = cov_data.lock().unwrap();
        let mut times: Vec<f64> = d.first_seen.values().copied().collect();
        times.sort_by(f64::total_cmp);
        times
            .iter()
            .enumerate()
            .map(|(i, &t)| (t, i + 1))
            .collect()
    };
    TraceReport {
        covered: last_count.max(recovered.blocks.len()),
        recovered,
        coverage_timeline: timeline,
        total_blocks: driver.total_blocks(),
        paths: traces.len(),
        steps,
    }
}

/// Offline phase: merges path traces into one CFG.
pub fn reconstruct<'a>(traces: impl Iterator<Item = &'a [TraceEntry]>) -> RecoveredCfg {
    let mut out = RecoveredCfg::default();
    for trace in traces {
        let mut prev_block: Option<u32> = None;
        for entry in trace {
            match entry {
                TraceEntry::Block { pc } => {
                    out.blocks.insert(*pc);
                    if let Some(p) = prev_block {
                        out.edges.insert((p, *pc));
                    }
                    prev_block = Some(*pc);
                }
                TraceEntry::Port {
                    pc,
                    port,
                    is_write,
                    ..
                } => {
                    out.port_ops.insert(
                        *pc,
                        PortOp {
                            port: *port,
                            is_write: *is_write,
                        },
                    );
                }
                _ => {}
            }
        }
    }
    out
}

/// Renders recovered driver logic as compilable-looking C (the "new
/// device driver code that implements the exact same hardware protocol").
///
/// Each recovered block becomes a function; instructions are decoded from
/// the binary image and rendered as statements, with the traced port
/// protocol annotated.
pub fn synthesize(driver: &Driver, recovered: &RecoveredCfg) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "/* {} — synthesized by REV+ from {} traced blocks */\n",
        driver.name,
        recovered.blocks.len()
    ));
    out.push_str("#include \"nic_runtime.h\"\n\n");
    for &start in &recovered.blocks {
        out.push_str(&format!(
            "static void block_{start:08x}(struct nic *nic) {{\n"
        ));
        let mut pc = start;
        loop {
            let off = (pc.wrapping_sub(driver.program.base)) as usize;
            if off + 8 > driver.program.image.len() {
                break;
            }
            let bytes: [u8; 8] = driver.program.image[off..off + 8].try_into().unwrap();
            let Some(i) = Instr::decode(&bytes) else { break };
            out.push_str(&format!("    {};\n", render_instr(&i, pc, recovered)));
            if i.op.is_terminator() {
                break;
            }
            pc += INSTR_SIZE;
        }
        out.push_str("}\n\n");
    }
    out.push_str("/* recovered control flow */\n");
    for (from, to) in &recovered.edges {
        out.push_str(&format!("/* block_{from:08x} -> block_{to:08x} */\n"));
    }
    out
}

fn render_instr(i: &Instr, pc: u32, recovered: &RecoveredCfg) -> String {
    let r = |x: u8| format!("r{x}");
    match i.op {
        Opcode::MovI => format!("{} = {:#x}", r(i.rd), i.imm),
        Opcode::Mov => format!("{} = {}", r(i.rd), r(i.rs1)),
        Opcode::Add => format!("{} = {} + {}", r(i.rd), r(i.rs1), r(i.rs2)),
        Opcode::Sub => format!("{} = {} - {}", r(i.rd), r(i.rs1), r(i.rs2)),
        Opcode::AddI => format!("{} = {} + {:#x}", r(i.rd), r(i.rs1), i.imm),
        Opcode::SubI => format!("{} = {} - {:#x}", r(i.rd), r(i.rs1), i.imm),
        Opcode::AndI => format!("{} = {} & {:#x}", r(i.rd), r(i.rs1), i.imm),
        Opcode::MulI => format!("{} = {} * {:#x}", r(i.rd), r(i.rs1), i.imm),
        Opcode::ShlI => format!("{} = {} << {}", r(i.rd), r(i.rs1), i.imm),
        Opcode::Ld8 => format!("{} = *(u8*)({} + {:#x})", r(i.rd), r(i.rs1), i.imm),
        Opcode::Ld16 => format!("{} = *(u16*)({} + {:#x})", r(i.rd), r(i.rs1), i.imm),
        Opcode::Ld32 => format!("{} = *(u32*)({} + {:#x})", r(i.rd), r(i.rs1), i.imm),
        Opcode::St8 => format!("*(u8*)({} + {:#x}) = {}", r(i.rs1), i.imm, r(i.rs2)),
        Opcode::St16 => format!("*(u16*)({} + {:#x}) = {}", r(i.rs1), i.imm, r(i.rs2)),
        Opcode::St32 => format!("*(u32*)({} + {:#x}) = {}", r(i.rs1), i.imm, r(i.rs2)),
        Opcode::In => match recovered.port_ops.get(&pc) {
            Some(op) => format!("{} = nic_port_read(nic, {:#x})", r(i.rd), op.port),
            None => format!("{} = nic_port_read(nic, {})", r(i.rd), r(i.rs1)),
        },
        Opcode::Out => match recovered.port_ops.get(&pc) {
            Some(op) => format!("nic_port_write(nic, {:#x}, {})", op.port, r(i.rs2)),
            None => format!("nic_port_write(nic, {}, {})", r(i.rs1), r(i.rs2)),
        },
        Opcode::Beq => format!(
            "if ({} == {}) goto block_{:08x}",
            r(i.rs1),
            r(i.rs2),
            i.imm
        ),
        Opcode::Bne => format!(
            "if ({} != {}) goto block_{:08x}",
            r(i.rs1),
            r(i.rs2),
            i.imm
        ),
        Opcode::Bltu => format!("if ({} < {}) goto block_{:08x}", r(i.rs1), r(i.rs2), i.imm),
        Opcode::Bgeu => format!(
            "if ({} >= {}) goto block_{:08x}",
            r(i.rs1),
            r(i.rs2),
            i.imm
        ),
        Opcode::Jmp => format!("goto block_{:08x}", i.imm),
        Opcode::Call => format!("call_{:08x}()", i.imm),
        Opcode::Ret => "return".to_string(),
        Opcode::Iret => "return /* iret */".to_string(),
        Opcode::Syscall => format!("kernel_call({})", i.imm),
        Opcode::Cli => "irq_lock()".to_string(),
        Opcode::Sti => "irq_unlock()".to_string(),
        Opcode::Push => format!("push({})", r(i.rs1)),
        Opcode::Pop => format!("{} = pop()", r(i.rd)),
        other => format!(
            "/* {other:?} rd={} rs1={} rs2={} imm={:#x} */",
            i.rd, i.rs1, i.rs2, i.imm
        ),
    }
}

/// Checks the recovered CFG against the binary's static CFG: every traced
/// block and edge must exist statically (the "equivalent to the original"
/// validation). `async_targets` lists interrupt-handler entry points —
/// edges into them can appear after any block and are not CFG edges.
///
/// # Errors
///
/// Returns a description of the first inconsistency.
pub fn validate_against_static(
    recovered: &RecoveredCfg,
    cfg: &StaticCfg,
    async_targets: &BTreeSet<u32>,
) -> Result<(), String> {
    for &b in &recovered.blocks {
        if !cfg.blocks.contains_key(&b) && cfg.block_containing(b).is_none() {
            return Err(format!("traced block {b:#010x} not in the static CFG"));
        }
    }
    'edges: for &(from, to) in &recovered.edges {
        if async_targets.contains(&to) {
            continue; // interrupt delivery: asynchronous, not a CFG edge
        }
        // A dynamic translation block stops only at *terminators*, so one
        // traced edge may span a chain of static blocks linked by
        // fall-through. Walk that chain: the edge is valid if `to` lies
        // within it, is a successor of any block in it, or the chain ends
        // in indirect control flow the static CFG cannot resolve.
        let Some(mut block) = cfg.block_containing(from) else {
            continue;
        };
        for _ in 0..s2e_dbt::MAX_BLOCK_INSTRS {
            let within = to >= block.start && to < block.end();
            if within || block.successors.contains(&to) || block.end() == to {
                continue 'edges;
            }
            let last = block.instrs.last().expect("nonempty block");
            if matches!(
                last.op,
                Opcode::Ret | Opcode::JmpR | Opcode::CallR | Opcode::Iret | Opcode::Syscall
            ) {
                continue 'edges; // indirect: unresolvable statically
            }
            if last.op.is_terminator() {
                break; // chain ends; `to` was not reachable
            }
            // Fall through into the next static block (a leader split).
            match cfg.block_containing(block.end()) {
                Some(next) if next.start == block.end() => block = next,
                _ => break,
            }
        }
        return Err(format!(
            "edge {from:#010x}->{to:#010x} impossible statically"
        ));
    }
    Ok(())
}

/// The RevNIC baseline for Table 5: repeated *concrete* runs with
/// randomized configuration — no symbolic execution, coverage limited to
/// whatever the concrete inputs happen to reach.
pub fn revnic_baseline(driver: &Driver, runs: u32, seed: u64) -> BTreeSet<u32> {
    let mut rng = SplitMix64::new(seed);
    let mut covered = BTreeSet::new();
    for _ in 0..runs {
        let (mut machine, _k) = boot();
        machine.load_aux(&driver.program);
        machine.load(&build_exerciser(driver, false));
        {
            let cfgstore = machine.devices.config_mut().unwrap();
            cfgstore.set(cfg_keys::CARD_TYPE, Value::Concrete(rng.below(8) as u32));
            cfgstore.set(cfg_keys::FLAGS, Value::Concrete(rng.below(4) as u32));
        }
        // Random receive payload.
        let nic = machine.devices.nic_mut().unwrap();
        let n = rng.below(32);
        nic.inject_rx((0..n).map(|_| Value::Concrete(rng.below(256) as u32)));

        let mut ec = EngineConfig::with_model(ConsistencyModel::ScCe);
        ec.max_instrs_per_path = 200_000;
        let mut engine = Engine::new(machine, ec);
        let (coverage, cov) = Coverage::new(Some(driver.code_range.clone()));
        engine.add_plugin(Box::new(coverage));
        engine.add_plugin(Box::new(PathKiller::new(2_000)));
        engine.run(50_000);
        covered.extend(cov.lock().unwrap().first_seen.keys().copied());
    }
    covered
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2e_guests::drivers::{pcnet, rtl8139};

    #[test]
    fn tracing_recovers_most_of_a_clean_driver() {
        let d = rtl8139::build();
        let report = trace_driver(&d, &RevConfig::default());
        assert!(report.paths > 1, "multi-path tracing expected");
        assert!(
            report.coverage() > 0.5,
            "coverage {:.2} too low ({} / {})",
            report.coverage(),
            report.covered,
            report.total_blocks
        );
        // The timeline is monotone.
        for w in report.coverage_timeline.windows(2) {
            assert!(w[0].0 <= w[1].0 && w[0].1 < w[1].1);
        }
    }

    #[test]
    fn recovered_cfg_validates_against_binary() {
        let d = rtl8139::build();
        let report = trace_driver(&d, &RevConfig::default());
        let cfg = d.static_cfg();
        let async_targets = BTreeSet::from([d.entry("irq")]);
        validate_against_static(&report.recovered, &cfg, &async_targets).unwrap();
    }

    #[test]
    fn synthesis_emits_protocol_code() {
        let d = pcnet::build();
        let report = trace_driver(
            &d,
            &RevConfig {
                max_steps: 20_000,
                ..RevConfig::default()
            },
        );
        let code = synthesize(&d, &report.recovered);
        assert!(code.contains("nic_port_read"));
        assert!(code.contains("nic_port_write"));
        assert!(code.contains("block_"));
        // One function per recovered block.
        assert_eq!(
            code.matches("static void block_").count(),
            report.recovered.blocks.len()
        );
    }

    #[test]
    fn multi_path_tracer_beats_revnic_baseline() {
        let d = rtl8139::build();
        let rev = trace_driver(&d, &RevConfig::default());
        let baseline = revnic_baseline(&d, 5, 42);
        assert!(
            rev.recovered.blocks.len() >= baseline.len(),
            "REV+ {} < baseline {}",
            rev.recovered.blocks.len(),
            baseline.len()
        );
    }

    #[test]
    fn reconstruct_merges_edges_across_traces() {
        let t1 = vec![
            TraceEntry::Block { pc: 0x100 },
            TraceEntry::Block { pc: 0x200 },
        ];
        let t2 = vec![
            TraceEntry::Block { pc: 0x100 },
            TraceEntry::Block { pc: 0x300 },
            TraceEntry::Port {
                pc: 0x308,
                port: 0x20,
                is_write: false,
                value: None,
            },
        ];
        let r = reconstruct([t1.as_slice(), t2.as_slice()].into_iter());
        assert_eq!(r.blocks.len(), 3);
        assert!(r.edges.contains(&(0x100, 0x200)));
        assert!(r.edges.contains(&(0x100, 0x300)));
        assert_eq!(r.port_ops[&0x308].port, 0x20);
    }
}

/// Result of dynamically disassembling a packed binary.
#[derive(Debug)]
pub struct DisassemblyReport {
    /// Distinct block-start addresses executed inside the target region.
    pub covered_blocks: BTreeSet<u32>,
    /// Decoded instructions by address (from the *decrypted* memory).
    pub listing: BTreeMap<u32, Instr>,
    /// Paths explored during the RC-CC phase.
    pub paths: usize,
}

impl DisassemblyReport {
    /// Fraction of `total_instrs` recovered.
    pub fn recovery(&self, total_instrs: usize) -> f64 {
        if total_instrs == 0 {
            0.0
        } else {
            self.listing.len() as f64 / total_instrs as f64
        }
    }
}

/// Dynamic disassembly of packed code (§3.1.3): run under **LC** until
/// execution first enters `target`, ensuring the unpacking stub decrypts
/// its payload correctly, then switch the engine to **RC-CC** so every
/// branch edge inside the target is followed regardless of path
/// constraints, maximizing disassembled coverage.
pub fn dynamic_disassemble(
    machine: s2e_vm::machine::Machine,
    target: std::ops::Range<u32>,
    max_steps: u64,
) -> DisassemblyReport {
    use s2e_core::analyzers::Coverage;
    use s2e_vm::isa::INSTR_SIZE;

    let mut ec = EngineConfig::with_model(ConsistencyModel::Lc);
    ec.code_ranges = CodeRanges::all();
    ec.max_states = 128;
    let mut engine = Engine::new(machine, ec);
    engine.set_retain_terminated(true);
    let (cov, cov_data) = Coverage::new(Some(target.clone()));
    engine.add_plugin(Box::new(cov));

    // Phase 1 (LC): run until the decrypted region is entered.
    let mut switched = false;
    let mut steps = 0u64;
    while steps < max_steps {
        if !switched {
            if let Some(id) = engine.sole_state() {
                if target.contains(&engine.state(id).unwrap().machine.cpu.pc) {
                    engine.config_mut().consistency = ConsistencyModel::RcCc;
                    switched = true;
                }
            }
        }
        if engine.step().is_none() {
            break;
        }
        steps += 1;
    }

    // Decode the decrypted bytes at every covered block, walking to the
    // block's terminator (a linear-sweep over the traced leaders).
    let covered_blocks: BTreeSet<u32> = cov_data.lock().unwrap().first_seen.keys().copied().collect();
    let mut listing: BTreeMap<u32, Instr> = BTreeMap::new();
    // Memory with decrypted contents: any retained final state works
    // (decryption happened before the first target block on every path).
    let mem_state = engine
        .terminated_states()
        .first()
        .map(|s| s.machine.mem.clone());
    if let Some(mem) = mem_state {
        for &start in &covered_blocks {
            let mut pc = start;
            while target.contains(&pc) {
                let bytes: [u8; 8] = mem.read_bytes_concrete(pc, INSTR_SIZE).try_into().unwrap();
                let Some(i) = Instr::decode(&bytes) else { break };
                let term = i.op.is_terminator();
                listing.insert(pc, i);
                pc += INSTR_SIZE;
                if term {
                    break;
                }
            }
        }
    }
    DisassemblyReport {
        covered_blocks,
        listing,
        paths: engine.terminated().len(),
    }
}

#[cfg(test)]
mod disasm_tests {
    use super::*;
    use s2e_guests::packed;

    #[test]
    fn packed_payload_fully_disassembled_under_rc_cc() {
        let g = packed::build(false);
        let (mut m, _k) = s2e_guests::kernel::boot();
        m.load(&g.program);
        let report = dynamic_disassemble(m, g.payload_range.clone(), 100_000);
        assert!(report.paths >= 2, "RC-CC must force both payload branches");
        assert_eq!(
            report.listing.len(),
            g.payload_instrs,
            "all payload instructions disassembled: {:?}",
            report.listing.keys().collect::<Vec<_>>()
        );
        assert!((report.recovery(g.payload_instrs) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn single_path_misses_payload_blocks() {
        // Control: plain concrete execution (no RC-CC) leaves the
        // not-taken sides undisassembled.
        let g = packed::build(false);
        let (mut m, _k) = s2e_guests::kernel::boot();
        m.load(&g.program);
        let mut ec = EngineConfig::with_model(ConsistencyModel::ScCe);
        ec.max_states = 4;
        let mut engine = Engine::new(m, ec);
        let (cov, cov_data) = s2e_core::analyzers::Coverage::new(Some(g.payload_range.clone()));
        engine.add_plugin(Box::new(cov));
        engine.run(100_000);
        let single = cov_data.lock().unwrap().covered();

        let (mut m2, _k) = s2e_guests::kernel::boot();
        m2.load(&g.program);
        let multi = dynamic_disassemble(m2, g.payload_range.clone(), 100_000)
            .covered_blocks
            .len();
        assert!(
            multi > single,
            "RC-CC ({multi} blocks) must beat single-path ({single})"
        );
    }
}
