//! Watch a live telemetry stream in the terminal.
//!
//! ```text
//! live-top [results/run_live.jsonl] [--follow] [--interval-ms N]
//! live-top --url HOST:PORT [--follow] [--interval-ms N]
//! ```
//!
//! Default mode renders the newest snapshot line of the JSONL stream
//! once and exits. `--follow` redraws whenever a new line lands and
//! exits after the `"final": true` line. `--url` scrapes a running
//! engine's `/report` endpoint instead of reading the file.

use s2e_tools::live_top::{render_latest, render_report};
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path = None;
    let mut url = None;
    let mut follow = false;
    let mut interval = Duration::from_millis(250);
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--follow" => follow = true,
            "--url" => {
                let Some(u) = it.next() else {
                    eprintln!("error: --url needs HOST:PORT");
                    std::process::exit(2);
                };
                url = Some(u.clone());
            }
            "--interval-ms" => {
                let Some(ms) = it.next().and_then(|v| v.parse().ok()) else {
                    eprintln!("error: --interval-ms needs a number");
                    std::process::exit(2);
                };
                interval = Duration::from_millis(ms);
            }
            _ if path.is_none() && !a.starts_with("--") => path = Some(a.clone()),
            other => {
                eprintln!("error: unexpected argument {other:?}");
                std::process::exit(2);
            }
        }
    }

    if let Some(addr) = url {
        loop {
            let body = match s2e_obs::http_get(&addr, "/report") {
                Ok(b) => b,
                Err(e) => fail(&format!("cannot scrape {addr}: {e}")),
            };
            match render_report(&body) {
                Ok(text) => draw(&text, follow),
                Err(e) => fail(&e),
            }
            if !follow {
                return;
            }
            std::thread::sleep(interval);
        }
    }

    let path = path.unwrap_or_else(|| "results/run_live.jsonl".to_string());
    let mut last_rendered = String::new();
    loop {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => fail(&format!("cannot read {path}: {e}")),
        };
        match render_latest(&text) {
            Ok(rendered) => {
                if rendered != last_rendered {
                    draw(&rendered, follow);
                    last_rendered = rendered;
                }
            }
            // A follow that starts before the sampler's first line sees
            // an empty file; keep polling instead of dying.
            Err(e) if follow => {
                let _ = e;
            }
            Err(e) => fail(&e),
        }
        if !follow || last_rendered.contains("[final]") {
            return;
        }
        std::thread::sleep(interval);
    }
}

/// In follow mode, repaint from the top-left; one-shot mode just
/// prints.
fn draw(text: &str, follow: bool) {
    if follow {
        print!("\x1b[2J\x1b[H");
    }
    print!("{text}");
    use std::io::Write as _;
    std::io::stdout().flush().ok();
}

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(1);
}
