//! Render a `results/run_report.json` as a terminal summary.
//!
//! ```text
//! trace-report <run_report.json> [--top N]
//! ```
//!
//! `--top` limits the phase table to the N largest phases (default: all).

use s2e_tools::trace_report::render_json_text;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut path = None;
    let mut top = usize::MAX;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--top" => {
                let n = it.next().and_then(|v| v.parse().ok());
                let Some(n) = n else {
                    eprintln!("error: --top needs a number");
                    std::process::exit(2);
                };
                top = n;
            }
            _ if path.is_none() => path = Some(a.clone()),
            other => {
                eprintln!("error: unexpected argument {other:?}");
                std::process::exit(2);
            }
        }
    }
    let Some(path) = path else {
        eprintln!("usage: trace-report <run_report.json> [--top N]");
        std::process::exit(2);
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    match render_json_text(&text, top) {
        Ok(rendered) => print!("{rendered}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
