//! Drive the distributed exploration service from the command line.
//!
//! ```text
//! dist-run serve    --listen ADDR
//! dist-run submit   --addr ADDR --guest G [--model M] [--workers N]
//!                   [--max-steps S] [--quiet]
//! dist-run worker   --addr ADDR --worker N
//! dist-run shutdown --addr ADDR
//! ```
//!
//! `serve` runs the long-lived job server (DESIGN.md §17): one job at a
//! time, each with a fresh coordinator and worker *processes* spawned
//! from this same executable in `worker` mode. `submit` sends a
//! [`JobSpec`], streams the job's merged `s2e-live-dist-v1` feed to
//! stdout as it arrives, and prints the final report. `shutdown` stops
//! a server once its current job (if any) finishes draining.

use s2e_core::ConsistencyModel;
use s2e_dist::{frame, proto, JobSpec};
use std::net::{TcpListener, TcpStream};
use std::process::{Command, Stdio};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        usage();
    };
    match cmd.as_str() {
        "serve" => serve(&args[1..]),
        "submit" => submit(&args[1..]),
        "worker" => worker(&args[1..]),
        "shutdown" => shutdown(&args[1..]),
        _ => usage(),
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: dist-run serve --listen ADDR\n\
         \x20      dist-run submit --addr ADDR --guest G [--model M] \
         [--workers N] [--max-steps S] [--quiet]\n\
         \x20      dist-run worker --addr ADDR --worker N\n\
         \x20      dist-run shutdown --addr ADDR"
    );
    std::process::exit(2);
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).map(|i| {
        args.get(i + 1).cloned().unwrap_or_else(|| {
            eprintln!("error: {name} needs a value");
            std::process::exit(2);
        })
    })
}

fn parse_model(name: &str) -> ConsistencyModel {
    let want = name.to_ascii_uppercase().replace('_', "-");
    for m in ConsistencyModel::ALL {
        if m.name() == want {
            return m;
        }
    }
    eprintln!(
        "error: unknown model {name:?} (one of: {})",
        ConsistencyModel::ALL.map(|m| m.name()).join(", ")
    );
    std::process::exit(2);
}

fn serve(args: &[String]) -> ! {
    let listen = flag(args, "--listen").unwrap_or_else(|| "127.0.0.1:7208".into());
    let listener = TcpListener::bind(&listen).unwrap_or_else(|e| {
        eprintln!("error: cannot bind {listen}: {e}");
        std::process::exit(1);
    });
    eprintln!("dist-run: serving jobs on {listen}");
    let exe = std::env::current_exe().expect("own executable path");
    let spawn = move |addr: &str, w: usize| {
        Command::new(&exe)
            .args(["worker", "--addr", addr, "--worker", &w.to_string()])
            .stdout(Stdio::null())
            .spawn()
    };
    match s2e_dist::coordinator::serve_jobs(listener, &spawn) {
        Ok(()) => {
            eprintln!("dist-run: shutdown requested, exiting");
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("error: job server failed: {e}");
            std::process::exit(1);
        }
    }
}

fn submit(args: &[String]) -> ! {
    let addr = flag(args, "--addr").unwrap_or_else(|| usage());
    let guest = flag(args, "--guest").unwrap_or_else(|| usage());
    let model = parse_model(&flag(args, "--model").unwrap_or_else(|| "LC".into()));
    let workers: u32 = flag(args, "--workers").map_or(2, |v| v.parse().expect("--workers"));
    let max_steps: u64 =
        flag(args, "--max-steps").map_or(5_000_000, |v| v.parse().expect("--max-steps"));
    let quiet = args.iter().any(|a| a == "--quiet");

    let spec = JobSpec::new(&guest, model, max_steps, workers);
    let mut conn = TcpStream::connect(&addr).unwrap_or_else(|e| {
        eprintln!("error: cannot reach server at {addr}: {e}");
        std::process::exit(1);
    });
    proto::send(&mut conn, proto::T_SUBMIT, &spec.encode()).expect("submit job");

    // The server streams JOB_EVENT lines (the merged worker feed) and
    // finishes with one JOB_REPORT frame.
    loop {
        let (ty, payload) = match frame::read_frame(&mut conn) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("error: job failed on the server: {e}");
                std::process::exit(1);
            }
        };
        match ty {
            proto::T_JOB_EVENT => {
                if !quiet {
                    println!("{}", proto::decode_line(&payload).expect("feed line"));
                }
            }
            proto::T_JOB_REPORT => {
                let r = s2e_dist::DistReport::decode(&payload).expect("job report");
                println!(
                    "job done: {} paths, {} covered blocks, {} forks, {} exports \
                     ({} steals + {} reclaims, {} leftover), {} cache entries, \
                     {} steps, {} ms",
                    r.total_paths,
                    r.covered_blocks.len(),
                    r.forks,
                    r.exports,
                    r.steals,
                    r.reclaims,
                    r.queue_leftover,
                    r.cache_entries,
                    r.steps_used,
                    r.wall_ms
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("error: unexpected frame type {other} from server");
                std::process::exit(1);
            }
        }
    }
}

fn worker(args: &[String]) -> ! {
    let addr = flag(args, "--addr").unwrap_or_else(|| usage());
    let w: usize = flag(args, "--worker")
        .unwrap_or_else(|| usage())
        .parse()
        .expect("--worker");
    match s2e_dist::run_worker(&addr, w) {
        Ok(()) => std::process::exit(0),
        Err(e) => {
            eprintln!("error: worker {w} failed: {e}");
            std::process::exit(1);
        }
    }
}

fn shutdown(args: &[String]) -> ! {
    let addr = flag(args, "--addr").unwrap_or_else(|| usage());
    let mut conn = TcpStream::connect(&addr).unwrap_or_else(|e| {
        eprintln!("error: cannot reach server at {addr}: {e}");
        std::process::exit(1);
    });
    proto::send(&mut conn, proto::T_SHUTDOWN, &[]).expect("send shutdown");
    std::process::exit(0);
}
