//! Render the record/replay journals of live states (DESIGN.md §13).
//!
//! ```text
//! journal-dump [--steps N] [--top K]
//! ```
//!
//! Runs the 91C111 driver corpus under local consistency for `N` engine
//! steps (default 2000; the corpus exhausts near 5700), then evicts
//! every live state to compact
//! `{checkpoint, journal}` form and prints what each journal holds:
//! event counts by kind, minted-variable count, encoded byte size, and
//! the replay distance back to the nearest checkpoint. Every compact
//! state is then rehydrated with fingerprint verification on, so a
//! successful run doubles as a replay-identity check over whatever the
//! corpus journaled.

use s2e_core::journal::JournalEvent;
use s2e_core::selectors::{constrain_range, make_config_symbolic};
use s2e_core::{CodeRanges, ConsistencyModel, Engine, EngineConfig};
use s2e_guests::drivers::{build_exerciser, smc91c111};
use s2e_guests::kernel::{boot, standard_annotations};
use s2e_guests::layout::cfg_keys;

const EVENT_KINDS: [&str; 6] =
    ["feasible", "concretize", "fork", "curtail", "edge_force", "prng_draw"];

fn build_engine() -> Engine {
    let driver = smc91c111::build();
    let (mut machine, _kernel) = boot();
    machine.load_aux(&driver.program);
    let exerciser = build_exerciser(&driver, true);
    machine.load(&exerciser);
    let mut ec = EngineConfig::with_model(ConsistencyModel::Lc);
    ec.code_ranges = CodeRanges::all().include(driver.code_range.clone());
    ec.annotations = standard_annotations();
    let mut e = Engine::new(machine, ec);
    let id = e.sole_state().unwrap();
    let b = e.builder_arc();
    let state = e.state_mut(id).unwrap();
    let card = make_config_symbolic(state, &b, cfg_keys::CARD_TYPE, "CardType");
    constrain_range(state, &b, &card, 0, 7);
    let flags = make_config_symbolic(state, &b, cfg_keys::FLAGS, "Flags");
    constrain_range(state, &b, &flags, 0, 3);
    e.apply_model_hardware_policy();
    e
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut steps: u64 = 2_000;
    let mut top: usize = 16;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut num = |what: &str| -> u64 {
            it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                eprintln!("error: {what} needs a number");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            "--steps" => steps = num("--steps"),
            "--top" => top = num("--top") as usize,
            other => {
                eprintln!("usage: journal-dump [--steps N] [--top K] (got {other:?})");
                std::process::exit(2);
            }
        }
    }

    let mut engine = build_engine();
    let mut executed = 0u64;
    while executed < steps && engine.step().is_some() {
        executed += 1;
    }
    let live = engine.drain_states();
    println!(
        "91C111-LC after {executed} steps: {} paths done, {} states live",
        engine.terminated().len(),
        live.len()
    );
    if live.is_empty() {
        println!("exploration exhausted — nothing left to dump (try fewer --steps)");
        return;
    }

    // Evict everything (verified), largest journals first.
    let mut compacts: Vec<_> = live
        .into_iter()
        .map(|s| engine.evict_state(s, true))
        .collect();
    compacts.sort_by_key(|c| std::cmp::Reverse(c.journal.byte_len()));

    println!();
    println!(
        "{:>14} {:>6} {:>6} {:>6} {:>5} | {}",
        "state", "dist", "events", "vars", "bytes", "event counts"
    );
    for (i, c) in compacts.iter().enumerate() {
        if i >= top {
            println!("... {} more (raise --top)", compacts.len() - top);
            break;
        }
        let mut counts = [0u32; EVENT_KINDS.len()];
        for ev in c.journal.iter() {
            let slot = match ev {
                JournalEvent::Feasible(_) => 0,
                JournalEvent::Concretize(_) => 1,
                JournalEvent::Fork { .. } => 2,
                JournalEvent::Curtail => 3,
                JournalEvent::EdgeForce(_) => 4,
                JournalEvent::PrngDraw(_) => 5,
            };
            counts[slot] += 1;
        }
        let breakdown: Vec<String> = EVENT_KINDS
            .iter()
            .zip(counts)
            .filter(|(_, n)| *n > 0)
            .map(|(k, n)| format!("{k}:{n}"))
            .collect();
        println!(
            "{:>14} {:>6} {:>6} {:>6} {:>5} | {}",
            c.id.to_string(),
            c.checkpoint_distance(),
            c.journal.event_count(),
            c.journal.var_count(),
            c.journal.byte_len(),
            if breakdown.is_empty() { "-".to_string() } else { breakdown.join(" ") },
        );
    }

    let total_bytes: usize = compacts.iter().map(|c| c.journal.byte_len()).sum();
    let total_events: u32 = compacts.iter().map(|c| c.journal.event_count()).sum();
    let total_vars: u32 = compacts.iter().map(|c| c.journal.var_count()).sum();
    let n = compacts.len();
    println!();
    println!(
        "{n} compact states: {total_events} events + {total_vars} minted vars in \
         {total_bytes} journal bytes ({:.1} bytes/state)",
        total_bytes as f64 / n as f64
    );

    // Rehydrate everything; `evict_state(_, true)` embedded fingerprints,
    // so each reconstruction is asserted bit-identical.
    for c in compacts {
        let state = engine.rehydrate(c);
        engine.attach_state(state);
    }
    println!("replay identity: ok ({n} states rehydrated bit-identical)");
}
