//! Plain-text rendering of a [`RunReport`] — the `trace-report` view.
//!
//! Turns the JSON run report emitted by an instrumented exploration
//! (DESIGN.md §11) into the two tables an operator actually reads: where
//! the time went (top-N phases by merged self-time, Fig.-9 style) and
//! how evenly the workers were loaded (per-worker busy/idle split).

use s2e_obs::{Phase, RunReport};
use std::fmt::Write as _;

/// Renders the phase table (top `top` phases by self-time) and the
/// per-worker utilization table.
pub fn render(report: &RunReport, top: usize) -> String {
    let mut out = String::new();
    let busy = report.phases.busy().as_nanos() as u64;
    let idle = report.phases.idle().as_nanos() as u64;

    writeln!(out, "run report: wall {}", fmt_ns(report.wall_ns)).unwrap();
    let mut headline = format!("workers {}", report.workers.len());
    if let Some(paths) = report.section("parallel").and_then(|s| s.get("total_paths")) {
        write!(headline, ", paths {}", paths as u64).unwrap();
    }
    if let Some(queries) = report.section("solver").and_then(|s| s.get("queries")) {
        write!(headline, ", solver queries {}", queries as u64).unwrap();
    }
    writeln!(out, "{headline}").unwrap();
    if let Some(dbt) = report.section("dbt") {
        let c = |key: &str| dbt.get(key).unwrap_or(0.0) as u64;
        writeln!(
            out,
            "dbt: hits {} (l1 {}), translations {}, chains {} (entries {}, exits {}), \
             invalidations {}, unlinks {}",
            c("hits"),
            c("l1_hits"),
            c("translations"),
            c("chains_formed"),
            c("chain_entries"),
            c("chain_exits"),
            c("invalidations"),
            c("unlinks"),
        )
        .unwrap();
    }
    writeln!(out).unwrap();

    // Phase table: non-idle phases by descending self-time, percentages
    // against total busy time.
    let mut phases: Vec<Phase> =
        Phase::ALL.into_iter().filter(|p| *p != Phase::Idle).collect();
    phases.sort_by_key(|p| std::cmp::Reverse(report.phases.nanos[p.index()]));
    writeln!(out, "{:<10} {:>12} {:>7} {:>8}", "phase", "self-time", "busy%", "spans").unwrap();
    for phase in phases.into_iter().take(top) {
        let ns = report.phases.nanos[phase.index()];
        writeln!(
            out,
            "{:<10} {:>12} {:>6.1}% {:>8}",
            phase.name(),
            fmt_ns(ns),
            percent(ns, busy),
            report.phases.spans[phase.index()],
        )
        .unwrap();
    }
    writeln!(out, "{:<10} {:>12}", "idle", fmt_ns(idle)).unwrap();
    writeln!(out).unwrap();

    writeln!(
        out,
        "{:<7} {:>12} {:>12} {:>6} {:>7} {:>8}",
        "worker", "busy", "idle", "util%", "events", "dropped"
    )
    .unwrap();
    for w in &report.workers {
        let busy = w.totals.busy().as_nanos() as u64;
        let total = busy + w.totals.idle().as_nanos() as u64;
        writeln!(
            out,
            "{:<7} {:>12} {:>12} {:>5.1}% {:>7} {:>8}",
            w.worker,
            fmt_ns(busy),
            fmt_ns(w.totals.idle().as_nanos() as u64),
            percent(busy, total),
            w.events.len(),
            w.dropped,
        )
        .unwrap();
    }

    // Full counter dump: every metric section, every key, no
    // abridging — the completeness contract (tests/counter_drift.rs)
    // holds new engine/solver/dbt counters to appearing here.
    if !report.sections.is_empty() {
        writeln!(out).unwrap();
        writeln!(out, "counters").unwrap();
        for section in &report.sections {
            for (key, value) in &section.counters {
                writeln!(out, "  {}.{} {}", section.name, key, fmt_counter(*value)).unwrap();
            }
        }
    }
    out
}

/// Parses a run-report JSON file and renders it; the error is the parse
/// or schema failure message.
pub fn render_json_text(text: &str, top: usize) -> Result<String, String> {
    let report = RunReport::from_json(text).map_err(|e| e.to_string())?;
    Ok(render(&report, top))
}

fn percent(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        part as f64 / whole as f64 * 100.0
    }
}

/// Counter values are f64 in the report schema but almost always whole
/// numbers; print those without the trailing `.0`.
fn fmt_counter(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 9.0e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Nanoseconds as a human-scaled duration: ns, µs, ms, or s.
fn fmt_ns(ns: u64) -> String {
    match ns {
        0..=999 => format!("{ns} ns"),
        1_000..=999_999 => format!("{:.1} µs", ns as f64 / 1e3),
        1_000_000..=999_999_999 => format!("{:.2} ms", ns as f64 / 1e6),
        _ => format!("{:.3} s", ns as f64 / 1e9),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2e_obs::{MetricSection, WorkerTimeline};

    fn canned() -> RunReport {
        let mut report = RunReport::new(2_000_000);
        let mut w0 = WorkerTimeline::default();
        w0.totals.add_span(Phase::Concrete, 1_000_000);
        w0.totals.add_span(Phase::Solve, 500_000);
        report.add_worker(w0);
        let mut w1 = WorkerTimeline::default();
        w1.worker = 1;
        w1.totals.add_span(Phase::Solve, 1_100_000);
        w1.totals.add_span(Phase::Idle, 900_000);
        report.add_worker(w1);
        report.add_section(
            MetricSection::new("parallel").counter("total_paths", 33.0),
        );
        report.add_section(MetricSection::new("solver").counter("queries", 64.0));
        report
    }

    #[test]
    fn renders_phases_sorted_and_utilization() {
        let text = render(&canned(), 3);
        // Solve (1.6 ms merged) outranks Concrete (1.0 ms).
        let solve = text.find("solve").unwrap();
        let concrete = text.find("concrete").unwrap();
        assert!(solve < concrete, "{text}");
        assert!(text.contains("paths 33"), "{text}");
        assert!(text.contains("solver queries 64"), "{text}");
        // Worker 1 parked 900 µs of its 2 ms: utilization 55%.
        assert!(text.contains("55.0%"), "{text}");
        // Worker 0 never went idle.
        assert!(text.contains("100.0%"), "{text}");
    }

    #[test]
    fn counter_dump_lists_every_section_key() {
        let text = render(&canned(), 3);
        assert!(text.contains("counters"), "{text}");
        assert!(text.contains("  parallel.total_paths 33"), "{text}");
        assert!(text.contains("  solver.queries 64"), "{text}");
    }

    #[test]
    fn top_limits_the_phase_table() {
        let text = render(&canned(), 1);
        assert!(text.contains("solve"), "{text}");
        assert!(!text.contains("translate"), "{text}");
    }

    #[test]
    fn json_round_trip_renders() {
        let report = canned();
        let rendered = render_json_text(&report.render(), 7).unwrap();
        assert_eq!(rendered, render(&report, 7));
        assert!(render_json_text("{}", 7).is_err());
    }
}
