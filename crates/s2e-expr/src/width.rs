//! Bit widths of expression values.

use std::fmt;

/// Width of a bitvector value in bits, between 1 and 64.
///
/// Guest machine words are 32 bits wide, but sub-word memory accesses and
/// flag computations produce 1/8/16-bit values, and address arithmetic in
/// the translator can widen to 64 bits, so the full range is supported.
///
/// ```
/// use s2e_expr::Width;
/// assert_eq!(Width::W8.bits(), 8);
/// assert_eq!(Width::W8.mask(), 0xff);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Width(u32);

impl Width {
    /// A single bit (boolean results of comparisons).
    pub const BOOL: Width = Width(1);
    /// One byte.
    pub const W8: Width = Width(8);
    /// Half word.
    pub const W16: Width = Width(16);
    /// Guest machine word.
    pub const W32: Width = Width(32);
    /// Double word.
    pub const W64: Width = Width(64);

    /// Creates a width of `bits` bits.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero or greater than 64.
    pub fn new(bits: u32) -> Width {
        assert!((1..=64).contains(&bits), "width out of range: {bits}");
        Width(bits)
    }

    /// Number of bits.
    pub fn bits(self) -> u32 {
        self.0
    }

    /// Number of whole bytes needed to store a value of this width.
    pub fn bytes(self) -> u32 {
        self.0.div_ceil(8)
    }

    /// Mask with the low `bits()` bits set.
    pub fn mask(self) -> u64 {
        if self.0 == 64 {
            u64::MAX
        } else {
            (1u64 << self.0) - 1
        }
    }

    /// Truncates `v` to this width.
    pub fn truncate(self, v: u64) -> u64 {
        v & self.mask()
    }

    /// Sign-extends the low `bits()` bits of `v` to a full `i64`.
    pub fn sign_extend(self, v: u64) -> i64 {
        let v = self.truncate(v);
        let shift = 64 - self.0;
        ((v << shift) as i64) >> shift
    }

    /// True if the sign bit (most significant bit at this width) of `v` is
    /// set.
    pub fn sign_bit(self, v: u64) -> bool {
        self.truncate(v) >> (self.0 - 1) == 1
    }
}

impl fmt::Debug for Width {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w{}", self.0)
    }
}

impl fmt::Display for Width {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks() {
        assert_eq!(Width::BOOL.mask(), 1);
        assert_eq!(Width::W8.mask(), 0xff);
        assert_eq!(Width::W16.mask(), 0xffff);
        assert_eq!(Width::W32.mask(), 0xffff_ffff);
        assert_eq!(Width::W64.mask(), u64::MAX);
    }

    #[test]
    fn truncate_masks_high_bits() {
        assert_eq!(Width::W8.truncate(0x1ff), 0xff);
        assert_eq!(Width::W32.truncate(u64::MAX), 0xffff_ffff);
    }

    #[test]
    fn sign_extension() {
        assert_eq!(Width::W8.sign_extend(0x80), -128);
        assert_eq!(Width::W8.sign_extend(0x7f), 127);
        assert_eq!(Width::W16.sign_extend(0xffff), -1);
        assert_eq!(Width::W64.sign_extend(u64::MAX), -1);
        assert_eq!(Width::BOOL.sign_extend(1), -1);
    }

    #[test]
    fn sign_bit() {
        assert!(Width::W8.sign_bit(0x80));
        assert!(!Width::W8.sign_bit(0x7f));
        assert!(Width::W32.sign_bit(0x8000_0000));
    }

    #[test]
    fn bytes_rounds_up() {
        assert_eq!(Width::BOOL.bytes(), 1);
        assert_eq!(Width::W8.bytes(), 1);
        assert_eq!(Width::new(12).bytes(), 2);
        assert_eq!(Width::W32.bytes(), 4);
    }

    #[test]
    #[should_panic]
    fn zero_width_rejected() {
        Width::new(0);
    }

    #[test]
    #[should_panic]
    fn oversized_width_rejected() {
        Width::new(65);
    }
}
