//! The bitfield-theory expression simplifier (paper §5).
//!
//! Translating machine code (rather than source) into the symbolic domain
//! produces expressions dominated by bitfield manipulation: flag extraction,
//! masking, shifting, re-assembly of sub-word values. The paper's simplifier
//! exploits this in two passes:
//!
//! 1. **Bottom-up known-bits propagation** — starting from the leaves,
//!    compute for every node which bits are statically known to be 0 or 1;
//!    a node whose bits are all known is replaced by a constant.
//! 2. **Top-down demanded-bits propagation** — starting from the root,
//!    track which bits of each operand the consumers can possibly observe;
//!    an operation that only modifies unobserved bits is removed.

use crate::builder::ExprBuilder;
use crate::expr::{BinOp, ExprKind, ExprRef, UnOp};
use crate::width::Width;
use std::collections::HashMap;

/// Result of the known-bits analysis for one expression.
///
/// Invariant: `known_zero & known_one == 0`, and both masks are confined to
/// the expression width.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KnownBits {
    /// Bits statically known to be zero.
    pub known_zero: u64,
    /// Bits statically known to be one.
    pub known_one: u64,
}

impl KnownBits {
    fn nothing() -> KnownBits {
        KnownBits {
            known_zero: 0,
            known_one: 0,
        }
    }

    fn constant(v: u64, w: Width) -> KnownBits {
        KnownBits {
            known_zero: !v & w.mask(),
            known_one: v & w.mask(),
        }
    }

    /// True if every bit within `mask` is known.
    pub fn all_known(&self, mask: u64) -> bool {
        (self.known_zero | self.known_one) & mask == mask
    }

    /// The constant value, if all bits of the width are known.
    pub fn as_const(&self, w: Width) -> Option<u64> {
        if self.all_known(w.mask()) {
            Some(self.known_one)
        } else {
            None
        }
    }

    /// Minimum possible unsigned value.
    pub fn umin(&self) -> u64 {
        self.known_one
    }

    /// Maximum possible unsigned value at width `w`.
    pub fn umax(&self, w: Width) -> u64 {
        w.mask() & !self.known_zero
    }
}

fn low_ones(n: u32) -> u64 {
    if n >= 64 {
        u64::MAX
    } else {
        (1u64 << n) - 1
    }
}

/// Computes known bits for `e`, memoizing shared sub-DAGs.
pub fn known_bits(e: &ExprRef) -> KnownBits {
    let mut memo: HashMap<usize, KnownBits> = HashMap::new();
    known_bits_rec(e, &mut memo)
}

fn key(e: &ExprRef) -> usize {
    let p: &crate::expr::Expr = e;
    p as *const _ as usize
}

fn known_bits_rec(e: &ExprRef, memo: &mut HashMap<usize, KnownBits>) -> KnownBits {
    if let Some(k) = memo.get(&key(e)) {
        return *k;
    }
    let w = e.width();
    let m = w.mask();
    let kb = match e.kind() {
        ExprKind::Const(v) => KnownBits::constant(*v, w),
        ExprKind::Var(..) => KnownBits::nothing(),
        ExprKind::Unary(UnOp::Not, a) => {
            let ka = known_bits_rec(a, memo);
            KnownBits {
                known_zero: ka.known_one,
                known_one: ka.known_zero,
            }
        }
        ExprKind::Unary(UnOp::Neg, a) => {
            let ka = known_bits_rec(a, memo);
            // neg(x) = not(x) + 1: only trailing bits propagate reliably.
            // If the low k bits of x are known, the low k bits of -x are too.
            let mut kz = 0u64;
            let mut ko = 0u64;
            let mut borrow_known = true;
            let mut carry = 1u64; // +1 of two's complement after NOT
            for i in 0..w.bits() {
                let bit = 1u64 << i;
                let known = (ka.known_zero | ka.known_one) & bit != 0;
                if !(known && borrow_known) {
                    borrow_known = false;
                    continue;
                }
                let xv = u64::from(ka.known_one & bit != 0);
                let nb = (1 - xv) + carry;
                if nb & 1 == 1 {
                    ko |= bit;
                } else {
                    kz |= bit;
                }
                carry = nb >> 1;
            }
            KnownBits {
                known_zero: kz & m,
                known_one: ko & m,
            }
        }
        ExprKind::Binary(op, a, b) => {
            let ka = known_bits_rec(a, memo);
            let kb = known_bits_rec(b, memo);
            binary_known_bits(*op, a, b, ka, kb, w)
        }
        ExprKind::Extract { src, lo } => {
            let ks = known_bits_rec(src, memo);
            KnownBits {
                known_zero: (ks.known_zero >> lo) & m,
                known_one: (ks.known_one >> lo) & m,
            }
        }
        ExprKind::ZExt(src) => {
            let ks = known_bits_rec(src, memo);
            let high = m & !src.width().mask();
            KnownBits {
                known_zero: ks.known_zero | high,
                known_one: ks.known_one,
            }
        }
        ExprKind::SExt(src) => {
            let ks = known_bits_rec(src, memo);
            let sw = src.width();
            let sign = 1u64 << (sw.bits() - 1);
            let high = m & !sw.mask();
            if ks.known_zero & sign != 0 {
                KnownBits {
                    known_zero: ks.known_zero | high,
                    known_one: ks.known_one,
                }
            } else if ks.known_one & sign != 0 {
                KnownBits {
                    known_zero: ks.known_zero,
                    known_one: ks.known_one | high,
                }
            } else {
                KnownBits {
                    known_zero: ks.known_zero,
                    known_one: ks.known_one,
                }
            }
        }
        ExprKind::Ite(c, t, f) => {
            let kc = known_bits_rec(c, memo);
            if kc.known_one & 1 != 0 {
                known_bits_rec(t, memo)
            } else if kc.known_zero & 1 != 0 {
                known_bits_rec(f, memo)
            } else {
                let kt = known_bits_rec(t, memo);
                let kf = known_bits_rec(f, memo);
                KnownBits {
                    known_zero: kt.known_zero & kf.known_zero,
                    known_one: kt.known_one & kf.known_one,
                }
            }
        }
    };
    debug_assert_eq!(kb.known_zero & kb.known_one, 0, "contradictory known bits");
    memo.insert(key(e), kb);
    kb
}

fn binary_known_bits(
    op: BinOp,
    a: &ExprRef,
    b: &ExprRef,
    ka: KnownBits,
    kb: KnownBits,
    w: Width,
) -> KnownBits {
    let m = w.mask();
    match op {
        BinOp::And => KnownBits {
            known_zero: ka.known_zero | kb.known_zero,
            known_one: ka.known_one & kb.known_one,
        },
        BinOp::Or => KnownBits {
            known_zero: ka.known_zero & kb.known_zero,
            known_one: ka.known_one | kb.known_one,
        },
        BinOp::Xor => KnownBits {
            known_zero: (ka.known_zero & kb.known_zero) | (ka.known_one & kb.known_one),
            known_one: (ka.known_zero & kb.known_one) | (ka.known_one & kb.known_zero),
        },
        BinOp::Add | BinOp::Sub => {
            // Ripple known bits from the bottom while the carry/borrow is
            // known.
            let mut kz = 0u64;
            let mut ko = 0u64;
            let mut carry_known = true;
            let mut carry: u64 = if op == BinOp::Sub { 1 } else { 0 };
            for i in 0..w.bits() {
                let bit = 1u64 << i;
                let a_known = (ka.known_zero | ka.known_one) & bit != 0;
                let b_known = (kb.known_zero | kb.known_one) & bit != 0;
                if !(a_known && b_known && carry_known) {
                    carry_known = false;
                    continue;
                }
                let av = u64::from(ka.known_one & bit != 0);
                // Sub is a + not(b) + 1.
                let bv = {
                    let raw = u64::from(kb.known_one & bit != 0);
                    if op == BinOp::Sub {
                        1 - raw
                    } else {
                        raw
                    }
                };
                let s = av + bv + carry;
                if s & 1 == 1 {
                    ko |= bit;
                } else {
                    kz |= bit;
                }
                carry = s >> 1;
            }
            KnownBits {
                known_zero: kz & m,
                known_one: ko & m,
            }
        }
        BinOp::Mul => {
            // Trailing zeros add up.
            let tz_a = (ka.known_zero.trailing_ones()).min(w.bits());
            let tz_b = (kb.known_zero.trailing_ones()).min(w.bits());
            let tz = (tz_a + tz_b).min(w.bits());
            KnownBits {
                known_zero: low_ones(tz) & m,
                known_one: 0,
            }
        }
        BinOp::Shl => {
            if let Some(sh) = b.as_const() {
                if sh >= w.bits() as u64 {
                    KnownBits::constant(0, w)
                } else {
                    let sh = sh as u32;
                    KnownBits {
                        known_zero: ((ka.known_zero << sh) | low_ones(sh)) & m,
                        known_one: (ka.known_one << sh) & m,
                    }
                }
            } else {
                // At least the trailing zeros of the operand survive.
                let tz = ka.known_zero.trailing_ones().min(w.bits());
                KnownBits {
                    known_zero: low_ones(tz) & m,
                    known_one: 0,
                }
            }
        }
        BinOp::LShr => {
            if let Some(sh) = b.as_const() {
                if sh >= w.bits() as u64 {
                    KnownBits::constant(0, w)
                } else {
                    let sh = sh as u32;
                    let high = m & !(m >> sh);
                    KnownBits {
                        known_zero: ((ka.known_zero >> sh) | high) & m,
                        known_one: (ka.known_one >> sh) & m,
                    }
                }
            } else {
                KnownBits::nothing()
            }
        }
        BinOp::AShr => {
            if let Some(sh) = b.as_const() {
                let sign = 1u64 << (w.bits() - 1);
                let sh = (sh as u32).min(w.bits() - 1);
                let high = m & !(m >> sh);
                let base_z = (ka.known_zero >> sh) & (m >> sh);
                let base_o = (ka.known_one >> sh) & (m >> sh);
                if ka.known_zero & sign != 0 {
                    KnownBits {
                        known_zero: base_z | high,
                        known_one: base_o,
                    }
                } else if ka.known_one & sign != 0 {
                    KnownBits {
                        known_zero: base_z,
                        known_one: base_o | high,
                    }
                } else {
                    KnownBits {
                        known_zero: base_z & !high,
                        known_one: base_o & !high,
                    }
                }
            } else {
                KnownBits::nothing()
            }
        }
        BinOp::Concat => {
            let lo_bits = b.width().bits();
            KnownBits {
                known_zero: ((ka.known_zero << lo_bits) | kb.known_zero) & m,
                known_one: ((ka.known_one << lo_bits) | kb.known_one) & m,
            }
        }
        BinOp::Eq | BinOp::Ne => {
            // Conflicting known bits decide (in)equality statically.
            let conflict =
                (ka.known_one & kb.known_zero) | (ka.known_zero & kb.known_one) != 0;
            if conflict {
                let v = u64::from(op == BinOp::Ne);
                KnownBits::constant(v, Width::BOOL)
            } else {
                KnownBits::nothing()
            }
        }
        BinOp::ULt | BinOp::ULe => {
            let ow = a.width();
            let (amin, amax) = (ka.umin(), ka.umax(ow));
            let (bmin, bmax) = (kb.umin(), kb.umax(ow));
            let strictly = op == BinOp::ULt;
            let surely_true = if strictly { amax < bmin } else { amax <= bmin };
            let surely_false = if strictly { amin >= bmax } else { amin > bmax };
            if surely_true {
                KnownBits::constant(1, Width::BOOL)
            } else if surely_false {
                KnownBits::constant(0, Width::BOOL)
            } else {
                KnownBits::nothing()
            }
        }
        BinOp::UDiv | BinOp::SDiv | BinOp::URem | BinOp::SRem | BinOp::SLt | BinOp::SLe => {
            KnownBits::nothing()
        }
    }
}

/// Simplifies an expression with all bits demanded.
///
/// This is the entry point used on path constraints and solver queries.
///
/// ```
/// use s2e_expr::{simplify, ExprBuilder, Width};
/// let b = ExprBuilder::new();
/// let x = b.var("x", Width::W32);
/// // ((x | 0xff) & 0xff) is the constant 0xff.
/// let e = b.and(
///     b.or(x, b.constant(0xff, Width::W32)),
///     b.constant(0xff, Width::W32),
/// );
/// let s = simplify(&e, &b);
/// assert_eq!(s.as_const(), Some(0xff));
/// ```
pub fn simplify(e: &ExprRef, builder: &ExprBuilder) -> ExprRef {
    simplify_with_demanded(e, e.width().mask(), builder)
}

/// Simplifies an expression given that only the bits in `demanded` can be
/// observed by the consumer.
pub fn simplify_with_demanded(e: &ExprRef, demanded: u64, builder: &ExprBuilder) -> ExprRef {
    let mut memo = HashMap::new();
    let out = demand_rec(e, demanded & e.width().mask(), builder, &mut memo);
    // Final known-bits sweep: collapse to a constant if everything the
    // consumer can see is known.
    let kb = known_bits(&out);
    if kb.all_known(demanded & out.width().mask()) && !out.is_const() {
        return builder.constant(kb.known_one & demanded, out.width());
    }
    out
}

type DemandMemo = HashMap<(usize, u64), ExprRef>;

fn demand_rec(e: &ExprRef, demanded: u64, b: &ExprBuilder, memo: &mut DemandMemo) -> ExprRef {
    let w = e.width();
    let demanded = demanded & w.mask();
    if demanded == 0 {
        return b.constant(0, w);
    }
    if let Some(hit) = memo.get(&(key(e), demanded)) {
        return hit.clone();
    }
    let kb = known_bits(e);
    if kb.all_known(demanded) {
        let out = b.constant(kb.known_one & demanded, w);
        memo.insert((key(e), demanded), out.clone());
        return out;
    }
    let out = match e.kind() {
        ExprKind::Const(_) | ExprKind::Var(..) => e.clone(),
        ExprKind::Unary(UnOp::Not, a) => {
            let sa = demand_rec(a, demanded, b, memo);
            b.not(sa)
        }
        ExprKind::Unary(UnOp::Neg, a) => {
            // Low bits up to the highest demanded bit matter (carries flow
            // upward only).
            let hi = 63 - demanded.leading_zeros().min(63);
            let sa = demand_rec(a, low_ones(hi + 1), b, memo);
            b.neg(sa)
        }
        ExprKind::Binary(op, x, y) => demand_binary(*op, x, y, demanded, w, b, memo),
        ExprKind::Extract { src, lo } => {
            let sa = demand_rec(src, demanded << lo, b, memo);
            b.extract(sa, *lo, w)
        }
        ExprKind::ZExt(src) => {
            let sa = demand_rec(src, demanded & src.width().mask(), b, memo);
            b.zext(sa, w)
        }
        ExprKind::SExt(src) => {
            let inner_mask = src.width().mask();
            if demanded & !inner_mask == 0 {
                // High (sign) bits unobserved: a zext of the simplified
                // source produces the same demanded bits.
                let sa = demand_rec(src, demanded & inner_mask, b, memo);
                b.zext(sa, w)
            } else {
                let sa = demand_rec(src, inner_mask, b, memo);
                b.sext(sa, w)
            }
        }
        ExprKind::Ite(c, t, f) => {
            let sc = demand_rec(c, 1, b, memo);
            let st = demand_rec(t, demanded, b, memo);
            let sf = demand_rec(f, demanded, b, memo);
            b.ite(sc, st, sf)
        }
    };
    memo.insert((key(e), demanded), out.clone());
    out
}

fn demand_binary(
    op: BinOp,
    x: &ExprRef,
    y: &ExprRef,
    demanded: u64,
    w: Width,
    b: &ExprBuilder,
    memo: &mut DemandMemo,
) -> ExprRef {
    match op {
        BinOp::And => {
            // Bits masked off by known zeros of one side are not demanded of
            // the other.
            let kx = known_bits(x);
            let ky = known_bits(y);
            // If y's known-one bits cover all demanded bits, y is identity.
            if ky.known_one & demanded == demanded {
                return demand_rec(x, demanded, b, memo);
            }
            if kx.known_one & demanded == demanded {
                return demand_rec(y, demanded, b, memo);
            }
            let sx = demand_rec(x, demanded & !ky.known_zero, b, memo);
            let sy = demand_rec(y, demanded & !kx.known_zero, b, memo);
            b.and(sx, sy)
        }
        BinOp::Or => {
            let kx = known_bits(x);
            let ky = known_bits(y);
            if ky.known_zero & demanded == demanded {
                return demand_rec(x, demanded, b, memo);
            }
            if kx.known_zero & demanded == demanded {
                return demand_rec(y, demanded, b, memo);
            }
            let sx = demand_rec(x, demanded & !ky.known_one, b, memo);
            let sy = demand_rec(y, demanded & !kx.known_one, b, memo);
            b.or(sx, sy)
        }
        BinOp::Xor => {
            let sx = demand_rec(x, demanded, b, memo);
            let sy = demand_rec(y, demanded, b, memo);
            b.xor(sx, sy)
        }
        BinOp::Add | BinOp::Sub | BinOp::Mul => {
            let hi = 63 - demanded.leading_zeros().min(63);
            let dm = low_ones(hi + 1);
            let sx = demand_rec(x, dm, b, memo);
            let sy = demand_rec(y, dm, b, memo);
            b.binop(op, sx, sy)
        }
        BinOp::Shl => {
            if let Some(sh) = y.as_const() {
                if sh < w.bits() as u64 {
                    let sx = demand_rec(x, demanded >> sh, b, memo);
                    return b.shl(sx, y.clone());
                }
            }
            let sx = demand_rec(x, w.mask(), b, memo);
            let sy = demand_rec(y, w.mask(), b, memo);
            b.shl(sx, sy)
        }
        BinOp::LShr => {
            if let Some(sh) = y.as_const() {
                if sh < w.bits() as u64 {
                    let sx = demand_rec(x, (demanded << sh) & w.mask(), b, memo);
                    return b.lshr(sx, y.clone());
                }
            }
            let sx = demand_rec(x, w.mask(), b, memo);
            let sy = demand_rec(y, w.mask(), b, memo);
            b.lshr(sx, sy)
        }
        BinOp::Concat => {
            let lo_bits = y.width().bits();
            let d_lo = demanded & y.width().mask();
            let d_hi = demanded >> lo_bits;
            if d_hi == 0 {
                let sy = demand_rec(y, d_lo, b, memo);
                return b.zext(sy, w);
            }
            let sx = demand_rec(x, d_hi, b, memo);
            let sy = if d_lo == 0 {
                b.constant(0, y.width())
            } else {
                demand_rec(y, d_lo, b, memo)
            };
            b.concat(sx, sy)
        }
        // Every operand bit can influence the result: demand all of them,
        // but still simplify the children.
        _ => {
            let full = x.width().mask();
            let sx = demand_rec(x, full, b, memo);
            let sy = demand_rec(y, full, b, memo);
            b.binop(op, sx, sy)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{eval, Assignment};

    fn b() -> ExprBuilder {
        ExprBuilder::new()
    }

    #[test]
    fn known_bits_of_masked_value() {
        let b = b();
        let x = b.var("x", Width::W32);
        let e = b.and(x, b.constant(0x0000_ff00, Width::W32));
        let kb = known_bits(&e);
        assert_eq!(kb.known_zero, 0xffff_00ff);
        assert_eq!(kb.known_one, 0);
    }

    #[test]
    fn known_bits_through_or() {
        let b = b();
        let x = b.var("x", Width::W8);
        let e = b.or(x, b.constant(0xf0, Width::W8));
        let kb = known_bits(&e);
        assert_eq!(kb.known_one, 0xf0);
        assert_eq!(kb.known_zero, 0);
    }

    #[test]
    fn known_bits_through_shifts() {
        let b = b();
        let x = b.var("x", Width::W8);
        let e = b.shl(x.clone(), b.constant(4, Width::W8));
        let kb = known_bits(&e);
        assert_eq!(kb.known_zero & 0x0f, 0x0f);
        let e = b.lshr(x, b.constant(4, Width::W8));
        let kb = known_bits(&e);
        assert_eq!(kb.known_zero & 0xf0, 0xf0);
    }

    #[test]
    fn known_bits_add_carry() {
        let b = b();
        let x = b.var("x", Width::W8);
        // (x & 0xf0) + 1: the low 4 bits are known 0001.
        let masked = b.and(x, b.constant(0xf0, Width::W8));
        let e = b.add(masked, b.constant(1, Width::W8));
        let kb = known_bits(&e);
        assert_eq!(kb.known_one & 0x0f, 0x01);
        assert_eq!(kb.known_zero & 0x0f, 0x0e);
    }

    #[test]
    fn eq_decided_by_conflicting_bits() {
        let b = b();
        let x = b.var("x", Width::W8);
        let lhs = b.or(x.clone(), b.constant(0x01, Width::W8));
        // lhs has bit 0 set; comparing with an even constant is stably false.
        let e = b.eq(lhs, b.constant(0x10, Width::W8));
        assert_eq!(known_bits(&e).as_const(Width::BOOL), Some(0));
        let s = simplify(&e, &b);
        assert_eq!(s.as_const(), Some(0));
    }

    #[test]
    fn ult_decided_by_ranges() {
        let b = b();
        let x = b.var("x", Width::W8);
        let small = b.and(x.clone(), b.constant(0x0f, Width::W8)); // <= 15
        let big = b.or(x, b.constant(0x80, Width::W8)); // >= 128
        let e = b.ult(small, big);
        let s = simplify(&e, &b);
        assert_eq!(s.as_const(), Some(1));
    }

    #[test]
    fn demanded_bits_removes_dead_or() {
        let b = b();
        let x = b.var("x", Width::W32);
        // Setting high bits then looking at only the low byte: the OR dies.
        let e = b.or(x.clone(), b.constant(0xff00_0000, Width::W32));
        let s = simplify_with_demanded(&e, 0xff, &b);
        assert_eq!(s, x);
    }

    #[test]
    fn demanded_bits_removes_dead_mask() {
        let b = b();
        let x = b.var("x", Width::W32);
        // Masking to the low 16 bits is invisible if only bit 3 is demanded.
        let e = b.and(x.clone(), b.constant(0xffff, Width::W32));
        let s = simplify_with_demanded(&e, 0x8, &b);
        assert_eq!(s, x);
    }

    #[test]
    fn flag_extraction_pattern_collapses() {
        // The eflags pattern from the paper: assemble flags into a word,
        // mask one back out.
        let b = b();
        let zf = b.var("zf", Width::BOOL);
        let cf = b.var("cf", Width::BOOL);
        let zf32 = b.zext(zf.clone(), Width::W32);
        let cf32 = b.zext(cf, Width::W32);
        let flags = b.or(
            b.shl(zf32, b.constant(6, Width::W32)),
            b.shl(cf32, b.constant(0, Width::W32)),
        );
        // Extract ZF: (flags >> 6) & 1
        let zf_back = b.and(
            b.lshr(flags, b.constant(6, Width::W32)),
            b.constant(1, Width::W32),
        );
        let s = simplify(&zf_back, &b);
        // The CF contribution must be gone: result depends only on zf.
        let vars = crate::visit::collect_vars(&s);
        assert_eq!(vars.len(), 1);
        assert_eq!(&*vars[0].1, "zf");
    }

    #[test]
    fn simplify_preserves_semantics_smoke() {
        let b = b();
        let x = b.var("x", Width::W8);
        let e = b.add(
            b.and(x.clone(), b.constant(0x3c, Width::W8)),
            b.constant(0x11, Width::W8),
        );
        let s = simplify(&e, &b);
        for v in [0u64, 1, 0x3c, 0x7f, 0xff, 0xa5] {
            let mut asg = Assignment::new();
            asg.set_by_name("x", v);
            assert_eq!(eval(&e, &asg).unwrap(), eval(&s, &asg).unwrap());
        }
    }

    #[test]
    fn fully_known_collapses_to_constant() {
        let b = b();
        let x = b.var("x", Width::W8);
        // (x | 0xff) has all bits known.
        let e = b.or(x, b.constant(0xff, Width::W8));
        let s = simplify(&e, &b);
        assert_eq!(s.as_const(), Some(0xff));
    }

    #[test]
    fn zero_demanded_is_zero() {
        let b = b();
        let x = b.var("x", Width::W8);
        let s = simplify_with_demanded(&x, 0, &b);
        assert_eq!(s.as_const(), Some(0));
    }

    #[test]
    fn node_count_shrinks() {
        let b = b();
        let x = b.var("x", Width::W32);
        let mut e = x.clone();
        // Pile up masking noise.
        for i in 0..8 {
            e = b.or(e, b.constant(1 << (i + 16), Width::W32));
            e = b.and(e, b.constant(0xffff_ffff, Width::W32));
        }
        let before = crate::visit::node_count(&e);
        let s = simplify_with_demanded(&e, 0xffff, &b);
        let after = crate::visit::node_count(&s);
        assert!(after < before, "{after} !< {before}");
        assert_eq!(s, x);
    }
}
