//! Expression node definitions.

use crate::width::Width;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, OnceLock};

/// Identifier of a symbolic variable.
///
/// Variables are created by [`crate::ExprBuilder::var`]; the id is unique
/// within a builder. Fresh variables introduced by consistency models (e.g.
/// the re-symbolified return value of an environment call under local
/// consistency) get their own ids so constraints never alias.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct VarId(pub u64);

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// Unary bitvector operators.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum UnOp {
    /// Bitwise complement.
    Not,
    /// Two's-complement negation.
    Neg,
}

/// Binary bitvector operators.
///
/// Comparison operators produce a [`Width::BOOL`] result; all others
/// produce a result of the operand width.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Unsigned division; division by zero yields all-ones (hardware-style).
    UDiv,
    /// Signed division; division by zero yields all-ones.
    SDiv,
    /// Unsigned remainder; remainder by zero yields the dividend.
    URem,
    /// Signed remainder; remainder by zero yields the dividend.
    SRem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Left shift; shift amounts >= width produce zero.
    Shl,
    /// Logical right shift; shift amounts >= width produce zero.
    LShr,
    /// Arithmetic right shift; shift amounts >= width produce the sign fill.
    AShr,
    /// Equality (boolean result).
    Eq,
    /// Inequality (boolean result).
    Ne,
    /// Unsigned less-than (boolean result).
    ULt,
    /// Unsigned less-or-equal (boolean result).
    ULe,
    /// Signed less-than (boolean result).
    SLt,
    /// Signed less-or-equal (boolean result).
    SLe,
    /// Concatenation: `Concat(hi, lo)` has width `hi.width + lo.width`.
    Concat,
}

impl BinOp {
    /// True if this operator yields a 1-bit (boolean) result.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::ULt | BinOp::ULe | BinOp::SLt | BinOp::SLe
        )
    }

    /// True for operators `op` with `x op y == y op x`.
    pub fn is_commutative(self) -> bool {
        matches!(
            self,
            BinOp::Add
                | BinOp::Mul
                | BinOp::And
                | BinOp::Or
                | BinOp::Xor
                | BinOp::Eq
                | BinOp::Ne
        )
    }
}

/// The shape of an expression node.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum ExprKind {
    /// A constant, truncated to the node width.
    Const(u64),
    /// A free symbolic variable with a human-readable name.
    Var(VarId, Arc<str>),
    /// Unary operation.
    Unary(UnOp, ExprRef),
    /// Binary operation.
    Binary(BinOp, ExprRef, ExprRef),
    /// Bit extraction: bits `lo .. lo + width` of the operand.
    Extract { src: ExprRef, lo: u32 },
    /// Zero extension to the node width.
    ZExt(ExprRef),
    /// Sign extension to the node width.
    SExt(ExprRef),
    /// If-then-else; the condition has boolean width, branches have the
    /// node width.
    Ite(ExprRef, ExprRef, ExprRef),
}

/// An expression node: kind, result width, and a cached structural hash.
pub struct Expr {
    kind: ExprKind,
    width: Width,
    hash: u64,
    /// Sorted, deduplicated ids of the variables below this node, filled
    /// lazily by [`ExprRef::var_ids`]. Excluded from equality and hashing
    /// (it is derived from `kind`).
    vars: OnceLock<Arc<[VarId]>>,
}

impl Expr {
    pub(crate) fn new(kind: ExprKind, width: Width) -> Expr {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        kind.hash(&mut hasher);
        width.hash(&mut hasher);
        let hash = hasher.finish();
        Expr {
            kind,
            width,
            hash,
            vars: OnceLock::new(),
        }
    }

    /// The shape of this node.
    pub fn kind(&self) -> &ExprKind {
        &self.kind
    }

    /// Result width of this node.
    pub fn width(&self) -> Width {
        self.width
    }

    /// Cached structural hash (stable across clones, not across processes).
    pub fn cached_hash(&self) -> u64 {
        self.hash
    }

    /// If the expression is a constant, its value.
    pub fn as_const(&self) -> Option<u64> {
        match self.kind {
            ExprKind::Const(v) => Some(v),
            _ => None,
        }
    }

    /// True if the expression is a constant.
    pub fn is_const(&self) -> bool {
        matches!(self.kind, ExprKind::Const(_))
    }
}

/// Manual impl so the lazily-filled `vars` memo stays invisible: like
/// equality and hashing, `Debug` must not depend on whether a derived
/// cache happens to be populated yet (state fingerprints render
/// expressions via `Debug` and must be stable over time).
impl fmt::Debug for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Expr")
            .field("kind", &self.kind)
            .field("width", &self.width)
            .finish()
    }
}

impl PartialEq for Expr {
    fn eq(&self, other: &Self) -> bool {
        self.hash == other.hash && self.width == other.width && self.kind == other.kind
    }
}

impl Eq for Expr {}

impl Hash for Expr {
    fn hash<H: Hasher>(&self, state: &mut H) {
        state.write_u64(self.hash);
    }
}

/// Shared reference to an immutable expression node.
///
/// Cloning is a reference-count bump; equality is structural (fast-rejected
/// by the cached hash). Pointer-equal references are trivially equal, which
/// makes comparisons cheap for shared sub-DAGs.
#[derive(Clone, Debug)]
pub struct ExprRef(Arc<Expr>);

impl ExprRef {
    pub(crate) fn new(kind: ExprKind, width: Width) -> ExprRef {
        ExprRef(Arc::new(Expr::new(kind, width)))
    }

    /// True if both references point at the very same node.
    pub fn ptr_eq(&self, other: &ExprRef) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }

    /// Sorted, deduplicated ids of the variables occurring in this DAG.
    ///
    /// Computed at most once per node and memoized inside the node, so
    /// repeated calls — and calls on any expression sharing sub-DAGs with
    /// one already queried — cost a pointer read. Constraint-independence
    /// slicing leans on this: partitioning a path-constraint set touches
    /// each DAG node once over the whole exploration, not once per query.
    pub fn var_ids(&self) -> &[VarId] {
        if let Some(v) = self.0.vars.get() {
            return v;
        }
        self.fill_vars();
        self.0.vars.get().expect("fill_vars populates this node")
    }

    /// Fills the `vars` memo for every node below `self` that lacks one.
    /// Explicit stack: constraint DAGs can be deep enough to overflow the
    /// call stack.
    fn fill_vars(&self) {
        // (node, children_done) pairs, as in `visit::postorder`.
        let mut stack: Vec<(ExprRef, bool)> = vec![(self.clone(), false)];
        while let Some((node, children_done)) = stack.pop() {
            if node.0.vars.get().is_some() {
                continue;
            }
            if !children_done {
                stack.push((node.clone(), true));
                match node.kind() {
                    ExprKind::Const(_) | ExprKind::Var(..) => {}
                    ExprKind::Unary(_, a) | ExprKind::ZExt(a) | ExprKind::SExt(a) => {
                        stack.push((a.clone(), false));
                    }
                    ExprKind::Extract { src, .. } => stack.push((src.clone(), false)),
                    ExprKind::Binary(_, a, b) => {
                        stack.push((a.clone(), false));
                        stack.push((b.clone(), false));
                    }
                    ExprKind::Ite(c, t, e) => {
                        stack.push((c.clone(), false));
                        stack.push((t.clone(), false));
                        stack.push((e.clone(), false));
                    }
                }
                continue;
            }
            let vars: Arc<[VarId]> = match node.kind() {
                ExprKind::Const(_) => Vec::new().into(),
                ExprKind::Var(id, _) => vec![*id].into(),
                ExprKind::Unary(_, a) | ExprKind::ZExt(a) | ExprKind::SExt(a) => {
                    child_vars(a).clone()
                }
                ExprKind::Extract { src, .. } => child_vars(src).clone(),
                ExprKind::Binary(_, a, b) => merge_var_sets(&[a, b]),
                ExprKind::Ite(c, t, e) => merge_var_sets(&[c, t, e]),
            };
            // A concurrent fill of a shared sub-DAG may have won the race;
            // both sides computed the same set, so the loser's is dropped.
            let _ = node.0.vars.set(vars);
        }
    }
}

fn child_vars(child: &ExprRef) -> &Arc<[VarId]> {
    child
        .0
        .vars
        .get()
        .expect("children are filled before their parents")
}

/// Union of the children's (sorted) variable sets. Single-owner sets are
/// shared, not copied — in a constraint DAG most interior nodes only
/// narrow one variable.
fn merge_var_sets(children: &[&ExprRef]) -> Arc<[VarId]> {
    let mut nonempty: Vec<&Arc<[VarId]>> = Vec::with_capacity(children.len());
    for c in children {
        let s = child_vars(c);
        if !s.is_empty() {
            nonempty.push(s);
        }
    }
    match nonempty.len() {
        0 => Vec::new().into(),
        1 => nonempty[0].clone(),
        _ => {
            let mut merged: Vec<VarId> =
                nonempty.iter().flat_map(|s| s.iter().copied()).collect();
            merged.sort_unstable();
            merged.dedup();
            merged.into()
        }
    }
}

impl std::ops::Deref for ExprRef {
    type Target = Expr;

    fn deref(&self) -> &Expr {
        &self.0
    }
}

impl PartialEq for ExprRef {
    fn eq(&self, other: &Self) -> bool {
        self.ptr_eq(other) || *self.0 == *other.0
    }
}

impl Eq for ExprRef {}

impl Hash for ExprRef {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.0.hash(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn const_accessors() {
        let e = ExprRef::new(ExprKind::Const(42), Width::W32);
        assert!(e.is_const());
        assert_eq!(e.as_const(), Some(42));
        assert_eq!(e.width(), Width::W32);
    }

    #[test]
    fn structural_equality() {
        let a = ExprRef::new(ExprKind::Const(7), Width::W8);
        let b = ExprRef::new(ExprKind::Const(7), Width::W8);
        let c = ExprRef::new(ExprKind::Const(7), Width::W16);
        assert_eq!(a, b);
        assert!(!a.ptr_eq(&b));
        assert_ne!(a, c);
    }

    #[test]
    fn clone_is_ptr_eq() {
        let a = ExprRef::new(ExprKind::Const(1), Width::BOOL);
        let b = a.clone();
        assert!(a.ptr_eq(&b));
    }

    #[test]
    fn comparison_ops_classified() {
        assert!(BinOp::Eq.is_comparison());
        assert!(BinOp::SLt.is_comparison());
        assert!(!BinOp::Add.is_comparison());
        assert!(!BinOp::Concat.is_comparison());
    }

    #[test]
    fn commutativity_classified() {
        assert!(BinOp::Add.is_commutative());
        assert!(BinOp::Xor.is_commutative());
        assert!(!BinOp::Sub.is_commutative());
        assert!(!BinOp::Shl.is_commutative());
        assert!(!BinOp::Concat.is_commutative());
    }

    #[test]
    fn var_ids_sorted_deduped_and_memoized() {
        let x = ExprRef::new(ExprKind::Var(VarId(2), "x".into()), Width::W8);
        let y = ExprRef::new(ExprKind::Var(VarId(1), "y".into()), Width::W8);
        let sum = ExprRef::new(ExprKind::Binary(BinOp::Add, x.clone(), y.clone()), Width::W8);
        let e = ExprRef::new(
            ExprKind::Binary(BinOp::Add, sum.clone(), x.clone()),
            Width::W8,
        );
        assert_eq!(e.var_ids(), &[VarId(1), VarId(2)]);
        // The walk above filled the shared sub-DAG's memo too.
        assert!(sum.0.vars.get().is_some());
        assert_eq!(sum.var_ids(), &[VarId(1), VarId(2)]);
        assert_eq!(x.var_ids(), &[VarId(2)]);
    }

    #[test]
    fn var_ids_of_const_is_empty() {
        let c = ExprRef::new(ExprKind::Const(3), Width::W8);
        assert!(c.var_ids().is_empty());
        let n = ExprRef::new(ExprKind::Unary(UnOp::Not, c), Width::W8);
        assert!(n.var_ids().is_empty());
    }

    #[test]
    fn var_ids_does_not_disturb_equality() {
        let a = ExprRef::new(ExprKind::Var(VarId(0), "v".into()), Width::W8);
        let b = ExprRef::new(ExprKind::Var(VarId(0), "v".into()), Width::W8);
        let _ = a.var_ids(); // a memoized, b not
        assert_eq!(a, b);
        assert_eq!(a.cached_hash(), b.cached_hash());
    }

    #[test]
    fn hash_equal_for_equal_nodes() {
        let a = ExprRef::new(ExprKind::Const(9), Width::W32);
        let b = ExprRef::new(ExprKind::Const(9), Width::W32);
        assert_eq!(a.cached_hash(), b.cached_hash());
    }
}
