//! Traversal utilities over expression DAGs.

use crate::expr::{ExprKind, ExprRef, VarId};
use std::collections::HashSet;
use std::sync::Arc;

fn key(e: &ExprRef) -> usize {
    let p: &crate::expr::Expr = e;
    p as *const _ as usize
}

/// Visits every distinct node of the DAG in post-order (children first).
///
/// Shared sub-DAGs are visited once.
pub fn postorder(root: &ExprRef, mut f: impl FnMut(&ExprRef)) {
    let mut seen: HashSet<usize> = HashSet::new();
    // Explicit stack: (node, children_done).
    let mut stack: Vec<(ExprRef, bool)> = vec![(root.clone(), false)];
    while let Some((node, children_done)) = stack.pop() {
        if children_done {
            f(&node);
            continue;
        }
        if !seen.insert(key(&node)) {
            continue;
        }
        stack.push((node.clone(), true));
        match node.kind() {
            ExprKind::Const(_) | ExprKind::Var(..) => {}
            ExprKind::Unary(_, a) | ExprKind::ZExt(a) | ExprKind::SExt(a) => {
                stack.push((a.clone(), false));
            }
            ExprKind::Extract { src, .. } => stack.push((src.clone(), false)),
            ExprKind::Binary(_, a, b) => {
                stack.push((a.clone(), false));
                stack.push((b.clone(), false));
            }
            ExprKind::Ite(c, t, e) => {
                stack.push((c.clone(), false));
                stack.push((t.clone(), false));
                stack.push((e.clone(), false));
            }
        }
    }
}

/// Collects the distinct variables of an expression, sorted by id.
pub fn collect_vars(root: &ExprRef) -> Vec<(VarId, Arc<str>, crate::Width)> {
    let mut vars = Vec::new();
    let mut seen = HashSet::new();
    postorder(root, |n| {
        if let ExprKind::Var(id, name) = n.kind() {
            if seen.insert(*id) {
                vars.push((*id, name.clone(), n.width()));
            }
        }
    });
    vars.sort_by_key(|(id, _, _)| *id);
    vars
}

/// Number of distinct nodes in the DAG.
pub fn node_count(root: &ExprRef) -> usize {
    let mut n = 0;
    postorder(root, |_| n += 1);
    n
}

/// Depth of the DAG (a leaf has depth 1).
pub fn depth(root: &ExprRef) -> usize {
    fn rec(e: &ExprRef, memo: &mut std::collections::HashMap<usize, usize>) -> usize {
        if let Some(d) = memo.get(&key(e)) {
            return *d;
        }
        let d = 1 + match e.kind() {
            ExprKind::Const(_) | ExprKind::Var(..) => 0,
            ExprKind::Unary(_, a) | ExprKind::ZExt(a) | ExprKind::SExt(a) => rec(a, memo),
            ExprKind::Extract { src, .. } => rec(src, memo),
            ExprKind::Binary(_, a, b) => rec(a, memo).max(rec(b, memo)),
            ExprKind::Ite(c, t, f) => rec(c, memo).max(rec(t, memo)).max(rec(f, memo)),
        };
        memo.insert(key(e), d);
        d
    }
    rec(root, &mut std::collections::HashMap::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ExprBuilder;
    use crate::width::Width;

    #[test]
    fn collects_vars_once() {
        let b = ExprBuilder::new();
        let x = b.var("x", Width::W8);
        let y = b.var("y", Width::W8);
        let e = b.add(b.add(x.clone(), y.clone()), x.clone());
        let vars = collect_vars(&e);
        assert_eq!(vars.len(), 2);
        assert_eq!(&*vars[0].1, "x");
        assert_eq!(&*vars[1].1, "y");
    }

    #[test]
    fn node_count_counts_shared_once() {
        let b = ExprBuilder::new();
        let x = b.var("x", Width::W8);
        let shared = b.add(x.clone(), b.constant(1, Width::W8));
        let e = b.mul(shared.clone(), shared.clone());
        // Nodes: x, 1, shared, e == 4 (shared counted once).
        assert_eq!(node_count(&e), 4);
    }

    #[test]
    fn var_ids_agrees_with_collect_vars() {
        let b = ExprBuilder::new();
        let x = b.var("x", Width::W8);
        let y = b.var("y", Width::W8);
        let z = b.var("z", Width::W8);
        let e = b.ite(
            b.ult(x.clone(), y.clone()),
            b.add(y, b.constant(1, Width::W8)),
            z,
        );
        let from_collect: Vec<_> = collect_vars(&e).iter().map(|(id, _, _)| *id).collect();
        assert_eq!(e.var_ids(), &from_collect[..]);
        assert_eq!(e.var_ids().len(), 3);
    }

    #[test]
    fn depth_of_leaf_is_one() {
        let b = ExprBuilder::new();
        assert_eq!(depth(&b.constant(0, Width::W8)), 1);
        let x = b.var("x", Width::W8);
        assert_eq!(depth(&x), 1);
        let e = b.add(x, b.constant(1, Width::W8));
        assert_eq!(depth(&e), 2);
    }

    #[test]
    fn postorder_visits_children_first() {
        let b = ExprBuilder::new();
        let x = b.var("x", Width::W8);
        let e = b.add(x, b.constant(1, Width::W8));
        let mut order = Vec::new();
        postorder(&e, |n| {
            order.push(format!("{:?}", std::mem::discriminant(n.kind())))
        });
        assert_eq!(order.len(), 3);
        // The root (Binary) must come last.
        let root_disc = format!("{:?}", std::mem::discriminant(e.kind()));
        assert_eq!(order.last().unwrap(), &root_disc);
    }
}
