//! Concrete evaluation of expressions under a variable assignment.

use crate::expr::{BinOp, ExprKind, ExprRef, VarId};
use crate::fold::{apply_binop, apply_concat, apply_extract, apply_unop};
use std::collections::HashMap;
use std::fmt;

/// A mapping from symbolic variables to concrete values.
///
/// Used to evaluate expressions (e.g. to check a solver model, to replay a
/// concrete path for a bug report, or to concretize a value at a
/// symbolic→concrete transition).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Assignment {
    by_id: HashMap<VarId, u64>,
    by_name: HashMap<String, u64>,
}

impl Assignment {
    /// Creates an empty assignment.
    pub fn new() -> Assignment {
        Assignment::default()
    }

    /// Binds a variable id to a value.
    pub fn set(&mut self, var: VarId, value: u64) {
        self.by_id.insert(var, value);
    }

    /// Binds every variable with the given name to a value.
    ///
    /// Name bindings are consulted when no id binding exists; they are
    /// convenient in tests and reports.
    pub fn set_by_name(&mut self, name: &str, value: u64) {
        self.by_name.insert(name.to_string(), value);
    }

    /// Looks up a variable, ids taking precedence over names.
    pub fn get(&self, var: VarId, name: &str) -> Option<u64> {
        self.by_id
            .get(&var)
            .or_else(|| self.by_name.get(name))
            .copied()
    }

    /// Iterates over id bindings.
    pub fn iter(&self) -> impl Iterator<Item = (VarId, u64)> + '_ {
        self.by_id.iter().map(|(k, v)| (*k, *v))
    }

    /// Number of id bindings.
    pub fn len(&self) -> usize {
        self.by_id.len()
    }

    /// True if there are no bindings at all.
    pub fn is_empty(&self) -> bool {
        self.by_id.is_empty() && self.by_name.is_empty()
    }
}

impl FromIterator<(VarId, u64)> for Assignment {
    fn from_iter<T: IntoIterator<Item = (VarId, u64)>>(iter: T) -> Assignment {
        let mut a = Assignment::new();
        for (k, v) in iter {
            a.set(k, v);
        }
        a
    }
}

/// Error produced when evaluation meets an unbound variable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EvalError {
    /// The unbound variable.
    pub var: VarId,
    /// Its human-readable name.
    pub name: String,
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unbound variable {} ({})", self.var, self.name)
    }
}

impl std::error::Error for EvalError {}

/// Evaluates `e` under `asg`, returning the value truncated to the
/// expression width.
///
/// # Errors
///
/// Returns [`EvalError`] if a variable in `e` has no binding.
///
/// ```
/// use s2e_expr::{eval, Assignment, ExprBuilder, Width};
/// let b = ExprBuilder::new();
/// let x = b.var("x", Width::W8);
/// let e = b.add(x, b.constant(1, Width::W8));
/// let mut asg = Assignment::new();
/// asg.set_by_name("x", 0xff);
/// assert_eq!(eval(&e, &asg).unwrap(), 0); // wraps at 8 bits
/// ```
pub fn eval(e: &ExprRef, asg: &Assignment) -> Result<u64, EvalError> {
    let mut memo: HashMap<usize, u64> = HashMap::new();
    eval_rec(e, asg, &mut memo)
}

fn eval_rec(
    e: &ExprRef,
    asg: &Assignment,
    memo: &mut HashMap<usize, u64>,
) -> Result<u64, EvalError> {
    let k = {
        let p: &crate::expr::Expr = e;
        p as *const _ as usize
    };
    if let Some(v) = memo.get(&k) {
        return Ok(*v);
    }
    let w = e.width();
    let v = match e.kind() {
        ExprKind::Const(v) => *v,
        ExprKind::Var(id, name) => asg.get(*id, name).map(|v| w.truncate(v)).ok_or_else(|| {
            EvalError {
                var: *id,
                name: name.to_string(),
            }
        })?,
        ExprKind::Unary(op, a) => apply_unop(*op, eval_rec(a, asg, memo)?, w),
        ExprKind::Binary(BinOp::Concat, hi, lo) => {
            let h = eval_rec(hi, asg, memo)?;
            let l = eval_rec(lo, asg, memo)?;
            apply_concat(h, hi.width(), l, lo.width())
        }
        ExprKind::Binary(op, a, b) => {
            let x = eval_rec(a, asg, memo)?;
            let y = eval_rec(b, asg, memo)?;
            apply_binop(*op, x, y, a.width())
        }
        ExprKind::Extract { src, lo } => apply_extract(eval_rec(src, asg, memo)?, *lo, w),
        ExprKind::ZExt(src) => eval_rec(src, asg, memo)?,
        ExprKind::SExt(src) => {
            let v = eval_rec(src, asg, memo)?;
            w.truncate(src.width().sign_extend(v) as u64)
        }
        ExprKind::Ite(c, t, f) => {
            if eval_rec(c, asg, memo)? == 1 {
                eval_rec(t, asg, memo)?
            } else {
                eval_rec(f, asg, memo)?
            }
        }
    };
    memo.insert(k, v);
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ExprBuilder;
    use crate::width::Width;

    #[test]
    fn unbound_variable_errors() {
        let b = ExprBuilder::new();
        let x = b.var("x", Width::W8);
        let err = eval(&x, &Assignment::new()).unwrap_err();
        assert_eq!(err.name, "x");
    }

    #[test]
    fn id_binding_beats_name_binding() {
        let b = ExprBuilder::new();
        let x = b.var("x", Width::W8);
        let mut asg = Assignment::new();
        asg.set_by_name("x", 1);
        if let ExprKind::Var(id, _) = x.kind() {
            asg.set(*id, 2);
        }
        assert_eq!(eval(&x, &asg).unwrap(), 2);
    }

    #[test]
    fn evaluates_nested_expression() {
        let b = ExprBuilder::new();
        let x = b.var("x", Width::W16);
        let y = b.var("y", Width::W16);
        // (x + y) * 2 == ...
        let e = b.mul(b.add(x, y), b.constant(2, Width::W16));
        let mut asg = Assignment::new();
        asg.set_by_name("x", 10);
        asg.set_by_name("y", 20);
        assert_eq!(eval(&e, &asg).unwrap(), 60);
    }

    #[test]
    fn evaluates_ite_both_ways() {
        let b = ExprBuilder::new();
        let c = b.var("c", Width::BOOL);
        let e = b.ite(c, b.constant(7, Width::W8), b.constant(9, Width::W8));
        let mut asg = Assignment::new();
        asg.set_by_name("c", 1);
        assert_eq!(eval(&e, &asg).unwrap(), 7);
        asg.set_by_name("c", 0);
        assert_eq!(eval(&e, &asg).unwrap(), 9);
    }

    #[test]
    fn values_truncated_to_width() {
        let b = ExprBuilder::new();
        let x = b.var("x", Width::W8);
        let mut asg = Assignment::new();
        asg.set_by_name("x", 0x1234);
        assert_eq!(eval(&x, &asg).unwrap(), 0x34);
    }

    #[test]
    fn concat_extract_round_trip() {
        let b = ExprBuilder::new();
        let x = b.var("x", Width::W8);
        let y = b.var("y", Width::W8);
        let c = b.concat(x, y);
        let mut asg = Assignment::new();
        asg.set_by_name("x", 0xab);
        asg.set_by_name("y", 0xcd);
        assert_eq!(eval(&c, &asg).unwrap(), 0xabcd);
        let hi = b.extract(c, 8, Width::W8);
        assert_eq!(eval(&hi, &asg).unwrap(), 0xab);
    }

    #[test]
    fn assignment_from_iterator() {
        let asg: Assignment = vec![(VarId(0), 5u64), (VarId(1), 6u64)]
            .into_iter()
            .collect();
        assert_eq!(asg.len(), 2);
        assert_eq!(asg.get(VarId(0), ""), Some(5));
    }
}
