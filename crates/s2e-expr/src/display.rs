//! Human-readable rendering of expressions (SMT-LIB-flavored prefix form).

use crate::expr::{BinOp, Expr, ExprKind, UnOp};
use std::fmt;

fn binop_name(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "bvadd",
        BinOp::Sub => "bvsub",
        BinOp::Mul => "bvmul",
        BinOp::UDiv => "bvudiv",
        BinOp::SDiv => "bvsdiv",
        BinOp::URem => "bvurem",
        BinOp::SRem => "bvsrem",
        BinOp::And => "bvand",
        BinOp::Or => "bvor",
        BinOp::Xor => "bvxor",
        BinOp::Shl => "bvshl",
        BinOp::LShr => "bvlshr",
        BinOp::AShr => "bvashr",
        BinOp::Eq => "=",
        BinOp::Ne => "distinct",
        BinOp::ULt => "bvult",
        BinOp::ULe => "bvule",
        BinOp::SLt => "bvslt",
        BinOp::SLe => "bvsle",
        BinOp::Concat => "concat",
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind() {
            ExprKind::Const(v) => write!(f, "#x{v:x}:{}", self.width()),
            ExprKind::Var(id, name) => write!(f, "{name}@{id}:{}", self.width()),
            ExprKind::Unary(UnOp::Not, a) => write!(f, "(bvnot {})", **a),
            ExprKind::Unary(UnOp::Neg, a) => write!(f, "(bvneg {})", **a),
            ExprKind::Binary(op, a, b) => write!(f, "({} {} {})", binop_name(*op), **a, **b),
            ExprKind::Extract { src, lo } => {
                let hi = lo + self.width().bits() - 1;
                write!(f, "((_ extract {hi} {lo}) {})", **src)
            }
            ExprKind::ZExt(src) => write!(
                f,
                "((_ zero_extend {}) {})",
                self.width().bits() - src.width().bits(),
                **src
            ),
            ExprKind::SExt(src) => write!(
                f,
                "((_ sign_extend {}) {})",
                self.width().bits() - src.width().bits(),
                **src
            ),
            ExprKind::Ite(c, t, e) => write!(f, "(ite {} {} {})", **c, **t, **e),
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::ExprBuilder;
    use crate::width::Width;

    #[test]
    fn renders_constants_and_vars() {
        let b = ExprBuilder::new();
        assert_eq!(format!("{}", *b.constant(255, Width::W8)), "#xff:w8");
        let x = b.var("x", Width::W32);
        assert_eq!(format!("{}", *x), "x@v0:w32");
    }

    #[test]
    fn renders_nested_ops() {
        let b = ExprBuilder::new();
        let x = b.var("x", Width::W8);
        let e = b.add(x, b.constant(1, Width::W8));
        assert_eq!(format!("{}", *e), "(bvadd x@v0:w8 #x1:w8)");
    }

    #[test]
    fn renders_extract_range() {
        let b = ExprBuilder::new();
        let x = b.var("x", Width::W32);
        let e = b.extract(x, 8, Width::W8);
        assert_eq!(format!("{}", *e), "((_ extract 15 8) x@v0:w32)");
    }

    #[test]
    fn debug_is_never_empty() {
        let b = ExprBuilder::new();
        let x = b.var("x", Width::W8);
        assert!(!format!("{x:?}").is_empty());
    }
}
