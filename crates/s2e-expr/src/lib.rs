//! Symbolic bitvector expressions for the S2E platform.
//!
//! This crate implements the expression substrate that the original S2E
//! obtained from KLEE: a directed acyclic graph of bitvector operations with
//! cached structural hashes, aggressive constant folding, and the
//! *bitfield-theory expression simplifier* described in §5 of the paper
//! (bottom-up known-bits propagation plus top-down demanded-bits
//! elimination).
//!
//! Expressions are immutable and shared via [`ExprRef`] (an `Arc`), so a
//! forked execution state can share whole sub-DAGs with its parent at zero
//! cost — the same copy-on-write discipline the paper applies to machine
//! state.
//!
//! # Example
//!
//! ```
//! use s2e_expr::{ExprBuilder, Width};
//!
//! let mut b = ExprBuilder::new();
//! let x = b.var("x", Width::W32);
//! // (x & 0xff00) >> 8 keeps only bits 8..16 of x.
//! let masked = b.and(x.clone(), b.constant(0xff00, Width::W32));
//! let byte = b.lshr(masked, b.constant(8, Width::W32));
//! // The simplifier knows the upper 16 bits are zero.
//! let kb = s2e_expr::known_bits(&byte);
//! assert_eq!(kb.known_zero & 0xffff_ff00, 0xffff_ff00);
//! ```

mod builder;
mod display;
mod eval;
mod expr;
pub mod fold;
mod simplify;
mod visit;
mod width;
pub mod wire;

pub use builder::{
    begin_var_capture, begin_var_replay, drain_var_capture, end_var_capture, end_var_replay,
    ExprBuilder,
};
pub use eval::{eval, Assignment, EvalError};
pub use expr::{BinOp, Expr, ExprKind, ExprRef, UnOp, VarId};
pub use simplify::{known_bits, simplify, simplify_with_demanded, KnownBits};
pub use visit::{collect_vars, depth, node_count, postorder};
pub use width::Width;

#[cfg(test)]
mod proptests;
