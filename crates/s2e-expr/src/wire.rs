//! Portable binary encoding of expression DAGs (DESIGN.md §17).
//!
//! The distributed tier ships constraints, journals, and cached solver
//! models between processes; everything symbolic bottoms out in
//! [`ExprRef`] DAGs, and this module is the one place that knows how to
//! flatten them. The encoding is a post-order node table — shared
//! sub-DAGs are written once and referenced by index — with `VarId`s,
//! names, and widths recorded verbatim, so the decoded DAG is
//! *structurally identical* to the source: equal under `Eq`, equal
//! `Debug` rendering, equal [`ExprRef::cached_hash`]. That structural
//! fidelity is what lets state fingerprints and shared-cache keys
//! transfer across process boundaries unchanged.
//!
//! Decoding never panics on malformed input: truncation yields
//! [`std::io::ErrorKind::UnexpectedEof`], anything else malformed
//! (bad tags, out-of-range widths, forward node references, oversized
//! tables) yields [`std::io::ErrorKind::InvalidData`].

use crate::eval::Assignment;
use crate::expr::{BinOp, ExprKind, ExprRef, UnOp, VarId};
use crate::visit::postorder;
use crate::width::Width;
use std::collections::HashMap;
use std::io;
use std::sync::Arc;

/// Hard cap on decoded node-table sizes: no legitimate constraint in
/// this engine comes close, and the cap keeps a hostile length prefix
/// from turning into an allocation bomb.
const MAX_NODES: u64 = 1 << 22;

/// LEB128-encodes `v` (the same varint the journal uses).
pub fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Cursor over a byte slice with checked, never-panicking reads.
#[derive(Debug)]
pub struct WireReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Shorthand for a malformed-input error.
pub fn bad_data(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

fn eof(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::UnexpectedEof, format!("truncated input reading {what}"))
}

impl<'a> WireReader<'a> {
    pub fn new(bytes: &'a [u8]) -> WireReader<'a> {
        WireReader { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// True when every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    pub fn read_u8(&mut self) -> io::Result<u8> {
        let b = *self.bytes.get(self.pos).ok_or_else(|| eof("byte"))?;
        self.pos += 1;
        Ok(b)
    }

    pub fn read_bytes(&mut self, n: usize) -> io::Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(eof("byte run"));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads a LEB128 varint, rejecting non-canonical over-length runs.
    pub fn read_varint(&mut self) -> io::Result<u64> {
        let mut v: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.read_u8().map_err(|_| eof("varint"))?;
            if shift >= 64 || (shift == 63 && byte > 1) {
                return Err(bad_data("varint overflows u64"));
            }
            v |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    /// Reads a varint and checks it fits a `usize` bounded by `cap`.
    pub fn read_len(&mut self, cap: u64, what: &str) -> io::Result<usize> {
        let v = self.read_varint()?;
        if v > cap {
            return Err(bad_data(format!("{what} length {v} exceeds cap {cap}")));
        }
        Ok(v as usize)
    }
}

fn unop_tag(op: UnOp) -> u8 {
    match op {
        UnOp::Not => 0,
        UnOp::Neg => 1,
    }
}

fn unop_from(tag: u8) -> io::Result<UnOp> {
    match tag {
        0 => Ok(UnOp::Not),
        1 => Ok(UnOp::Neg),
        t => Err(bad_data(format!("unknown unary op tag {t}"))),
    }
}

fn binop_tag(op: BinOp) -> u8 {
    match op {
        BinOp::Add => 0,
        BinOp::Sub => 1,
        BinOp::Mul => 2,
        BinOp::UDiv => 3,
        BinOp::SDiv => 4,
        BinOp::URem => 5,
        BinOp::SRem => 6,
        BinOp::And => 7,
        BinOp::Or => 8,
        BinOp::Xor => 9,
        BinOp::Shl => 10,
        BinOp::LShr => 11,
        BinOp::AShr => 12,
        BinOp::Eq => 13,
        BinOp::Ne => 14,
        BinOp::ULt => 15,
        BinOp::ULe => 16,
        BinOp::SLt => 17,
        BinOp::SLe => 18,
        BinOp::Concat => 19,
    }
}

fn binop_from(tag: u8) -> io::Result<BinOp> {
    Ok(match tag {
        0 => BinOp::Add,
        1 => BinOp::Sub,
        2 => BinOp::Mul,
        3 => BinOp::UDiv,
        4 => BinOp::SDiv,
        5 => BinOp::URem,
        6 => BinOp::SRem,
        7 => BinOp::And,
        8 => BinOp::Or,
        9 => BinOp::Xor,
        10 => BinOp::Shl,
        11 => BinOp::LShr,
        12 => BinOp::AShr,
        13 => BinOp::Eq,
        14 => BinOp::Ne,
        15 => BinOp::ULt,
        16 => BinOp::ULe,
        17 => BinOp::SLt,
        18 => BinOp::SLe,
        19 => BinOp::Concat,
        t => return Err(bad_data(format!("unknown binary op tag {t}"))),
    })
}

const TAG_CONST: u8 = 0;
const TAG_VAR: u8 = 1;
const TAG_UNARY: u8 = 2;
const TAG_BINARY: u8 = 3;
const TAG_EXTRACT: u8 = 4;
const TAG_ZEXT: u8 = 5;
const TAG_SEXT: u8 = 6;
const TAG_ITE: u8 = 7;

fn node_key(e: &ExprRef) -> usize {
    let p: &crate::expr::Expr = e;
    p as *const _ as usize
}

/// Appends the post-order node-table encoding of `root` to `out`.
pub fn encode_expr(root: &ExprRef, out: &mut Vec<u8>) {
    let mut nodes: Vec<ExprRef> = Vec::new();
    postorder(root, |n| nodes.push(n.clone()));
    let index: HashMap<usize, u64> =
        nodes.iter().enumerate().map(|(i, n)| (node_key(n), i as u64)).collect();
    let idx = |e: &ExprRef| -> u64 { index[&node_key(e)] };
    write_varint(out, nodes.len() as u64);
    for node in &nodes {
        out.push(node.width().bits() as u8);
        match node.kind() {
            ExprKind::Const(v) => {
                out.push(TAG_CONST);
                write_varint(out, *v);
            }
            ExprKind::Var(id, name) => {
                out.push(TAG_VAR);
                write_varint(out, id.0);
                write_varint(out, name.len() as u64);
                out.extend_from_slice(name.as_bytes());
            }
            ExprKind::Unary(op, a) => {
                out.push(TAG_UNARY);
                out.push(unop_tag(*op));
                write_varint(out, idx(a));
            }
            ExprKind::Binary(op, a, b) => {
                out.push(TAG_BINARY);
                out.push(binop_tag(*op));
                write_varint(out, idx(a));
                write_varint(out, idx(b));
            }
            ExprKind::Extract { src, lo } => {
                out.push(TAG_EXTRACT);
                write_varint(out, idx(src));
                write_varint(out, u64::from(*lo));
            }
            ExprKind::ZExt(a) => {
                out.push(TAG_ZEXT);
                write_varint(out, idx(a));
            }
            ExprKind::SExt(a) => {
                out.push(TAG_SEXT);
                write_varint(out, idx(a));
            }
            ExprKind::Ite(c, t, e) => {
                out.push(TAG_ITE);
                write_varint(out, idx(c));
                write_varint(out, idx(t));
                write_varint(out, idx(e));
            }
        }
    }
}

/// Decodes one expression DAG written by [`encode_expr`].
///
/// The rebuilt DAG is structurally identical to the encoded one: node
/// shapes, widths, variable ids, and names are reproduced verbatim, so
/// `Eq`, `Debug`, and `cached_hash` all agree across the round trip.
pub fn decode_expr(r: &mut WireReader<'_>) -> io::Result<ExprRef> {
    let count = r.read_len(MAX_NODES, "expr node table")?;
    if count == 0 {
        return Err(bad_data("empty expr node table"));
    }
    let mut nodes: Vec<ExprRef> = Vec::with_capacity(count.min(1024));
    for _ in 0..count {
        let bits = r.read_u8()?;
        if !(1..=64).contains(&bits) {
            return Err(bad_data(format!("expr width {bits} out of range")));
        }
        let width = Width::new(u32::from(bits));
        let tag = r.read_u8()?;
        // Post-order: children always precede their parent, so any
        // index must point strictly backwards into the table.
        let child = |r: &mut WireReader<'_>| -> io::Result<ExprRef> {
            let i = r.read_varint()? as usize;
            nodes
                .get(i)
                .cloned()
                .ok_or_else(|| bad_data(format!("expr node references forward index {i}")))
        };
        let kind = match tag {
            TAG_CONST => ExprKind::Const(r.read_varint()?),
            TAG_VAR => {
                let id = r.read_varint()?;
                let len = r.read_len(1 << 16, "var name")?;
                let bytes = r.read_bytes(len)?;
                let name = std::str::from_utf8(bytes)
                    .map_err(|_| bad_data("var name is not UTF-8"))?;
                ExprKind::Var(VarId(id), Arc::from(name))
            }
            TAG_UNARY => {
                let op = unop_from(r.read_u8()?)?;
                ExprKind::Unary(op, child(r)?)
            }
            TAG_BINARY => {
                let op = binop_from(r.read_u8()?)?;
                ExprKind::Binary(op, child(r)?, child(r)?)
            }
            TAG_EXTRACT => {
                let src = child(r)?;
                let lo = r.read_varint()?;
                if lo > 63 {
                    return Err(bad_data(format!("extract offset {lo} out of range")));
                }
                ExprKind::Extract { src, lo: lo as u32 }
            }
            TAG_ZEXT => ExprKind::ZExt(child(r)?),
            TAG_SEXT => ExprKind::SExt(child(r)?),
            TAG_ITE => ExprKind::Ite(child(r)?, child(r)?, child(r)?),
            t => return Err(bad_data(format!("unknown expr node tag {t}"))),
        };
        nodes.push(ExprRef::new(kind, width));
    }
    Ok(nodes.pop().expect("count >= 1 checked above"))
}

/// Appends an [`Assignment`]'s id-keyed bindings to `out`.
pub fn encode_assignment(a: &Assignment, out: &mut Vec<u8>) {
    let mut pairs: Vec<(VarId, u64)> = a.iter().collect();
    pairs.sort_by_key(|(id, _)| *id);
    write_varint(out, pairs.len() as u64);
    for (id, v) in pairs {
        write_varint(out, id.0);
        write_varint(out, v);
    }
}

/// Decodes an [`Assignment`] written by [`encode_assignment`].
pub fn decode_assignment(r: &mut WireReader<'_>) -> io::Result<Assignment> {
    let len = r.read_len(MAX_NODES, "assignment")?;
    let mut a = Assignment::new();
    for _ in 0..len {
        let id = VarId(r.read_varint()?);
        let v = r.read_varint()?;
        a.set(id, v);
    }
    Ok(a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ExprBuilder;

    fn sample_dag(b: &ExprBuilder) -> ExprRef {
        let x = b.var("card_type", Width::W32);
        let y = b.var("flags", Width::W32);
        let shared = b.add(x.clone(), b.constant(3, Width::W32));
        let byte = b.extract(shared.clone(), 8, Width::W8);
        let wide = b.concat(byte.clone(), b.extract(y.clone(), 0, Width::W8));
        b.ite(
            b.ult(shared, y),
            b.zext(wide, Width::W32),
            b.sext(b.neg(byte), Width::W32),
        )
    }

    #[test]
    fn round_trip_is_structurally_identical() {
        let b = ExprBuilder::new();
        let e = sample_dag(&b);
        let mut buf = Vec::new();
        encode_expr(&e, &mut buf);
        let mut r = WireReader::new(&buf);
        let back = decode_expr(&mut r).unwrap();
        assert!(r.is_empty());
        assert_eq!(e, back);
        assert_eq!(e.cached_hash(), back.cached_hash());
        assert_eq!(format!("{e:?}"), format!("{back:?}"));
        assert_eq!(e.var_ids(), back.var_ids());
    }

    #[test]
    fn shared_subdags_written_once() {
        let b = ExprBuilder::new();
        let x = b.var("x", Width::W32);
        let shared = b.add(x, b.constant(1, Width::W32));
        let e = b.mul(shared.clone(), shared.clone());
        let mut buf = Vec::new();
        encode_expr(&e, &mut buf);
        // Nodes: x, 1, shared, e — the name "x" appears exactly once.
        assert_eq!(buf.iter().filter(|&&byte| byte == b'x').count(), 1);
        let back = decode_expr(&mut WireReader::new(&buf)).unwrap();
        assert_eq!(e, back);
        // Decoding rebuilds the sharing, not just the shape.
        if let ExprKind::Binary(_, a, bb) = back.kind() {
            assert!(a.ptr_eq(bb));
        } else {
            panic!("expected binary root");
        }
    }

    #[test]
    fn truncated_and_garbage_inputs_error_cleanly() {
        let b = ExprBuilder::new();
        let e = sample_dag(&b);
        let mut buf = Vec::new();
        encode_expr(&e, &mut buf);
        // Every truncation errors; none panic or loop.
        for cut in 0..buf.len() {
            assert!(decode_expr(&mut WireReader::new(&buf[..cut])).is_err());
        }
        // Garbage tag.
        assert!(decode_expr(&mut WireReader::new(&[1, 8, 99])).is_err());
        // Width out of range.
        assert!(decode_expr(&mut WireReader::new(&[1, 65, 0, 0])).is_err());
        // Forward/out-of-range child reference.
        assert!(decode_expr(&mut WireReader::new(&[1, 8, TAG_ZEXT, 5])).is_err());
        // Node-table allocation bomb.
        let mut bomb = Vec::new();
        write_varint(&mut bomb, u64::MAX);
        assert!(decode_expr(&mut WireReader::new(&bomb)).is_err());
    }

    #[test]
    fn assignment_round_trip() {
        let mut a = Assignment::new();
        a.set(VarId(7), 0xdead_beef);
        a.set(VarId(1 << 41), 3);
        let mut buf = Vec::new();
        encode_assignment(&a, &mut buf);
        let back = decode_assignment(&mut WireReader::new(&buf)).unwrap();
        let mut got: Vec<_> = back.iter().collect();
        got.sort_by_key(|(id, _)| *id);
        assert_eq!(got, vec![(VarId(7), 0xdead_beef), (VarId(1 << 41), 3)]);
    }

    #[test]
    fn varint_rejects_overflow() {
        let over = [0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x02];
        assert!(WireReader::new(&over).read_varint().is_err());
        let max = [0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01];
        assert_eq!(WireReader::new(&max).read_varint().unwrap(), u64::MAX);
    }
}
