//! Concrete semantics of the expression operators.
//!
//! These functions define the ground truth for every operator: the constant
//! folder, the evaluator, the simplifier's correctness tests, and the
//! solver's bit-blaster must all agree with them.

use crate::expr::{BinOp, UnOp};
use crate::width::Width;

/// Applies a unary operator to a concrete value at the given width.
pub fn apply_unop(op: UnOp, v: u64, w: Width) -> u64 {
    match op {
        UnOp::Not => w.truncate(!v),
        UnOp::Neg => w.truncate(v.wrapping_neg()),
    }
}

/// Applies a binary operator to concrete values.
///
/// `w` is the width of the *operands*. Comparison operators return 0 or 1;
/// `Concat` is not handled here (its result width depends on both operands)
/// — use [`apply_concat`].
///
/// # Panics
///
/// Panics if `op` is [`BinOp::Concat`].
pub fn apply_binop(op: BinOp, a: u64, b: u64, w: Width) -> u64 {
    let a = w.truncate(a);
    let b = w.truncate(b);
    match op {
        BinOp::Add => w.truncate(a.wrapping_add(b)),
        BinOp::Sub => w.truncate(a.wrapping_sub(b)),
        BinOp::Mul => w.truncate(a.wrapping_mul(b)),
        BinOp::UDiv => match a.checked_div(b) {
            Some(q) => w.truncate(q),
            None => w.mask(),
        },
        BinOp::SDiv => {
            let (sa, sb) = (w.sign_extend(a), w.sign_extend(b));
            if sb == 0 {
                w.mask()
            } else {
                w.truncate(sa.wrapping_div(sb) as u64)
            }
        }
        BinOp::URem => {
            if b == 0 {
                a
            } else {
                w.truncate(a % b)
            }
        }
        BinOp::SRem => {
            let (sa, sb) = (w.sign_extend(a), w.sign_extend(b));
            if sb == 0 {
                a
            } else {
                w.truncate(sa.wrapping_rem(sb) as u64)
            }
        }
        BinOp::And => a & b,
        BinOp::Or => a | b,
        BinOp::Xor => a ^ b,
        BinOp::Shl => {
            if b >= w.bits() as u64 {
                0
            } else {
                w.truncate(a << b)
            }
        }
        BinOp::LShr => {
            if b >= w.bits() as u64 {
                0
            } else {
                a >> b
            }
        }
        BinOp::AShr => {
            let sa = w.sign_extend(a);
            let sh = (b as u32).min(w.bits() - 1).min(63);
            if b >= w.bits() as u64 {
                w.truncate((sa >> (w.bits() - 1).min(63)) as u64)
            } else {
                w.truncate((sa >> sh) as u64)
            }
        }
        BinOp::Eq => (a == b) as u64,
        BinOp::Ne => (a != b) as u64,
        BinOp::ULt => (a < b) as u64,
        BinOp::ULe => (a <= b) as u64,
        BinOp::SLt => (w.sign_extend(a) < w.sign_extend(b)) as u64,
        BinOp::SLe => (w.sign_extend(a) <= w.sign_extend(b)) as u64,
        BinOp::Concat => panic!("Concat width depends on both operands; use apply_concat"),
    }
}

/// Concatenation: `hi` in the high bits, `lo` in the low bits.
pub fn apply_concat(hi: u64, hi_w: Width, lo: u64, lo_w: Width) -> u64 {
    let total = Width::new(hi_w.bits() + lo_w.bits());
    total.truncate((hi_w.truncate(hi) << lo_w.bits()) | lo_w.truncate(lo))
}

/// Extraction of `out_w.bits()` bits starting at bit `lo`.
pub fn apply_extract(v: u64, lo: u32, out_w: Width) -> u64 {
    out_w.truncate(v >> lo)
}

#[cfg(test)]
mod tests {
    use super::*;

    const W8: Width = Width::W8;

    #[test]
    fn add_wraps() {
        assert_eq!(apply_binop(BinOp::Add, 0xff, 1, W8), 0);
        assert_eq!(apply_binop(BinOp::Add, 200, 100, W8), 44);
    }

    #[test]
    fn sub_wraps() {
        assert_eq!(apply_binop(BinOp::Sub, 0, 1, W8), 0xff);
    }

    #[test]
    fn mul_wraps() {
        assert_eq!(apply_binop(BinOp::Mul, 16, 16, W8), 0);
        assert_eq!(apply_binop(BinOp::Mul, 3, 5, W8), 15);
    }

    #[test]
    fn division_by_zero_is_all_ones() {
        assert_eq!(apply_binop(BinOp::UDiv, 5, 0, W8), 0xff);
        assert_eq!(apply_binop(BinOp::SDiv, 5, 0, W8), 0xff);
    }

    #[test]
    fn remainder_by_zero_is_dividend() {
        assert_eq!(apply_binop(BinOp::URem, 5, 0, W8), 5);
        assert_eq!(apply_binop(BinOp::SRem, 5, 0, W8), 5);
    }

    #[test]
    fn signed_division() {
        // -8 / 2 == -4 at 8 bits
        assert_eq!(apply_binop(BinOp::SDiv, 0xf8, 2, W8), 0xfc);
        // -7 % 2 == -1 at 8 bits (truncated toward zero)
        assert_eq!(apply_binop(BinOp::SRem, 0xf9, 2, W8), 0xff);
    }

    #[test]
    fn shifts_saturate_to_zero() {
        assert_eq!(apply_binop(BinOp::Shl, 1, 8, W8), 0);
        assert_eq!(apply_binop(BinOp::LShr, 0x80, 8, W8), 0);
        assert_eq!(apply_binop(BinOp::Shl, 1, 7, W8), 0x80);
    }

    #[test]
    fn ashr_fills_with_sign() {
        assert_eq!(apply_binop(BinOp::AShr, 0x80, 1, W8), 0xc0);
        assert_eq!(apply_binop(BinOp::AShr, 0x80, 100, W8), 0xff);
        assert_eq!(apply_binop(BinOp::AShr, 0x40, 100, W8), 0);
    }

    #[test]
    fn comparisons() {
        assert_eq!(apply_binop(BinOp::ULt, 1, 2, W8), 1);
        assert_eq!(apply_binop(BinOp::ULt, 2, 1, W8), 0);
        // Signed: 0xff == -1 < 1
        assert_eq!(apply_binop(BinOp::SLt, 0xff, 1, W8), 1);
        assert_eq!(apply_binop(BinOp::ULt, 0xff, 1, W8), 0);
        assert_eq!(apply_binop(BinOp::SLe, 0xff, 0xff, W8), 1);
    }

    #[test]
    fn unops() {
        assert_eq!(apply_unop(UnOp::Not, 0x0f, W8), 0xf0);
        assert_eq!(apply_unop(UnOp::Neg, 1, W8), 0xff);
        assert_eq!(apply_unop(UnOp::Neg, 0, W8), 0);
    }

    #[test]
    fn concat_and_extract() {
        let v = apply_concat(0xab, W8, 0xcd, W8);
        assert_eq!(v, 0xabcd);
        assert_eq!(apply_extract(v, 8, W8), 0xab);
        assert_eq!(apply_extract(v, 0, W8), 0xcd);
        assert_eq!(apply_extract(v, 4, W8), 0xbc);
    }

    #[test]
    fn full_width_operations() {
        let w = Width::W64;
        assert_eq!(apply_binop(BinOp::Add, u64::MAX, 1, w), 0);
        assert_eq!(apply_binop(BinOp::AShr, u64::MAX, 63, w), u64::MAX);
        assert_eq!(apply_binop(BinOp::Shl, 1, 63, w), 1 << 63);
    }
}
