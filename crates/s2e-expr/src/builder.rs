//! Smart constructors for expressions.

use crate::expr::{BinOp, ExprKind, ExprRef, UnOp, VarId};
use crate::fold::{apply_binop, apply_concat, apply_extract, apply_unop};
use crate::width::Width;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// How [`ExprBuilder::var`] assigns ids on the current thread.
///
/// Variable ids minted while a guest runs are a nondeterministic input:
/// the counter is shared by every state and worker, so a replayed path
/// would observe different ids than its live run did. Record/replay
/// (DESIGN.md §13) therefore captures the ids a path mints and feeds
/// them back verbatim during reconstruction. The mode is thread-local
/// because each worker replays at most one state at a time, while the
/// builder itself is shared engine-wide.
enum VarIdMode {
    /// Mint from the shared counter (the default).
    Fresh,
    /// Mint from the shared counter and remember each id.
    Capture(Vec<u64>),
    /// Reissue recorded ids instead of minting.
    Replay(VecDeque<u64>),
}

thread_local! {
    static VAR_ID_MODE: RefCell<VarIdMode> = const { RefCell::new(VarIdMode::Fresh) };
}

/// Starts capturing the ids of variables minted on this thread.
/// Any capture already in progress is discarded.
pub fn begin_var_capture() {
    VAR_ID_MODE.with(|m| *m.borrow_mut() = VarIdMode::Capture(Vec::new()));
}

/// Returns the ids captured so far without ending the capture.
pub fn drain_var_capture() -> Vec<u64> {
    VAR_ID_MODE.with(|m| match &mut *m.borrow_mut() {
        VarIdMode::Capture(buf) => std::mem::take(buf),
        _ => Vec::new(),
    })
}

/// Ends the capture, returning any ids minted since the last drain.
pub fn end_var_capture() -> Vec<u64> {
    VAR_ID_MODE.with(|m| {
        match std::mem::replace(&mut *m.borrow_mut(), VarIdMode::Fresh) {
            VarIdMode::Capture(buf) => buf,
            _ => Vec::new(),
        }
    })
}

/// Makes [`ExprBuilder::var`] on this thread reissue `ids` in order
/// instead of minting fresh ones.
pub fn begin_var_replay(ids: Vec<u64>) {
    VAR_ID_MODE.with(|m| *m.borrow_mut() = VarIdMode::Replay(ids.into()));
}

/// Ends id replay, returning how many recorded ids were left unconsumed
/// (nonzero means the replayed path diverged).
pub fn end_var_replay() -> usize {
    VAR_ID_MODE.with(|m| {
        match std::mem::replace(&mut *m.borrow_mut(), VarIdMode::Fresh) {
            VarIdMode::Replay(q) => q.len(),
            _ => 0,
        }
    })
}

/// Factory for expression nodes.
///
/// The builder performs constant folding and cheap algebraic
/// simplifications at construction time, so that the common case — concrete
/// data flowing through translated guest code — never materializes a
/// symbolic DAG at all. The heavier bitfield-theory simplifier lives in
/// [`crate::simplify`].
///
/// The builder also issues fresh [`VarId`]s. Every execution state in the
/// platform shares one builder so variable ids are globally unique.
///
/// # Example
///
/// ```
/// use s2e_expr::{ExprBuilder, Width};
///
/// let mut b = ExprBuilder::new();
/// let x = b.var("x", Width::W32);
/// let zero = b.constant(0, Width::W32);
/// // x + 0 folds to x.
/// assert!(b.add(x.clone(), zero).ptr_eq(&x));
/// ```
#[derive(Debug, Default)]
pub struct ExprBuilder {
    next_var: AtomicU64,
}

impl ExprBuilder {
    /// Creates a builder with no variables yet.
    pub fn new() -> ExprBuilder {
        ExprBuilder {
            next_var: AtomicU64::new(0),
        }
    }

    /// Number of variables created so far.
    pub fn var_count(&self) -> u64 {
        self.next_var.load(Ordering::Relaxed)
    }

    /// Moves the fresh-id counter into a per-process namespace
    /// (mirroring `Engine::set_state_id_namespace`): worker `w` mints
    /// ids from `(w + 1) << 40`. Separate worker processes each start
    /// their own builder at zero, so without this, two processes would
    /// mint colliding `VarId`s and shipped constraints could alias.
    /// Journal replay reissues recorded ids verbatim regardless, so a
    /// migrated state keeps its original-namespace ids.
    pub fn set_var_id_namespace(&self, worker: usize) {
        let base = (worker as u64 + 1) << 40;
        debug_assert!(
            self.next_var.load(Ordering::Relaxed) < (1 << 40),
            "var-id namespace set after a namespace was already applied"
        );
        self.next_var.store(base, Ordering::Relaxed);
    }

    /// Creates a fresh symbolic variable (or, under
    /// [`begin_var_replay`], re-creates the recorded one).
    pub fn var(&self, name: &str, width: Width) -> ExprRef {
        let id = VAR_ID_MODE.with(|m| match &mut *m.borrow_mut() {
            VarIdMode::Replay(q) => q
                .pop_front()
                .expect("replay diverged: path minted more variables than were recorded"),
            mode => {
                let id = self.next_var.fetch_add(1, Ordering::Relaxed);
                if let VarIdMode::Capture(buf) = mode {
                    buf.push(id);
                }
                id
            }
        });
        ExprRef::new(ExprKind::Var(VarId(id), Arc::from(name)), width)
    }

    /// Creates a constant of the given width (value is truncated).
    pub fn constant(&self, value: u64, width: Width) -> ExprRef {
        ExprRef::new(ExprKind::Const(width.truncate(value)), width)
    }

    /// The boolean constant `true`.
    pub fn true_(&self) -> ExprRef {
        self.constant(1, Width::BOOL)
    }

    /// The boolean constant `false`.
    pub fn false_(&self) -> ExprRef {
        self.constant(0, Width::BOOL)
    }

    /// Bitwise complement.
    pub fn not(&self, e: ExprRef) -> ExprRef {
        if let Some(v) = e.as_const() {
            return self.constant(apply_unop(UnOp::Not, v, e.width()), e.width());
        }
        // not(not(x)) == x
        if let ExprKind::Unary(UnOp::Not, inner) = e.kind() {
            return inner.clone();
        }
        ExprRef::new(ExprKind::Unary(UnOp::Not, e.clone()), e.width())
    }

    /// Two's-complement negation.
    pub fn neg(&self, e: ExprRef) -> ExprRef {
        if let Some(v) = e.as_const() {
            return self.constant(apply_unop(UnOp::Neg, v, e.width()), e.width());
        }
        if let ExprKind::Unary(UnOp::Neg, inner) = e.kind() {
            return inner.clone();
        }
        ExprRef::new(ExprKind::Unary(UnOp::Neg, e.clone()), e.width())
    }

    /// General binary operation; prefer the named helpers.
    ///
    /// # Panics
    ///
    /// Panics if the operand widths disagree (except `Concat`, which accepts
    /// any widths summing to at most 64 bits).
    pub fn binop(&self, op: BinOp, a: ExprRef, b: ExprRef) -> ExprRef {
        if op == BinOp::Concat {
            return self.concat(a, b);
        }
        assert_eq!(
            a.width(),
            b.width(),
            "operand width mismatch for {op:?}: {} vs {}",
            a.width(),
            b.width()
        );
        let w = a.width();
        let out_w = if op.is_comparison() { Width::BOOL } else { w };

        if let (Some(x), Some(y)) = (a.as_const(), b.as_const()) {
            return self.constant(apply_binop(op, x, y, w), out_w);
        }

        // Canonicalize: constants on the right of commutative operators.
        let (a, b) = if op.is_commutative() && a.is_const() {
            (b, a)
        } else {
            (a, b)
        };

        if let Some(e) = self.identity_fold(op, &a, &b) {
            return e;
        }

        ExprRef::new(ExprKind::Binary(op, a, b), out_w)
    }

    /// Algebraic identities that need no bit-level analysis.
    fn identity_fold(&self, op: BinOp, a: &ExprRef, b: &ExprRef) -> Option<ExprRef> {
        let w = a.width();
        let bc = b.as_const();
        match op {
            BinOp::Add | BinOp::Sub | BinOp::Xor | BinOp::Or | BinOp::Shl | BinOp::LShr
            | BinOp::AShr
                if bc == Some(0) =>
            {
                Some(a.clone())
            }
            BinOp::Mul if bc == Some(0) => Some(self.constant(0, w)),
            BinOp::Mul if bc == Some(1) => Some(a.clone()),
            BinOp::And if bc == Some(0) => Some(self.constant(0, w)),
            BinOp::And if bc == Some(w.mask()) => Some(a.clone()),
            BinOp::Or if bc == Some(w.mask()) => Some(self.constant(w.mask(), w)),
            BinOp::Sub if a == b => Some(self.constant(0, w)),
            BinOp::Xor if a == b => Some(self.constant(0, w)),
            BinOp::And | BinOp::Or if a == b => Some(a.clone()),
            BinOp::Eq | BinOp::ULe | BinOp::SLe if a == b => Some(self.true_()),
            BinOp::Ne | BinOp::ULt | BinOp::SLt if a == b => Some(self.false_()),
            _ => None,
        }
    }

    /// Wrapping addition.
    pub fn add(&self, a: ExprRef, b: ExprRef) -> ExprRef {
        self.binop(BinOp::Add, a, b)
    }

    /// Wrapping subtraction.
    pub fn sub(&self, a: ExprRef, b: ExprRef) -> ExprRef {
        self.binop(BinOp::Sub, a, b)
    }

    /// Wrapping multiplication.
    pub fn mul(&self, a: ExprRef, b: ExprRef) -> ExprRef {
        self.binop(BinOp::Mul, a, b)
    }

    /// Unsigned division (x/0 == all ones).
    pub fn udiv(&self, a: ExprRef, b: ExprRef) -> ExprRef {
        self.binop(BinOp::UDiv, a, b)
    }

    /// Signed division (x/0 == all ones).
    pub fn sdiv(&self, a: ExprRef, b: ExprRef) -> ExprRef {
        self.binop(BinOp::SDiv, a, b)
    }

    /// Unsigned remainder (x%0 == x).
    pub fn urem(&self, a: ExprRef, b: ExprRef) -> ExprRef {
        self.binop(BinOp::URem, a, b)
    }

    /// Signed remainder (x%0 == x).
    pub fn srem(&self, a: ExprRef, b: ExprRef) -> ExprRef {
        self.binop(BinOp::SRem, a, b)
    }

    /// Bitwise and.
    pub fn and(&self, a: ExprRef, b: ExprRef) -> ExprRef {
        self.binop(BinOp::And, a, b)
    }

    /// Bitwise or.
    pub fn or(&self, a: ExprRef, b: ExprRef) -> ExprRef {
        self.binop(BinOp::Or, a, b)
    }

    /// Bitwise xor.
    pub fn xor(&self, a: ExprRef, b: ExprRef) -> ExprRef {
        self.binop(BinOp::Xor, a, b)
    }

    /// Left shift.
    pub fn shl(&self, a: ExprRef, b: ExprRef) -> ExprRef {
        self.binop(BinOp::Shl, a, b)
    }

    /// Logical right shift.
    pub fn lshr(&self, a: ExprRef, b: ExprRef) -> ExprRef {
        self.binop(BinOp::LShr, a, b)
    }

    /// Arithmetic right shift.
    pub fn ashr(&self, a: ExprRef, b: ExprRef) -> ExprRef {
        self.binop(BinOp::AShr, a, b)
    }

    /// Equality test (boolean result).
    pub fn eq(&self, a: ExprRef, b: ExprRef) -> ExprRef {
        self.binop(BinOp::Eq, a, b)
    }

    /// Inequality test (boolean result).
    pub fn ne(&self, a: ExprRef, b: ExprRef) -> ExprRef {
        self.binop(BinOp::Ne, a, b)
    }

    /// Unsigned less-than.
    pub fn ult(&self, a: ExprRef, b: ExprRef) -> ExprRef {
        self.binop(BinOp::ULt, a, b)
    }

    /// Unsigned less-or-equal.
    pub fn ule(&self, a: ExprRef, b: ExprRef) -> ExprRef {
        self.binop(BinOp::ULe, a, b)
    }

    /// Signed less-than.
    pub fn slt(&self, a: ExprRef, b: ExprRef) -> ExprRef {
        self.binop(BinOp::SLt, a, b)
    }

    /// Signed less-or-equal.
    pub fn sle(&self, a: ExprRef, b: ExprRef) -> ExprRef {
        self.binop(BinOp::SLe, a, b)
    }

    /// Boolean negation of a 1-bit expression.
    ///
    /// # Panics
    ///
    /// Panics if `e` is not boolean-width.
    pub fn bool_not(&self, e: ExprRef) -> ExprRef {
        assert_eq!(e.width(), Width::BOOL, "bool_not requires a boolean");
        self.xor(e, self.true_())
    }

    /// Boolean conjunction of 1-bit expressions.
    pub fn bool_and(&self, a: ExprRef, b: ExprRef) -> ExprRef {
        assert_eq!(a.width(), Width::BOOL);
        assert_eq!(b.width(), Width::BOOL);
        self.and(a, b)
    }

    /// Boolean disjunction of 1-bit expressions.
    pub fn bool_or(&self, a: ExprRef, b: ExprRef) -> ExprRef {
        assert_eq!(a.width(), Width::BOOL);
        assert_eq!(b.width(), Width::BOOL);
        self.or(a, b)
    }

    /// Concatenation: `hi` occupies the high bits.
    ///
    /// # Panics
    ///
    /// Panics if the combined width exceeds 64 bits.
    pub fn concat(&self, hi: ExprRef, lo: ExprRef) -> ExprRef {
        let w = Width::new(hi.width().bits() + lo.width().bits());
        if let (Some(h), Some(l)) = (hi.as_const(), lo.as_const()) {
            return self.constant(apply_concat(h, hi.width(), l, lo.width()), w);
        }
        ExprRef::new(ExprKind::Binary(BinOp::Concat, hi, lo), w)
    }

    /// Extracts `width` bits starting at bit `lo`.
    ///
    /// # Panics
    ///
    /// Panics if `lo + width` exceeds the source width.
    pub fn extract(&self, src: ExprRef, lo: u32, width: Width) -> ExprRef {
        assert!(
            lo + width.bits() <= src.width().bits(),
            "extract [{lo}, {}) out of range for {}",
            lo + width.bits(),
            src.width()
        );
        if lo == 0 && width == src.width() {
            return src;
        }
        if let Some(v) = src.as_const() {
            return self.constant(apply_extract(v, lo, width), width);
        }
        // extract(concat(hi, lo_e)) that falls entirely within one side.
        if let ExprKind::Binary(BinOp::Concat, hi, lo_e) = src.kind() {
            let lo_bits = lo_e.width().bits();
            if lo + width.bits() <= lo_bits {
                return self.extract(lo_e.clone(), lo, width);
            }
            if lo >= lo_bits {
                return self.extract(hi.clone(), lo - lo_bits, width);
            }
        }
        // extract(zext(x)) within x's width.
        if let ExprKind::ZExt(inner) = src.kind() {
            if lo + width.bits() <= inner.width().bits() {
                return self.extract(inner.clone(), lo, width);
            }
            if lo >= inner.width().bits() {
                return self.constant(0, width);
            }
        }
        // extract(extract(x)) composes.
        if let ExprKind::Extract { src: inner, lo: lo2 } = src.kind() {
            return self.extract(inner.clone(), lo + lo2, width);
        }
        ExprRef::new(ExprKind::Extract { src, lo }, width)
    }

    /// Zero-extends to `width`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is narrower than the source.
    pub fn zext(&self, src: ExprRef, width: Width) -> ExprRef {
        assert!(width.bits() >= src.width().bits(), "zext must widen");
        if width == src.width() {
            return src;
        }
        if let Some(v) = src.as_const() {
            return self.constant(v, width);
        }
        if let ExprKind::ZExt(inner) = src.kind() {
            return self.zext(inner.clone(), width);
        }
        ExprRef::new(ExprKind::ZExt(src), width)
    }

    /// Sign-extends to `width`.
    ///
    /// # Panics
    ///
    /// Panics if `width` is narrower than the source.
    pub fn sext(&self, src: ExprRef, width: Width) -> ExprRef {
        assert!(width.bits() >= src.width().bits(), "sext must widen");
        if width == src.width() {
            return src;
        }
        if let Some(v) = src.as_const() {
            return self.constant(src.width().sign_extend(v) as u64, width);
        }
        ExprRef::new(ExprKind::SExt(src), width)
    }

    /// If-then-else over same-width branches.
    ///
    /// # Panics
    ///
    /// Panics if `cond` is not boolean or the branch widths differ.
    pub fn ite(&self, cond: ExprRef, then_e: ExprRef, else_e: ExprRef) -> ExprRef {
        assert_eq!(cond.width(), Width::BOOL, "ite condition must be boolean");
        assert_eq!(then_e.width(), else_e.width(), "ite branch width mismatch");
        if let Some(c) = cond.as_const() {
            return if c == 1 { then_e } else { else_e };
        }
        if then_e == else_e {
            return then_e;
        }
        let w = then_e.width();
        // ite(c, 1, 0) at boolean width is just c.
        if w == Width::BOOL {
            if then_e.as_const() == Some(1) && else_e.as_const() == Some(0) {
                return cond;
            }
            if then_e.as_const() == Some(0) && else_e.as_const() == Some(1) {
                return self.bool_not(cond);
            }
        }
        ExprRef::new(ExprKind::Ite(cond, then_e, else_e), w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b() -> ExprBuilder {
        ExprBuilder::new()
    }

    #[test]
    fn constants_fold() {
        let b = b();
        let e = b.add(b.constant(2, Width::W8), b.constant(3, Width::W8));
        assert_eq!(e.as_const(), Some(5));
        let e = b.mul(b.constant(16, Width::W8), b.constant(16, Width::W8));
        assert_eq!(e.as_const(), Some(0));
    }

    #[test]
    fn var_ids_are_fresh() {
        let b = b();
        let x = b.var("x", Width::W32);
        let y = b.var("y", Width::W32);
        assert_ne!(x, y);
        assert_eq!(b.var_count(), 2);
    }

    #[test]
    fn identities() {
        let b = b();
        let x = b.var("x", Width::W32);
        let zero = b.constant(0, Width::W32);
        let ones = b.constant(u64::MAX, Width::W32);
        assert!(b.add(x.clone(), zero.clone()).ptr_eq(&x));
        assert!(b.sub(x.clone(), zero.clone()).ptr_eq(&x));
        assert!(b.or(x.clone(), zero.clone()).ptr_eq(&x));
        assert!(b.xor(x.clone(), zero.clone()).ptr_eq(&x));
        assert!(b.and(x.clone(), ones.clone()).ptr_eq(&x));
        assert_eq!(b.and(x.clone(), zero.clone()).as_const(), Some(0));
        assert_eq!(b.mul(x.clone(), zero.clone()).as_const(), Some(0));
        assert_eq!(b.or(x.clone(), ones).as_const(), Some(0xffff_ffff));
        assert_eq!(b.sub(x.clone(), x.clone()).as_const(), Some(0));
        assert_eq!(b.xor(x.clone(), x.clone()).as_const(), Some(0));
        assert!(b.and(x.clone(), x.clone()).ptr_eq(&x));
    }

    #[test]
    fn self_comparisons_fold() {
        let b = b();
        let x = b.var("x", Width::W32);
        assert_eq!(b.eq(x.clone(), x.clone()).as_const(), Some(1));
        assert_eq!(b.ne(x.clone(), x.clone()).as_const(), Some(0));
        assert_eq!(b.ult(x.clone(), x.clone()).as_const(), Some(0));
        assert_eq!(b.ule(x.clone(), x.clone()).as_const(), Some(1));
    }

    #[test]
    fn commutative_constant_moves_right() {
        let b = b();
        let x = b.var("x", Width::W32);
        let e = b.add(b.constant(5, Width::W32), x.clone());
        match e.kind() {
            ExprKind::Binary(BinOp::Add, l, r) => {
                assert_eq!(*l, x);
                assert_eq!(r.as_const(), Some(5));
            }
            other => panic!("unexpected shape {other:?}"),
        }
    }

    #[test]
    fn double_negation_cancels() {
        let b = b();
        let x = b.var("x", Width::W8);
        assert!(b.not(b.not(x.clone())).ptr_eq(&x));
        assert!(b.neg(b.neg(x.clone())).ptr_eq(&x));
    }

    #[test]
    fn ite_folds() {
        let b = b();
        let x = b.var("x", Width::W8);
        let y = b.var("y", Width::W8);
        let c = b.var("c", Width::BOOL);
        assert!(b.ite(b.true_(), x.clone(), y.clone()).ptr_eq(&x));
        assert!(b.ite(b.false_(), x.clone(), y.clone()).ptr_eq(&y));
        assert!(b.ite(c.clone(), x.clone(), x.clone()).ptr_eq(&x));
        // Boolean ite collapses to the condition.
        let one = b.true_();
        let zero = b.false_();
        assert!(b.ite(c.clone(), one, zero).ptr_eq(&c));
    }

    #[test]
    fn extract_of_concat_selects_side() {
        let b = b();
        let hi = b.var("hi", Width::W8);
        let lo = b.var("lo", Width::W8);
        let c = b.concat(hi.clone(), lo.clone());
        assert!(b.extract(c.clone(), 0, Width::W8).ptr_eq(&lo));
        assert!(b.extract(c, 8, Width::W8).ptr_eq(&hi));
    }

    #[test]
    fn extract_of_zext_high_bits_is_zero() {
        let b = b();
        let x = b.var("x", Width::W8);
        let z = b.zext(x.clone(), Width::W32);
        assert_eq!(b.extract(z.clone(), 16, Width::W8).as_const(), Some(0));
        assert!(b.extract(z, 0, Width::W8).ptr_eq(&x));
    }

    #[test]
    fn nested_extract_composes() {
        let b = b();
        let x = b.var("x", Width::W32);
        let inner = b.extract(x.clone(), 8, Width::W16);
        let outer = b.extract(inner, 4, Width::W8);
        match outer.kind() {
            ExprKind::Extract { src, lo } => {
                assert_eq!(*src, x);
                assert_eq!(*lo, 12);
            }
            other => panic!("unexpected shape {other:?}"),
        }
    }

    #[test]
    fn extensions_fold_constants() {
        let b = b();
        assert_eq!(
            b.sext(b.constant(0x80, Width::W8), Width::W16).as_const(),
            Some(0xff80)
        );
        assert_eq!(
            b.zext(b.constant(0x80, Width::W8), Width::W16).as_const(),
            Some(0x80)
        );
    }

    #[test]
    fn zext_of_zext_flattens() {
        let b = b();
        let x = b.var("x", Width::W8);
        let z = b.zext(b.zext(x, Width::W16), Width::W32);
        assert!(matches!(z.kind(), ExprKind::ZExt(inner) if inner.width() == Width::W8));
    }

    #[test]
    #[should_panic]
    fn width_mismatch_panics() {
        let b = b();
        let x = b.var("x", Width::W8);
        let y = b.var("y", Width::W16);
        b.add(x, y);
    }

    #[test]
    fn shifts_by_zero_identity() {
        let b = b();
        let x = b.var("x", Width::W32);
        let zero = b.constant(0, Width::W32);
        assert!(b.shl(x.clone(), zero.clone()).ptr_eq(&x));
        assert!(b.lshr(x.clone(), zero.clone()).ptr_eq(&x));
        assert!(b.ashr(x.clone(), zero).ptr_eq(&x));
    }
}
