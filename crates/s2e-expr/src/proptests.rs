//! Property-based tests: random expressions checked against concrete
//! semantics.

use crate::builder::ExprBuilder;
use crate::eval::{eval, Assignment};
use crate::expr::{BinOp, ExprRef, UnOp};
use crate::simplify::{known_bits, simplify};
use crate::width::Width;
use proptest::prelude::*;

const NUM_VARS: usize = 4;

/// A compact recipe for building a random expression over `NUM_VARS`
/// 8-bit variables. Using a recipe (rather than a recursive strategy over
/// ExprRef) keeps shrinking fast.
#[derive(Clone, Debug)]
enum Node {
    Var(u8),
    Const(u8),
    Un(u8, Box<Node>),
    Bin(u8, Box<Node>, Box<Node>),
    Ite(Box<Node>, Box<Node>, Box<Node>),
    Extract(u8, Box<Node>),
    Ext(bool, Box<Node>),
}

fn node_strategy() -> impl Strategy<Value = Node> {
    let leaf = prop_oneof![
        (0..NUM_VARS as u8).prop_map(Node::Var),
        any::<u8>().prop_map(Node::Const),
    ];
    leaf.prop_recursive(4, 64, 3, |inner| {
        prop_oneof![
            (any::<u8>(), inner.clone()).prop_map(|(op, a)| Node::Un(op, Box::new(a))),
            (any::<u8>(), inner.clone(), inner.clone())
                .prop_map(|(op, a, b)| Node::Bin(op, Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone(), inner.clone())
                .prop_map(|(c, t, f)| Node::Ite(Box::new(c), Box::new(t), Box::new(f))),
            (0u8..8, inner.clone()).prop_map(|(lo, a)| Node::Extract(lo, Box::new(a))),
            (any::<bool>(), inner).prop_map(|(s, a)| Node::Ext(s, Box::new(a))),
        ]
    })
}

const BINOPS: [BinOp; 18] = [
    BinOp::Add,
    BinOp::Sub,
    BinOp::Mul,
    BinOp::UDiv,
    BinOp::SDiv,
    BinOp::URem,
    BinOp::SRem,
    BinOp::And,
    BinOp::Or,
    BinOp::Xor,
    BinOp::Shl,
    BinOp::LShr,
    BinOp::AShr,
    BinOp::Eq,
    BinOp::Ne,
    BinOp::ULt,
    BinOp::ULe,
    BinOp::SLt,
];

/// Builds an expression of width 8 from the recipe. Narrower intermediate
/// results are widened back to 8 bits so operand widths always line up.
fn build(node: &Node, b: &ExprBuilder, vars: &[ExprRef]) -> ExprRef {
    let w8 = Width::W8;
    let widen = |e: ExprRef, b: &ExprBuilder| {
        if e.width() == w8 {
            e
        } else {
            b.zext(e, w8)
        }
    };
    match node {
        Node::Var(i) => vars[*i as usize % NUM_VARS].clone(),
        Node::Const(v) => b.constant(*v as u64, w8),
        Node::Un(op, a) => {
            let a = widen(build(a, b, vars), b);
            let op = if op % 2 == 0 { UnOp::Not } else { UnOp::Neg };
            match op {
                UnOp::Not => b.not(a),
                UnOp::Neg => b.neg(a),
            }
        }
        Node::Bin(op, x, y) => {
            let x = widen(build(x, b, vars), b);
            let y = widen(build(y, b, vars), b);
            let op = BINOPS[*op as usize % BINOPS.len()];
            widen(b.binop(op, x, y), b)
        }
        Node::Ite(c, t, f) => {
            let c = widen(build(c, b, vars), b);
            let cond = b.ne(c, b.constant(0, w8));
            let t = widen(build(t, b, vars), b);
            let f = widen(build(f, b, vars), b);
            b.ite(cond, t, f)
        }
        Node::Extract(lo, a) => {
            let a = widen(build(a, b, vars), b);
            let lo = lo % 8;
            let width = Width::new((8 - lo as u32).clamp(1, 4));
            widen(b.extract(a, lo as u32, width), b)
        }
        Node::Ext(signed, a) => {
            let a = widen(build(a, b, vars), b);
            let narrow = b.extract(a, 0, Width::new(4));
            
            if *signed {
                b.sext(narrow, w8)
            } else {
                b.zext(narrow, w8)
            }
        }
    }
}

fn assignment(vals: &[u8; NUM_VARS]) -> Assignment {
    let mut asg = Assignment::new();
    for (i, v) in vals.iter().enumerate() {
        asg.set_by_name(&format!("x{i}"), *v as u64);
    }
    asg
}

fn make_vars(b: &ExprBuilder) -> Vec<ExprRef> {
    (0..NUM_VARS)
        .map(|i| b.var(&format!("x{i}"), Width::W8))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The simplifier must preserve semantics under every assignment tried.
    #[test]
    fn simplify_preserves_semantics(node in node_strategy(), vals in any::<[u8; NUM_VARS]>()) {
        let b = ExprBuilder::new();
        let vars = make_vars(&b);
        let e = build(&node, &b, &vars);
        let s = simplify(&e, &b);
        let asg = assignment(&vals);
        prop_assert_eq!(eval(&e, &asg).unwrap(), eval(&s, &asg).unwrap());
    }

    /// Known-bits must never contradict a concrete evaluation.
    #[test]
    fn known_bits_sound(node in node_strategy(), vals in any::<[u8; NUM_VARS]>()) {
        let b = ExprBuilder::new();
        let vars = make_vars(&b);
        let e = build(&node, &b, &vars);
        let kb = known_bits(&e);
        let asg = assignment(&vals);
        let v = eval(&e, &asg).unwrap();
        prop_assert_eq!(v & kb.known_zero, 0, "known-zero violated: v={:#x}", v);
        prop_assert_eq!(v & kb.known_one, kb.known_one, "known-one violated: v={:#x}", v);
    }

    /// Simplification must not grow the DAG.
    #[test]
    fn simplify_never_grows(node in node_strategy()) {
        let b = ExprBuilder::new();
        let vars = make_vars(&b);
        let e = build(&node, &b, &vars);
        let s = simplify(&e, &b);
        prop_assert!(crate::visit::node_count(&s) <= crate::visit::node_count(&e) + 1);
    }

    /// Simplification is idempotent up to structural equality.
    #[test]
    fn simplify_idempotent(node in node_strategy()) {
        let b = ExprBuilder::new();
        let vars = make_vars(&b);
        let e = build(&node, &b, &vars);
        let s1 = simplify(&e, &b);
        let s2 = simplify(&s1, &b);
        prop_assert_eq!(s1, s2);
    }

    /// Width invariants hold everywhere in the DAG.
    #[test]
    fn widths_consistent(node in node_strategy()) {
        let b = ExprBuilder::new();
        let vars = make_vars(&b);
        let e = build(&node, &b, &vars);
        crate::visit::postorder(&e, |n| {
            use crate::expr::ExprKind;
            match n.kind() {
                ExprKind::Binary(op, a, bb) if *op != BinOp::Concat => {
                    assert_eq!(a.width(), bb.width());
                    if op.is_comparison() {
                        assert_eq!(n.width(), Width::BOOL);
                    } else {
                        assert_eq!(n.width(), a.width());
                    }
                }
                ExprKind::Ite(c, t, f) => {
                    assert_eq!(c.width(), Width::BOOL);
                    assert_eq!(t.width(), f.width());
                    assert_eq!(n.width(), t.width());
                }
                _ => {}
            }
        });
    }
}
