//! Seeded property tests: the liveness worklist fixpoint must agree with
//! the exploded-path brute-force reference on randomly generated CFGs —
//! loops, diamonds, calls, and unreachable tails included.

use s2e_analysis::liveness::{analyze, brute_force_live_in};
use s2e_analysis::FlowGraph;
use s2e_prng::SplitMix64;
use s2e_vm::asm::{Assembler, Program};

/// Emits a random program of `n` labelled blocks over registers r0..r7.
/// Every branch targets a block label, so the CFG is arbitrary (cycles,
/// converging paths, dead tails) while staying decodable.
fn random_program(rng: &mut SplitMix64) -> Program {
    let n = 3 + rng.index(6);
    let mut a = Assembler::new(0x2000);
    for b in 0..n {
        a.label(&format!("b{b}"));
        for _ in 0..1 + rng.index(4) {
            let rd = rng.index(8) as u8;
            let rs1 = rng.index(8) as u8;
            let rs2 = rng.index(8) as u8;
            match rng.index(5) {
                0 => a.movi(rd, rng.next_u32() & 0xff),
                1 => a.add(rd, rs1, rs2),
                2 => a.xor(rd, rs1, rs2),
                3 => a.mov(rd, rs1),
                _ => a.addi(rd, rs1, 1),
            }
        }
        let target = format!("b{}", rng.index(n));
        match rng.index(5) {
            0 => a.jmp(&target),
            1 | 2 => {
                let rs1 = rng.index(8) as u8;
                let rs2 = rng.index(8) as u8;
                a.beq(rs1, rs2, &target);
                // Falls through to the next block (or the trailing halt).
            }
            3 => a.call("f"),
            _ => a.halt(),
        }
    }
    a.halt();
    // One shared callee so matched-return joining is exercised.
    a.label("f");
    let rd = rng.index(8) as u8;
    let rs1 = rng.index(8) as u8;
    a.add(rd, rs1, rs1);
    a.ret();
    a.finish()
}

#[test]
fn liveness_matches_brute_force_on_random_cfgs() {
    let mut rng = SplitMix64::new(0x5eed_11fe);
    for round in 0..60 {
        let p = random_program(&mut rng);
        let g = FlowGraph::build(&p, &[p.entry]);
        let l = analyze(&g).expect("liveness bound exceeded on a random CFG");
        for &b in g.cfg.blocks.keys() {
            let live = l.live_in[&b];
            for r in 0..16u8 {
                assert_eq!(
                    live.contains(r),
                    brute_force_live_in(&g, b, r),
                    "round {round}: live-in mismatch for r{r} at {b:#x}\n{:?}",
                    g.cfg.blocks[&b].instrs,
                );
            }
        }
    }
}

#[test]
fn dead_write_bits_are_sound_on_random_cfgs() {
    // A write flagged dead means the written register is not live right
    // after the instruction. Check against brute force applied to the
    // block suffix: append the suffix as a synthetic entry... simpler and
    // just as strong: re-derive per-instruction liveness by brute force
    // over successors, walking the block backward.
    use s2e_analysis::{defs, uses};
    let mut rng = SplitMix64::new(0xdead_beef);
    for _ in 0..40 {
        let p = random_program(&mut rng);
        let g = FlowGraph::build(&p, &[p.entry]);
        let l = analyze(&g).expect("liveness bound exceeded");
        for (&b, block) in &g.cfg.blocks {
            let dead = l.dead_writes[&b];
            // Liveness after the last instruction is the block's
            // live-out; walk backward accumulating the transfer.
            let mut after = l.live_out[&b];
            for (idx, i) in block.instrs.iter().enumerate().rev() {
                if idx < 64 && dead >> idx & 1 == 1 {
                    let d = defs(i);
                    assert_eq!(d.len(), 1, "only single-reg writes may be dead");
                    assert!(
                        d.inter(after).is_empty(),
                        "dead-flagged write at {b:#x}[{idx}] is live-after"
                    );
                }
                after = after.minus(defs(i)).union(uses(i));
            }
            // And the backward walk must land on the fixpoint live-in.
            assert_eq!(after, l.live_in[&b], "block transfer inconsistent at {b:#x}");
        }
    }
}
