//! Seeded property suite for the value-range domain: every abstract
//! operation is checked against brute-force concrete enumeration.
//!
//! The generators draw from a SplitMix64 stream with a fixed seed, so
//! the suite is deterministic yet covers a few thousand random shapes
//! per property (sets, strided intervals, ⊤, and every ALU operator).

use s2e_analysis::range::{range_binop, transfer, ValueRange, ENUM_MAX};
use s2e_analysis::AnalysisConfig;
use s2e_expr::fold::apply_binop;
use s2e_expr::{BinOp, Width};
use s2e_vm::isa::{reg, Instr, Opcode};

/// SplitMix64: tiny, seedable, good enough for test-case generation.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

const ALU_OPS: &[BinOp] = &[
    BinOp::Add,
    BinOp::Sub,
    BinOp::Mul,
    BinOp::UDiv,
    BinOp::SDiv,
    BinOp::URem,
    BinOp::SRem,
    BinOp::And,
    BinOp::Or,
    BinOp::Xor,
    BinOp::Shl,
    BinOp::LShr,
    BinOp::AShr,
];

/// Draws a random range together with a concrete sample of its members
/// (for ⊤ and huge intervals the sample is partial — soundness checks
/// only need members, never the full extension).
fn arbitrary_range(rng: &mut SplitMix64) -> (ValueRange, Vec<u32>) {
    match rng.below(4) {
        0 => {
            // Small explicit set, occasionally near the wrap boundary.
            let n = 1 + rng.below(6) as usize;
            let base = if rng.below(4) == 0 {
                u32::MAX - 40
            } else {
                (rng.next() as u32) & 0xffff
            };
            let vals: Vec<u32> = (0..n)
                .map(|_| base.wrapping_add((rng.below(64)) as u32))
                .collect();
            (ValueRange::from_values(vals.iter().copied()), vals)
        }
        1 => {
            // Strided interval built through from_values (never wraps).
            let lo = (rng.next() as u32) & 0xfff_ffff;
            let stride = 1 + rng.below(16) as u32;
            let n = 2 + rng.below(40) as u32;
            let vals: Vec<u32> = (0..n).filter_map(|k| lo.checked_add(k * stride)).collect();
            (ValueRange::from_values(vals.iter().copied()), vals)
        }
        2 => {
            let v = rng.next() as u32;
            (ValueRange::exact(v), vec![v])
        }
        _ => {
            // ⊤, sampled at a handful of probe points.
            let vals = (0..8).map(|_| rng.next() as u32).collect();
            (ValueRange::Top, vals)
        }
    }
}

#[test]
fn from_values_and_contains_agree() {
    let mut rng = SplitMix64(0x5eed_0001);
    for _ in 0..4000 {
        let (r, members) = arbitrary_range(&mut rng);
        for &v in &members {
            assert!(r.contains(v), "{r:?} must contain generator member {v:#x}");
        }
        if let Some(vals) = r.enumerate(ENUM_MAX) {
            for v in vals {
                assert!(r.contains(v), "{r:?} enumerated {v:#x} it does not contain");
            }
        }
    }
}

#[test]
fn join_is_an_upper_bound() {
    let mut rng = SplitMix64(0x5eed_0002);
    for _ in 0..4000 {
        let (a, ma) = arbitrary_range(&mut rng);
        let (b, mb) = arbitrary_range(&mut rng);
        let j = a.join(&b);
        for &v in ma.iter().chain(mb.iter()) {
            assert!(j.contains(v), "join({a:?}, {b:?}) = {j:?} lost member {v:#x}");
        }
        assert!(j.includes(&a) && j.includes(&b), "join must bound both operands");
        // Commutativity up to extension: each side's members are in the
        // other orientation too.
        let ji = b.join(&a);
        for &v in ma.iter().chain(mb.iter()) {
            assert!(ji.contains(v));
        }
    }
}

#[test]
fn range_binop_is_sound_for_every_alu_operator() {
    let mut rng = SplitMix64(0x5eed_0003);
    for _ in 0..3000 {
        let (a, ma) = arbitrary_range(&mut rng);
        let (b, mb) = arbitrary_range(&mut rng);
        let op = ALU_OPS[rng.below(ALU_OPS.len() as u64) as usize];
        let r = range_binop(op, &a, &b);
        // Brute force: every concrete pairing of sampled members must be
        // covered by the abstract result (the interpreter's apply_binop
        // is the single source of concrete semantics).
        for &x in &ma {
            for &y in &mb {
                let c = apply_binop(op, x as u64, y as u64, Width::W32) as u32;
                assert!(
                    r.contains(c),
                    "{op:?}: {a:?} op {b:?} = {r:?} misses {x:#x} op {y:#x} = {c:#x}"
                );
            }
        }
    }
}

#[test]
fn exact_pairwise_fold_matches_wrapping_semantics() {
    // Deterministic corner sweep: operands straddling the wrap boundary,
    // zero divisors, and oversized shifts — exactly the cases interval
    // rules must not invent semantics for.
    let corners = [0u32, 1, 2, 31, 32, 33, 0x7fff_ffff, 0x8000_0000, u32::MAX];
    for op in ALU_OPS {
        for &x in &corners {
            for &y in &corners {
                let a = ValueRange::exact(x);
                let b = ValueRange::exact(y);
                let r = range_binop(*op, &a, &b);
                let c = apply_binop(*op, x as u64, y as u64, Width::W32) as u32;
                assert!(
                    r.contains(c),
                    "{op:?} corner {x:#x},{y:#x}: {r:?} misses {c:#x}"
                );
            }
        }
    }
}

#[test]
fn instruction_transfer_is_sound_against_the_interpreter() {
    // Single-instruction transfer soundness: run `transfer` on abstract
    // inputs and the concrete ALU on every sampled member pair; the
    // abstract destination must cover every concrete outcome.
    let mut rng = SplitMix64(0x5eed_0004);
    let cfg = AnalysisConfig::default();
    let reg_ops = [
        Opcode::Add,
        Opcode::Sub,
        Opcode::Mul,
        Opcode::Divu,
        Opcode::Remu,
        Opcode::And,
        Opcode::Or,
        Opcode::Xor,
        Opcode::Shl,
        Opcode::Shr,
    ];
    for _ in 0..2000 {
        let (a, ma) = arbitrary_range(&mut rng);
        let (b, mb) = arbitrary_range(&mut rng);
        let op = reg_ops[rng.below(reg_ops.len() as u64) as usize];
        let i = Instr::new(op, reg::R3, reg::R1, reg::R2, 0);
        let mut s = s2e_analysis::range::havoc();
        s[reg::R1 as usize] = a.clone();
        s[reg::R2 as usize] = b.clone();
        transfer(&i, &mut s, &cfg);
        let bin = s2e_vm::interp::alu_binop(op).unwrap();
        for &x in &ma {
            for &y in &mb {
                let c = apply_binop(bin, x as u64, y as u64, Width::W32) as u32;
                assert!(
                    s[reg::R3 as usize].contains(c),
                    "{op:?}: transfer({a:?}, {b:?}) = {:?} misses {c:#x}",
                    s[reg::R3 as usize]
                );
            }
        }
        // Untouched registers must be untouched.
        assert!(matches!(s[reg::R7 as usize], ValueRange::Top));
    }
}

#[test]
fn widening_join_chain_stabilizes() {
    // Repeated joins along a growing chain must reach a fixed point
    // quickly — the absorbing ⊤ plus set→interval degradation bound the
    // chain length, which is what the analysis' widening counter relies
    // on between snaps to ⊤.
    let mut rng = SplitMix64(0x5eed_0005);
    for _ in 0..300 {
        let mut acc = ValueRange::exact(rng.next() as u32);
        let mut changes = 0;
        for _ in 0..2000 {
            let (next, _) = arbitrary_range(&mut rng);
            let joined = acc.join(&next);
            if joined != acc {
                changes += 1;
                acc = joined;
            }
            if matches!(acc, ValueRange::Top) {
                break;
            }
        }
        assert!(
            changes <= 64,
            "join chain changed {changes} times before stabilizing: {acc:?}"
        );
    }
}

#[test]
fn branch_clamp_below_interval_lo_stays_sound() {
    // Regression: r1 holds the interval [100, 1123] when `bltu r1, 50`
    // restricts the taken side to [0, 49] — entirely below the
    // interval's lo. The clamp must underflow to ⊥/an empty refinement
    // gracefully and the whole-program analysis must still converge
    // with per-block entry states for both branch successors.
    use s2e_analysis::{range, AnalysisConfig, FlowGraph};
    use s2e_vm::asm::Assembler;
    use std::collections::BTreeMap;

    let mut a = Assembler::new(0x100);
    a.ld32(1, 2, 0); // r1 unknown
    a.andi(1, 1, 1023); // r1 in [0, 1023]
    a.addi(1, 1, 100); // r1 in [100, 1123]
    a.movi(3, 50);
    a.bltu(1, 3, "t");
    a.halt();
    a.label("t");
    a.halt();
    let p = a.finish();
    let g = FlowGraph::build(&p, &[p.entry]);
    let ra = range::analyze(&g, &BTreeMap::new(), &AnalysisConfig::default()).unwrap();
    assert!(ra.entry.len() >= 2);
}
