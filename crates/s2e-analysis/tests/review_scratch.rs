use s2e_analysis::range;
use s2e_analysis::{AnalysisConfig, FlowGraph};
use s2e_vm::asm::Assembler;
use std::collections::BTreeMap;

#[test]
fn clamp_underflow_repro() {
    // r1 in [100, 1123] (interval), branch bltu r1, 50: taken-side
    // restriction clamps to [0, 49], entirely below lo=100.
    let mut a = Assembler::new(0x100);
    a.ld32(1, 2, 0); // r1 unknown
    a.andi(1, 1, 1023); // r1 in [0, 1023]
    a.addi(1, 1, 100); // r1 in [100, 1123]
    a.movi(3, 50);
    a.bltu(1, 3, "t");
    a.halt();
    a.label("t");
    a.halt();
    let p = a.finish();
    let g = FlowGraph::build(&p, &[p.entry]);
    let ra = range::analyze(&g, &BTreeMap::new(), &AnalysisConfig::default()).unwrap();
    assert!(ra.entry.len() >= 2);
}
