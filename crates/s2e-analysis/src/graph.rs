//! The flow graph the dataflow passes run over.
//!
//! Wraps a [`StaticCfg`] with the facts the passes share: a terminator
//! classification per block, the address-taken target set for indirect
//! jumps, and direct-call/return matching. Matching pairs each `Ret`
//! block with the return sites of the direct calls whose callee can
//! reach it — the classic context-insensitive approximation, but
//! *return-site matched* so dataflow leaving one function's `ret` does
//! not leak into every other function's call sites.
//!
//! Termination: every pass here is a monotone function over a finite
//! lattice, driven by a worklist whose pop count is bounded by
//! [`iteration_bound`]; [`run_worklist`] fails loudly rather than
//! looping if a non-monotone transfer ever violates the bound.

use crate::defuse::RegSet;
use s2e_dbt::cfg::{StaticCfg, UNKNOWN_SINK};
use s2e_vm::asm::Program;
use s2e_vm::isa::{Instr, Opcode, INSTR_SIZE};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// How a block leaves: the edge shapes the passes care about.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Term {
    /// Fall-through or unconditional jump to one block.
    Goto(u32),
    /// Conditional branch: taken target, fall-through.
    Branch { taken: u32, fall: u32 },
    /// Direct call: callee entry and return site.
    Call { callee: u32, ret: u32 },
    /// Indirect call: unknown callee (address-taken set), known return
    /// site.
    CallUnknown { ret: u32 },
    /// Environment trap; control resumes at the return site with the
    /// environment's effects applied.
    Syscall { ret: u32 },
    /// Function return: flows to the matched callers' return sites, or
    /// out of the analyzed region if unmatched.
    Ret,
    /// Computed jump: flows to every address-taken block.
    IndirectJump,
    /// Return from interrupt: leaves the analyzed region (handlers are
    /// assumed transparent to the interrupted context).
    Iret,
    /// No successors (halt, or decoding stopped).
    Halt,
}

/// A per-pass iteration budget, linear in the graph size. Each pass's
/// per-block state is a finite lattice of height ≤ 33 (16 registers ×
/// at most two liftings plus a reached bit), and a block is re-queued
/// only when its state strictly grows, so `64·(blocks + edges) + 128`
/// pops is far beyond any monotone fixpoint on these graphs.
pub fn iteration_bound(blocks: usize, edges: usize) -> usize {
    64 * (blocks + edges) + 128
}

/// Error raised when a pass exceeds its iteration bound.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BoundExceeded {
    /// Which pass overran.
    pub pass: &'static str,
    /// The bound it overran.
    pub bound: usize,
}

impl std::fmt::Display for BoundExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} pass exceeded its iteration bound of {}", self.pass, self.bound)
    }
}

impl std::error::Error for BoundExceeded {}

/// Deduplicating bounded worklist: `step` processes one block and pushes
/// the blocks whose state it changed. Returns the number of pops.
pub fn run_worklist(
    pass: &'static str,
    seeds: impl IntoIterator<Item = u32>,
    bound: usize,
    mut step: impl FnMut(u32, &mut Vec<u32>),
) -> Result<usize, BoundExceeded> {
    let mut queue: VecDeque<u32> = VecDeque::new();
    let mut queued: BTreeSet<u32> = BTreeSet::new();
    for s in seeds {
        if queued.insert(s) {
            queue.push_back(s);
        }
    }
    let mut iterations = 0usize;
    let mut changed = Vec::new();
    while let Some(b) = queue.pop_front() {
        queued.remove(&b);
        iterations += 1;
        if iterations > bound {
            return Err(BoundExceeded { pass, bound });
        }
        changed.clear();
        step(b, &mut changed);
        for &c in &changed {
            if queued.insert(c) {
                queue.push_back(c);
            }
        }
    }
    Ok(iterations)
}

/// The analysis-ready view of one program's CFG.
pub struct FlowGraph {
    /// The underlying static CFG.
    pub cfg: StaticCfg,
    /// Root block addresses (entry points).
    pub roots: Vec<u32>,
    /// Terminator classification per block.
    pub term: BTreeMap<u32, Term>,
    /// Blocks whose address is taken (`movi` immediate naming a block
    /// start) plus the roots: the conservative target set of indirect
    /// jumps and unknown callees.
    pub address_taken: Vec<u32>,
    /// `Ret` block → return sites of the direct calls it can serve.
    /// Absent ⇒ the return escapes the analyzed region.
    pub ret_sites: BTreeMap<u32, Vec<u32>>,
    /// Indirect blocks (`CallUnknown`/`IndirectJump`) whose *complete*
    /// successor set was proven by the value-range pass, keyed by block
    /// start. Flows at these blocks use the proven targets instead of
    /// the address-taken widening.
    pub resolved: BTreeMap<u32, Vec<u32>>,
    /// Total edge count (for the iteration bound).
    pub edges: usize,
}

fn classify(block_start: u32, instrs: &[Instr], successors: &[u32]) -> Term {
    let Some(last) = instrs.last() else {
        return Term::Halt;
    };
    let last_pc = block_start + (instrs.len() as u32 - 1) * INSTR_SIZE;
    let next = last_pc + INSTR_SIZE;
    match last.op {
        Opcode::Jmp => Term::Goto(last.imm),
        Opcode::Beq | Opcode::Bne | Opcode::Bltu | Opcode::Bgeu | Opcode::Blts | Opcode::Bges => {
            Term::Branch { taken: last.imm, fall: next }
        }
        Opcode::Call => Term::Call { callee: last.imm, ret: next },
        Opcode::CallR => Term::CallUnknown { ret: next },
        Opcode::Syscall => Term::Syscall { ret: next },
        Opcode::Ret => Term::Ret,
        Opcode::JmpR => Term::IndirectJump,
        Opcode::Iret => Term::Iret,
        Opcode::Halt => Term::Halt,
        // Split block (leader or size cap): single fall-through edge.
        _ => match successors.first() {
            Some(&s) if s != UNKNOWN_SINK => Term::Goto(s),
            _ => Term::Halt,
        },
    }
}

/// Recovers one merged [`StaticCfg`] covering several programs at
/// disjoint load addresses (kernel + driver + exerciser, say). Roots are
/// routed to the program whose image covers them, so cross-program
/// `movi entry; callr` patterns become address-taken (and resolvable)
/// edges in a single graph instead of escaping each per-program one.
pub fn merged_cfg(progs: &[&Program], roots: &[u32]) -> StaticCfg {
    let mut merged = StaticCfg::default();
    for prog in progs {
        let own: Vec<u32> =
            roots.iter().copied().filter(|&r| r >= prog.base && r < prog.end()).collect();
        let cfg = s2e_dbt::cfg::build_cfg(prog, &own);
        merged.blocks.extend(cfg.blocks);
    }
    merged
}

impl FlowGraph {
    /// Builds the flow graph for `prog` rooted at `roots`.
    pub fn build(prog: &Program, roots: &[u32]) -> FlowGraph {
        let cfg = s2e_dbt::cfg::build_cfg(prog, roots);
        FlowGraph::from_cfg(cfg, roots)
    }

    /// Builds one merged flow graph over several programs (see
    /// [`merged_cfg`]), with `resolved_sites` mapping indirect
    /// *instruction* pcs to proven-complete target sets.
    pub fn build_merged(
        progs: &[&Program],
        roots: &[u32],
        resolved_sites: &BTreeMap<u32, Vec<u32>>,
    ) -> FlowGraph {
        FlowGraph::from_cfg_resolved(merged_cfg(progs, roots), roots, resolved_sites)
    }

    /// Builds the flow graph from an already-recovered CFG.
    pub fn from_cfg(cfg: StaticCfg, roots: &[u32]) -> FlowGraph {
        FlowGraph::from_cfg_resolved(cfg, roots, &BTreeMap::new())
    }

    /// Builds the flow graph from an already-recovered CFG plus resolved
    /// indirect sites. `resolved_sites` is keyed by the pc of the
    /// indirect instruction itself (stable across block re-splits);
    /// entries whose targets are not all block starts in `cfg` are
    /// dropped rather than narrowed — a partial successor set is not a
    /// sound replacement for the address-taken widening.
    pub fn from_cfg_resolved(
        cfg: StaticCfg,
        roots: &[u32],
        resolved_sites: &BTreeMap<u32, Vec<u32>>,
    ) -> FlowGraph {
        let mut term = BTreeMap::new();
        let mut taken: BTreeSet<u32> = roots.iter().copied().collect();
        for (&start, b) in &cfg.blocks {
            term.insert(start, classify(start, &b.instrs, &b.successors));
            for i in &b.instrs {
                if i.op == Opcode::MovI && cfg.blocks.contains_key(&i.imm) {
                    taken.insert(i.imm);
                }
            }
        }
        let roots: Vec<u32> = roots.iter().copied().filter(|r| cfg.blocks.contains_key(r)).collect();
        let address_taken: Vec<u32> = taken.into_iter().filter(|a| cfg.blocks.contains_key(a)).collect();

        // Re-key resolved sites (instruction pc) by the block that ends
        // at each site in *this* cfg, dropping any entry whose targets
        // did not all materialize as blocks.
        let mut resolved: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
        for (&start, b) in &cfg.blocks {
            if !matches!(term.get(&start), Some(Term::CallUnknown { .. } | Term::IndirectJump)) {
                continue;
            }
            let site = start + (b.instrs.len() as u32 - 1) * INSTR_SIZE;
            if let Some(targets) = resolved_sites.get(&site) {
                if !targets.is_empty() && targets.iter().all(|t| cfg.blocks.contains_key(t)) {
                    resolved.insert(start, targets.clone());
                }
            }
        }

        // Direct-call/return matching: for each direct callee, collect
        // the blocks of its intra-procedural body (calls step over their
        // callee via the return site; Ret/JmpR/Iret/Halt stop the walk),
        // then give every Ret block in that body the callee's return
        // sites. Resolved indirect calls participate exactly like direct
        // ones: their proven callees' rets gain the `callr` return site.
        let mut callees: BTreeMap<u32, Vec<u32>> = BTreeMap::new(); // callee -> return sites
        for (b, t) in &term {
            match t {
                Term::Call { callee, ret } => callees.entry(*callee).or_default().push(*ret),
                Term::CallUnknown { ret } => {
                    if let Some(targets) = resolved.get(b) {
                        for &callee in targets {
                            callees.entry(callee).or_default().push(*ret);
                        }
                    }
                }
                _ => {}
            }
        }
        let mut ret_sites: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
        for (&callee, sites) in &callees {
            let mut body: BTreeSet<u32> = BTreeSet::new();
            let mut stack = vec![callee];
            while let Some(b) = stack.pop() {
                if !cfg.blocks.contains_key(&b) || !body.insert(b) {
                    continue;
                }
                match term.get(&b) {
                    Some(Term::Goto(t)) => stack.push(*t),
                    Some(Term::Branch { taken, fall }) => {
                        stack.push(*taken);
                        stack.push(*fall);
                    }
                    Some(Term::Call { ret, .. })
                    | Some(Term::CallUnknown { ret })
                    | Some(Term::Syscall { ret }) => stack.push(*ret),
                    // A resolved computed jump stays inside the function:
                    // its proven targets are part of the body.
                    Some(Term::IndirectJump) => {
                        if let Some(targets) = resolved.get(&b) {
                            stack.extend(targets.iter().copied());
                        }
                    }
                    _ => {}
                }
            }
            for &b in &body {
                if matches!(term.get(&b), Some(Term::Ret)) {
                    let e = ret_sites.entry(b).or_default();
                    for &s in sites {
                        if !e.contains(&s) {
                            e.push(s);
                        }
                    }
                }
            }
        }

        let mut edges = 0usize;
        for (b, t) in &term {
            edges += match t {
                Term::Goto(_) | Term::Call { .. } | Term::Syscall { .. } => 2,
                Term::Branch { .. } => 2,
                Term::CallUnknown { .. } => {
                    1 + resolved.get(b).map(|t| t.len()).unwrap_or(address_taken.len())
                }
                Term::Ret => ret_sites.get(b).map(|s| s.len()).unwrap_or(0),
                Term::IndirectJump => {
                    resolved.get(b).map(|t| t.len()).unwrap_or(address_taken.len())
                }
                Term::Iret | Term::Halt => 0,
            };
        }

        FlowGraph { cfg, roots, term, address_taken, ret_sites, resolved, edges }
    }

    /// The per-pass iteration bound for this graph.
    pub fn bound(&self) -> usize {
        iteration_bound(self.cfg.block_count(), self.edges)
    }

    /// Forward-successor blocks of `b` for may-analyses, with the
    /// environment/indirect widening each pass applies at these edges
    /// handled by the caller via the [`Term`] it can also inspect.
    pub fn forward_succs(&self, b: u32) -> Vec<u32> {
        match self.term.get(&b) {
            Some(Term::Goto(t)) => vec![*t],
            Some(Term::Branch { taken, fall }) => vec![*taken, *fall],
            Some(Term::Call { callee, ret }) => vec![*callee, *ret],
            Some(Term::CallUnknown { ret }) => {
                let mut v = self
                    .resolved
                    .get(&b)
                    .cloned()
                    .unwrap_or_else(|| self.address_taken.clone());
                if !v.contains(ret) {
                    v.push(*ret);
                }
                v
            }
            Some(Term::Syscall { ret }) => vec![*ret],
            Some(Term::Ret) => self.ret_sites.get(&b).cloned().unwrap_or_default(),
            Some(Term::IndirectJump) => self
                .resolved
                .get(&b)
                .cloned()
                .unwrap_or_else(|| self.address_taken.clone()),
            Some(Term::Iret) | Some(Term::Halt) | None => vec![],
        }
    }

    /// The pc of the indirect instruction ending block `b` (its site
    /// key in a resolved-sites map), if `b` ends indirectly.
    pub fn indirect_site_pc(&self, b: u32) -> Option<u32> {
        if !matches!(
            self.term.get(&b),
            Some(Term::CallUnknown { .. } | Term::IndirectJump | Term::Ret)
        ) {
            return None;
        }
        let blk = self.cfg.blocks.get(&b)?;
        Some(b + (blk.instrs.len() as u32 - 1) * INSTR_SIZE)
    }
}

/// Seed taint state at a root block: which registers (and whether
/// memory) may already hold symbolic data when control enters there.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TaintSeed {
    /// Possibly-symbolic registers at entry.
    pub regs: RegSet,
    /// Whether guest memory may already contain symbolic bytes.
    pub mem: bool,
}

impl TaintSeed {
    /// Nothing symbolic at entry.
    pub fn clean() -> TaintSeed {
        TaintSeed::default()
    }

    /// Everything possibly symbolic (sound default for an entry point
    /// reached from unanalyzed code).
    pub fn all() -> TaintSeed {
        TaintSeed { regs: RegSet::ALL, mem: true }
    }
}

/// Tunables that encode software conventions the analysis cannot see.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AnalysisConfig {
    /// Registers the environment may modify across a `Syscall` (and may
    /// hand back symbolic). Defaults to all registers; embedders that
    /// know their kernel's clobber convention can narrow this.
    pub env_clobbers: RegSet,
    /// Whether a `Syscall` may leave symbolic bytes in guest memory.
    pub env_taints_memory: bool,
}

impl Default for AnalysisConfig {
    fn default() -> AnalysisConfig {
        AnalysisConfig { env_clobbers: RegSet::ALL, env_taints_memory: true }
    }
}
