//! Backward guest-register liveness (may-analysis).
//!
//! Lattice: per block, the set of live-in registers ([`RegSet`], a
//! 16-element powerset ordered by inclusion). Transfer is the classic
//! `live = (live − defs) ∪ uses` walked backward over the block;
//! join is set union over the dynamic successor relation:
//!
//! - direct calls: union of the callee's live-in and the return site's
//!   live-in (conservative — the callee may preserve registers the
//!   return site reads);
//! - matched `ret`s: union over the matched callers' return sites;
//! - indirect exits (`jmpr`, `iret`, unmatched `ret`, unknown callees):
//!   everything live — code we cannot see may read any register.
//!
//! The per-instruction dead-write bits are what the engine consumes: a
//! write is dead when its target is not live immediately after the
//! instruction, so materializing the value (in particular, building a
//! symbolic expression for it) can be skipped. That judgment leans on
//! one software assumption, documented in DESIGN.md §10: interrupt
//! handlers are register-transparent (they restore every register they
//! touch), so a value dead along all *visible* paths is not secretly
//! read by a handler that fires between blocks.

use crate::defuse::{defs, uses, RegSet};
use crate::graph::{run_worklist, BoundExceeded, FlowGraph, Term};
use std::collections::BTreeMap;

/// Liveness fixpoint over one program.
#[derive(Clone, Debug, Default)]
pub struct Liveness {
    /// Live-in registers per block.
    pub live_in: BTreeMap<u32, RegSet>,
    /// Live-out registers per block.
    pub live_out: BTreeMap<u32, RegSet>,
    /// Per block: bit *i* set ⇒ the register written by instruction *i*
    /// is dead immediately after it.
    pub dead_writes: BTreeMap<u32, u64>,
    /// Worklist pops used to reach the fixpoint.
    pub iterations: usize,
}

fn block_live_in(g: &FlowGraph, b: u32, live_out: RegSet) -> RegSet {
    let block = &g.cfg.blocks[&b];
    let mut live = live_out;
    for i in block.instrs.iter().rev() {
        live = live.minus(defs(i)).union(uses(i));
    }
    live
}

fn block_live_out(g: &FlowGraph, b: u32, live_in: &BTreeMap<u32, RegSet>) -> RegSet {
    let at = |t: u32| live_in.get(&t).copied().unwrap_or(RegSet::EMPTY);
    match g.term.get(&b) {
        Some(Term::Goto(t)) => at(*t),
        Some(Term::Branch { taken, fall }) => at(*taken).union(at(*fall)),
        Some(Term::Call { callee, ret }) => at(*callee).union(at(*ret)),
        // Unknown callee: it may read anything.
        Some(Term::CallUnknown { .. }) => RegSet::ALL,
        Some(Term::Syscall { ret }) => at(*ret),
        Some(Term::Ret) => match g.ret_sites.get(&b) {
            Some(sites) => sites.iter().fold(RegSet::EMPTY, |acc, s| acc.union(at(*s))),
            // Escaping return: the unseen caller may read anything.
            None => RegSet::ALL,
        },
        Some(Term::IndirectJump) | Some(Term::Iret) => RegSet::ALL,
        Some(Term::Halt) | None => RegSet::EMPTY,
    }
}

/// Runs the liveness fixpoint on `g`.
pub fn analyze(g: &FlowGraph) -> Result<Liveness, BoundExceeded> {
    // Reverse edges of the *liveness* successor relation, so a changed
    // live-in re-queues exactly the blocks whose live-out reads it.
    let mut preds: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
    for &b in g.cfg.blocks.keys() {
        let succs: Vec<u32> = match g.term.get(&b) {
            Some(Term::Goto(t)) => vec![*t],
            Some(Term::Branch { taken, fall }) => vec![*taken, *fall],
            Some(Term::Call { callee, ret }) => vec![*callee, *ret],
            Some(Term::Syscall { ret }) => vec![*ret],
            Some(Term::Ret) => g.ret_sites.get(&b).cloned().unwrap_or_default(),
            _ => vec![],
        };
        for s in succs {
            preds.entry(s).or_default().push(b);
        }
    }

    let mut live_in: BTreeMap<u32, RegSet> = BTreeMap::new();
    let iterations = run_worklist(
        "liveness",
        g.cfg.blocks.keys().copied(),
        g.bound(),
        |b, changed| {
            let out = block_live_out(g, b, &live_in);
            let inn = block_live_in(g, b, out);
            let slot = live_in.entry(b).or_insert(RegSet::EMPTY);
            let grown = RegSet(slot.0 | inn.0);
            if grown != *slot {
                *slot = grown;
                if let Some(ps) = preds.get(&b) {
                    changed.extend(ps.iter().copied());
                }
            }
        },
    )?;

    // Final states: recompute live-out and the dead-write bits from the
    // fixpoint live-ins.
    let mut result = Liveness { iterations, ..Liveness::default() };
    for (&b, block) in &g.cfg.blocks {
        let out = block_live_out(g, b, &live_in);
        result.live_out.insert(b, out);
        result.live_in.insert(b, live_in.get(&b).copied().unwrap_or(RegSet::EMPTY));
        // Walk backward recording liveness *after* each instruction.
        let n = block.instrs.len();
        let mut after = vec![RegSet::EMPTY; n];
        let mut live = out;
        for idx in (0..n).rev() {
            after[idx] = live;
            let i = &block.instrs[idx];
            live = live.minus(defs(i)).union(uses(i));
        }
        let mut dead = 0u64;
        for (idx, i) in block.instrs.iter().enumerate().take(64) {
            let d = defs(i);
            // Only single-register writes qualify; multi-reg effects
            // (pop: rd + sp) stay materialized.
            if d.len() == 1 && d.inter(after[idx]).is_empty() {
                dead |= 1 << idx;
            }
        }
        result.dead_writes.insert(b, dead);
    }
    Ok(result)
}

/// Brute-force reference: is `r` live at the entry of `b`? Enumerates
/// every path through the exploded (block, instruction) graph with a
/// visited set, answering "can some path read `r` before writing it".
/// Exponentially dumber than the worklist but obviously correct; the
/// property tests compare the two.
pub fn brute_force_live_in(g: &FlowGraph, b: u32, r: u8) -> bool {
    let mut visited = std::collections::BTreeSet::new();
    let mut stack = vec![b];
    while let Some(cur) = stack.pop() {
        if !visited.insert(cur) {
            continue;
        }
        let Some(block) = g.cfg.blocks.get(&cur) else { continue };
        let mut written = false;
        for i in &block.instrs {
            if uses(i).contains(r) {
                return true;
            }
            if defs(i).contains(r) {
                written = true;
                break;
            }
        }
        if written {
            continue;
        }
        match g.term.get(&cur) {
            Some(Term::CallUnknown { .. }) | Some(Term::IndirectJump) | Some(Term::Iret) => {
                return true; // unseen code may read r
            }
            Some(Term::Ret) if !g.ret_sites.contains_key(&cur) => return true,
            Some(Term::Goto(t)) => stack.push(*t),
            Some(Term::Branch { taken, fall }) => {
                stack.push(*taken);
                stack.push(*fall);
            }
            Some(Term::Call { callee, ret }) => {
                stack.push(*callee);
                stack.push(*ret);
            }
            Some(Term::Syscall { ret }) => stack.push(*ret),
            Some(Term::Ret) => stack.extend(g.ret_sites[&cur].iter().copied()),
            Some(Term::Halt) | None => {}
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2e_vm::asm::Assembler;
    use s2e_vm::isa::reg;

    #[test]
    fn straight_line_dead_write() {
        let mut a = Assembler::new(0x2000);
        a.movi(reg::R1, 1); // dead: overwritten below, never read
        a.movi(reg::R1, 2);
        a.add(reg::R2, reg::R1, reg::R1);
        a.halt();
        let p = a.finish();
        let g = FlowGraph::build(&p, &[p.entry]);
        let l = analyze(&g).unwrap();
        let dead = l.dead_writes[&0x2000];
        assert!(dead & 1 != 0, "first movi should be dead");
        assert!(dead & 0b10 == 0, "second movi is read by add");
        // r2's write is dead too (halt follows).
        assert!(dead & 0b100 != 0);
        assert!(l.live_in[&0x2000].is_empty());
    }

    #[test]
    fn branch_keeps_value_live() {
        let mut a = Assembler::new(0x2000);
        a.movi(reg::R1, 7);
        a.beq(reg::R0, reg::R0, "use");
        a.halt();
        a.label("use");
        a.add(reg::R2, reg::R1, reg::R1);
        a.halt();
        let p = a.finish();
        let g = FlowGraph::build(&p, &[p.entry]);
        let l = analyze(&g).unwrap();
        // r1 is read on the taken side, so its write is not dead.
        assert!(l.dead_writes[&0x2000] & 1 == 0);
        // r0 is live-in at the entry (branch reads it).
        assert!(l.live_in[&0x2000].contains(reg::R0));
    }

    #[test]
    fn escaping_ret_pins_everything_live() {
        let mut a = Assembler::new(0x2000);
        a.movi(reg::R4, 9); // looks dead, but the caller is unseen
        a.ret();
        let p = a.finish();
        let g = FlowGraph::build(&p, &[p.entry]);
        let l = analyze(&g).unwrap();
        assert_eq!(l.dead_writes[&0x2000], 0);
        assert_eq!(l.live_out[&0x2000], RegSet::ALL);
    }

    #[test]
    fn matched_ret_uses_return_site_liveness() {
        let mut a = Assembler::new(0x2000);
        a.call("f");
        a.add(reg::R2, reg::R0, reg::R0); // return site reads r0 only
        a.halt();
        a.label("f");
        a.movi(reg::R4, 9); // dead: return site never reads r4
        a.movi(reg::R0, 1);
        a.ret();
        let p = a.finish();
        let g = FlowGraph::build(&p, &[p.entry]);
        let l = analyze(&g).unwrap();
        let f = p.symbol("f");
        assert!(l.dead_writes[&f] & 1 != 0, "r4 write is dead via matched ret");
        assert!(l.dead_writes[&f] & 0b10 == 0, "r0 is read at the return site");
    }
}
