//! Static dataflow pre-pass over the guest CFG.
//!
//! S2E's selectivity is dynamic: the engine inspects every instruction's
//! operands at run time to decide whether symbolic machinery is needed
//! (`touches_symbolic`), and probes the constraint solver at every
//! symbolic branch to decide feasibility. This crate moves the decisions
//! that are *statically forced* out of the hot loop, computing three
//! classical dataflow analyses once per program image at load time:
//!
//! 1. **Liveness** ([`liveness`]) — backward may-analysis over guest
//!    registers. Produces per-block live-in masks and per-instruction
//!    dead-write bits; the engine skips building symbolic expressions
//!    for values that are never read.
//! 2. **Symbolic-reachability taint** ([`taint`]) — forward may-analysis
//!    seeded at port-I/O reads, `S2Op::Symbolic*` sites, and
//!    embedder-declared root states. Produces the set of *concrete-only*
//!    blocks, which the engine executes on a lean dispatch path that
//!    skips per-instruction symbolic-operand checks.
//! 3. **Constant propagation** ([`constprop`]) — forward conditional
//!    constant propagation using the interpreter's exact ALU/branch
//!    semantics. Produces statically-dead CFG edges and unreachable
//!    blocks, feeding the `pathkiller` analyzer and the dead-code
//!    report in `s2e-tools`.
//!
//! All passes run over the [`graph::FlowGraph`] worklist framework with
//! a hard linear iteration bound ([`graph::iteration_bound`]) — a
//! non-monotone transfer is a loud error, never a hang.
//!
//! The engine-facing product is [`PrepassInfo`], built by
//! [`PrepassBuilder`] from one analysis per loaded program. It
//! implements [`s2e_dbt::BlockAnnotator`], so the shared block cache
//! stamps every freshly translated block with its static facts; dynamic
//! blocks that start mid-static-block or cover unanalyzed code degrade
//! to the conservative annotation per instruction, never unsoundly.

pub mod constprop;
pub mod defuse;
pub mod graph;
pub mod interproc;
pub mod liveness;
pub mod range;
pub mod taint;

pub use constprop::{Const, ConstProp};
pub use defuse::{defs, observed, uses, RegSet};
pub use graph::{
    iteration_bound, run_worklist, AnalysisConfig, BoundExceeded, FlowGraph, TaintSeed, Term,
};
pub use interproc::{ClobberSummaries, IncrementalPrepass, Refinement};
pub use liveness::Liveness;
pub use range::{RangeAnalysis, ValueRange};
pub use taint::{Taint, TaintState};

use s2e_dbt::{BlockAnnotation, BlockAnnotator, IndirectPredictions};
use s2e_vm::asm::Program;
use s2e_vm::isa::{Instr, INSTR_SIZE};
use std::collections::{BTreeMap, BTreeSet};
use std::ops::Range;

/// All three fixpoints over one program image.
pub struct ProgramAnalysis {
    /// The flow graph the passes ran over.
    pub graph: FlowGraph,
    /// Guest-register liveness.
    pub liveness: Liveness,
    /// Symbolic-reachability taint.
    pub taint: Taint,
    /// Conditional constant propagation.
    pub constprop: ConstProp,
}

impl ProgramAnalysis {
    /// Total worklist pops across the three passes.
    pub fn iterations(&self) -> usize {
        self.liveness.iterations + self.taint.iterations + self.constprop.iterations
    }

    /// The shared per-pass iteration bound.
    pub fn bound(&self) -> usize {
        self.graph.bound()
    }

    /// Statically-dead CFG edges `(from, to)`.
    pub fn dead_edges(&self) -> &BTreeSet<(u32, u32)> {
        &self.constprop.dead_edges
    }

    /// Blocks unreachable once dead edges are pruned.
    pub fn unreachable(&self) -> &BTreeSet<u32> {
        &self.constprop.unreachable
    }
}

/// Runs all three passes on `prog`.
///
/// `roots` pairs each entry point with the embedder-declared taint seed
/// (symbolic data injected by a harness is invisible in the instruction
/// stream, so declaring it here is part of the soundness contract).
/// `config` encodes the environment's register-clobber convention.
pub fn analyze(
    prog: &Program,
    roots: &[(u32, TaintSeed)],
    config: &AnalysisConfig,
) -> Result<ProgramAnalysis, BoundExceeded> {
    let root_addrs: Vec<u32> = roots.iter().map(|&(r, _)| r).collect();
    let graph = FlowGraph::build(prog, &root_addrs);
    let liveness = liveness::analyze(&graph)?;
    let taint = taint::analyze(&graph, roots, config)?;
    let constprop = constprop::analyze(&graph, config)?;
    Ok(ProgramAnalysis { graph, liveness, taint, constprop })
}

/// Refinement-augmented analysis over a *set* of programs (DESIGN.md
/// §15): interval-based indirect-target resolution, clobber-summary
/// taint and const-prop over the refined merged graph, liveness over the
/// same graph, and per-instruction concrete masks. Where [`analyze`] is
/// per-program and call-boundary-conservative, this is the whole-image
/// interprocedural model — and it stays live at run time through
/// [`RefinedAnalysis::absorb`].
pub struct RefinedAnalysis {
    /// Incremental state: refinement, dependent fixpoints, and the
    /// dynamic-discovery absorption entry point.
    pub prepass: IncrementalPrepass,
    /// Liveness over the refined merged graph.
    pub liveness: Liveness,
}

impl RefinedAnalysis {
    /// Builds the annotator for the refined model: block facts from the
    /// merged graph, per-instruction concrete masks enabled.
    pub fn annotator(&self) -> PrepassInfo {
        PrepassBuilder::new().add_refined(self).build()
    }

    /// The current indirect-target prediction table (static resolutions
    /// plus absorbed discoveries).
    pub fn predictions(&self) -> IndirectPredictions {
        self.prepass.predictions()
    }

    /// Absorbs one runtime-discovered `(site, target)` pair: extends the
    /// static model, restarts taint/const-prop incrementally from the
    /// affected blocks, and refreshes liveness over the grown graph.
    pub fn absorb(&mut self, site: u32, target: u32) -> Result<(), BoundExceeded> {
        self.prepass.absorb_discovery(site, target)?;
        self.liveness = liveness::analyze(&self.prepass.refinement.graph)?;
        Ok(())
    }
}

/// Runs the refined interprocedural pipeline over `progs` (analyzed as
/// one merged image). `roots` declares entry points and taint seeds as
/// in [`analyze`].
pub fn analyze_refined(
    progs: &[&Program],
    roots: &[(u32, TaintSeed)],
    config: &AnalysisConfig,
) -> Result<RefinedAnalysis, BoundExceeded> {
    let owned: Vec<Program> = progs.iter().map(|p| (*p).clone()).collect();
    let root_addrs: Vec<u32> = roots.iter().map(|&(r, _)| r).collect();
    let prepass =
        IncrementalPrepass::build(owned, root_addrs, roots.to_vec(), config.clone())?;
    let liveness = liveness::analyze(&prepass.refinement.graph)?;
    Ok(RefinedAnalysis { prepass, liveness })
}

/// Per-static-block facts flattened for annotation lookup.
#[derive(Clone, Copy, Debug)]
struct BlockFacts {
    end: u32,
    concrete_only: bool,
    live_in: RegSet,
}

/// Aggregated static facts for every analyzed program, ready to stamp
/// onto translated blocks. Build with [`PrepassBuilder`]; install on the
/// engine's block cache via [`s2e_dbt::BlockAnnotator`].
pub struct PrepassInfo {
    /// Static block facts keyed by block start.
    blocks: BTreeMap<u32, BlockFacts>,
    /// PCs whose single-register write is dead.
    dead_write_pcs: BTreeSet<u32>,
    /// Include-list mirror of the engine's fork-enabling `CodeRanges`.
    /// Empty ⇒ the engine allows forking everywhere ⇒ `fork_free` is
    /// never claimed.
    fork_ranges: Vec<Range<u32>>,
    /// Union of statically-dead edges across programs.
    dead_edges: BTreeSet<(u32, u32)>,
    /// Union of statically-unreachable blocks across programs.
    unreachable: BTreeSet<u32>,
    /// PCs proven to never observe symbolic data, for per-instruction
    /// mask stamping. Populated only by the refined pipeline
    /// ([`PrepassBuilder::add_refined`]); the base prepass leaves it
    /// empty so block-level numbers stay comparable across PRs.
    concrete_pcs: BTreeSet<u32>,
    /// Sum of worklist pops across all programs and passes.
    total_iterations: usize,
}

impl PrepassInfo {
    fn covering(&self, pc: u32) -> Option<&BlockFacts> {
        self.blocks
            .range(..=pc)
            .next_back()
            .map(|(_, f)| f)
            .filter(|f| pc < f.end)
    }

    /// Statically-dead CFG edges across all analyzed programs.
    pub fn dead_edges(&self) -> &BTreeSet<(u32, u32)> {
        &self.dead_edges
    }

    /// Statically-unreachable block starts across all analyzed programs.
    pub fn unreachable(&self) -> &BTreeSet<u32> {
        &self.unreachable
    }

    /// Total worklist pops spent building this info.
    pub fn total_iterations(&self) -> usize {
        self.total_iterations
    }

    /// Whether the static block starting exactly at `start` is
    /// concrete-only.
    pub fn is_concrete_only(&self, start: u32) -> bool {
        self.blocks.get(&start).map(|f| f.concrete_only).unwrap_or(false)
    }
}

impl BlockAnnotator for PrepassInfo {
    fn annotate(&self, start: u32, instrs: &[Instr]) -> BlockAnnotation {
        let mut ann = BlockAnnotation::conservative();
        // Live-in is an entry fact: only valid when the dynamic block
        // starts exactly where a static block does.
        if let Some(f) = self.blocks.get(&start) {
            ann.live_in = f.live_in.0;
        }
        let mut concrete = true;
        // No include ranges ⇒ the engine may fork anywhere.
        let mut fork_free = !self.fork_ranges.is_empty();
        for (idx, _) in instrs.iter().enumerate() {
            let pc = start + idx as u32 * INSTR_SIZE;
            // A dynamic block suffix inherits block-level facts: the
            // concrete-only walk checked *every* instruction of the
            // covering static block, and a dead write is a fact about
            // what follows the pc, not how it was reached.
            match self.covering(pc) {
                Some(f) if f.concrete_only => {}
                _ => concrete = false,
            }
            if idx < 64 && self.dead_write_pcs.contains(&pc) {
                ann.dead_writes |= 1u64 << idx;
            }
            if idx < 64 && self.concrete_pcs.contains(&pc) {
                ann.concrete_mask |= 1u64 << idx;
            }
            if self.fork_ranges.iter().any(|r| r.contains(&pc)) {
                fork_free = false;
            }
        }
        ann.concrete_only = concrete;
        ann.fork_free = fork_free;
        ann
    }
}

/// Builder aggregating per-program analyses into one [`PrepassInfo`].
#[derive(Default)]
pub struct PrepassBuilder {
    blocks: BTreeMap<u32, BlockFacts>,
    dead_write_pcs: BTreeSet<u32>,
    fork_ranges: Vec<Range<u32>>,
    dead_edges: BTreeSet<(u32, u32)>,
    unreachable: BTreeSet<u32>,
    concrete_pcs: BTreeSet<u32>,
    total_iterations: usize,
}

impl PrepassBuilder {
    /// Empty builder.
    pub fn new() -> PrepassBuilder {
        PrepassBuilder::default()
    }

    /// Adds one program's analysis results. Overlapping address ranges
    /// (which do not occur with the standard loader layout) merge
    /// conservatively: concrete-only ANDs, live-in unions.
    pub fn add(self, a: &ProgramAnalysis) -> PrepassBuilder {
        self.add_parts(&a.graph, &a.liveness, &a.taint, &a.constprop, a.iterations())
    }

    /// Adds a refined whole-image analysis, enabling per-instruction
    /// concrete masks from its taint fixpoint.
    pub fn add_refined(mut self, r: &RefinedAnalysis) -> PrepassBuilder {
        self.concrete_pcs.extend(r.prepass.taint.concrete_pcs.iter().copied());
        let iters = r.liveness.iterations
            + r.prepass.taint.iterations
            + r.prepass.constprop.iterations;
        self.add_parts(
            &r.prepass.refinement.graph,
            &r.liveness,
            &r.prepass.taint,
            &r.prepass.constprop,
            iters,
        )
    }

    fn add_parts(
        mut self,
        graph: &FlowGraph,
        liveness: &Liveness,
        taint: &Taint,
        constprop: &ConstProp,
        iterations: usize,
    ) -> PrepassBuilder {
        for (&start, block) in &graph.cfg.blocks {
            let concrete_only = taint.concrete_only.contains(&start);
            let live_in = liveness.live_in.get(&start).copied().unwrap_or(RegSet::ALL);
            let facts = BlockFacts { end: block.end(), concrete_only, live_in };
            self.blocks
                .entry(start)
                .and_modify(|f| {
                    f.end = f.end.max(facts.end);
                    f.concrete_only &= facts.concrete_only;
                    f.live_in = f.live_in.union(facts.live_in);
                })
                .or_insert(facts);
            if let Some(&bits) = liveness.dead_writes.get(&start) {
                for (idx, _) in block.instrs.iter().enumerate().take(64) {
                    if bits & (1u64 << idx) != 0 {
                        self.dead_write_pcs.insert(start + idx as u32 * INSTR_SIZE);
                    }
                }
            }
        }
        self.dead_edges.extend(constprop.dead_edges.iter().copied());
        self.unreachable.extend(constprop.unreachable.iter().copied());
        self.total_iterations += iterations;
        self
    }

    /// Declares one include range of the engine's fork-enabling
    /// `CodeRanges`. Mirror *every* include range the engine config
    /// uses; with none declared, `fork_free` stays false everywhere
    /// (the engine's empty include list means "fork anywhere").
    pub fn allow_fork_range(mut self, range: Range<u32>) -> PrepassBuilder {
        self.fork_ranges.push(range);
        self
    }

    /// Finalizes the aggregate.
    pub fn build(self) -> PrepassInfo {
        PrepassInfo {
            blocks: self.blocks,
            dead_write_pcs: self.dead_write_pcs,
            fork_ranges: self.fork_ranges,
            dead_edges: self.dead_edges,
            unreachable: self.unreachable,
            concrete_pcs: self.concrete_pcs,
            total_iterations: self.total_iterations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2e_vm::asm::Assembler;
    use s2e_vm::isa::reg;

    fn program() -> Program {
        let mut a = Assembler::new(0x2000);
        a.movi(reg::R1, 0x10);
        a.inp(reg::R2, reg::R1); // symbolic source
        a.jmp("use");
        a.label("use");
        a.add(reg::R3, reg::R2, reg::R2); // observes symbolic r2
        a.movi(reg::R9, 7); // dead write
        a.halt();
        a.finish()
    }

    #[test]
    fn analyze_bundles_all_passes() {
        let p = program();
        let a = analyze(&p, &[(p.entry, TaintSeed::clean())], &AnalysisConfig::default()).unwrap();
        assert!(a.iterations() > 0);
        assert!(a.iterations() <= 3 * a.bound());
        assert!(a.taint.concrete_only.contains(&0x2000));
        assert!(!a.taint.concrete_only.contains(&p.symbol("use")));
        assert!(a.dead_edges().is_empty());
    }

    #[test]
    fn annotator_stamps_static_facts() {
        let p = program();
        let a = analyze(&p, &[(p.entry, TaintSeed::clean())], &AnalysisConfig::default()).unwrap();
        let info = PrepassBuilder::new().add(&a).build();
        let use_b = p.symbol("use");
        let entry = &a.graph.cfg.blocks[&0x2000];
        let ann = info.annotate(0x2000, &entry.instrs);
        assert!(ann.concrete_only);
        assert!(!ann.fork_free, "no fork ranges declared: stay conservative");
        assert_eq!(ann.live_in, a.liveness.live_in[&0x2000].0);
        let ub = &a.graph.cfg.blocks[&use_b];
        let ann2 = info.annotate(use_b, &ub.instrs);
        assert!(!ann2.concrete_only);
        // The movi r9 write (instruction index 1 of "use") is dead.
        assert_eq!(ann2.dead_writes & 0b10, 0b10);
    }

    #[test]
    fn annotator_conservative_off_the_map() {
        let p = program();
        let a = analyze(&p, &[(p.entry, TaintSeed::clean())], &AnalysisConfig::default()).unwrap();
        let info = PrepassBuilder::new().add(&a).build();
        // A block in unanalyzed address space gets the conservative
        // annotation: not concrete-only, live-in ALL.
        let foreign = [Instr { op: s2e_vm::isa::Opcode::Nop, rd: 0, rs1: 0, rs2: 0, imm: 0 }];
        let ann = info.annotate(0x9_0000, &foreign);
        assert!(!ann.concrete_only);
        assert_eq!(ann.live_in, 0xffff);
        assert_eq!(ann.dead_writes, 0);
    }

    #[test]
    fn fork_ranges_mirror_include_semantics() {
        let p = program();
        let a = analyze(&p, &[(p.entry, TaintSeed::clean())], &AnalysisConfig::default()).unwrap();
        // Include range covering other code: blocks here are fork-free.
        let info = PrepassBuilder::new().add(&a).allow_fork_range(0x8000..0x9000).build();
        let entry = &a.graph.cfg.blocks[&0x2000];
        assert!(info.annotate(0x2000, &entry.instrs).fork_free);
        // Include range covering this block: not fork-free.
        let info2 = PrepassBuilder::new().add(&a).allow_fork_range(0x2000..0x3000).build();
        assert!(!info2.annotate(0x2000, &entry.instrs).fork_free);
    }

    #[test]
    fn suffix_blocks_inherit_block_facts() {
        let p = program();
        let a = analyze(&p, &[(p.entry, TaintSeed::clean())], &AnalysisConfig::default()).unwrap();
        let info = PrepassBuilder::new().add(&a).build();
        // A dynamic block starting at the entry block's second
        // instruction: still covered, still concrete-only, but live-in
        // must stay conservative (no static block starts there).
        let entry = &a.graph.cfg.blocks[&0x2000];
        let ann = info.annotate(0x2000 + INSTR_SIZE, &entry.instrs[1..]);
        assert!(ann.concrete_only);
        assert_eq!(ann.live_in, 0xffff);
    }
}
