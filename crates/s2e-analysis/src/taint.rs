//! Forward symbolic-reachability taint (may-analysis).
//!
//! Lattice: per block entry, a [`TaintState`] — the set of registers
//! that may hold a symbolic value plus one bit for "guest memory may
//! contain symbolic bytes" (17 bits total, ordered pointwise; join is
//! union). Seeds are the statically visible symbolic sources — port-I/O
//! reads (`In`) and the `S2Op::SymbolicReg` / `S2Op::SymbolicMem`
//! custom opcodes — plus whatever the embedder declares at the roots
//! via [`TaintSeed`] (harness-injected symbolic data is invisible in
//! the instruction stream, so root seeds are part of the contract).
//!
//! Environment and indirect edges widen:
//!
//! - `Syscall`: the configured clobber set becomes tainted at the
//!   return site (and memory, unless the embedder vouches otherwise);
//! - unknown callees (`callr`): the return site is fully tainted, and
//!   the pre-call state flows to every address-taken block;
//! - `jmpr`: the state flows to every address-taken block;
//! - matched `ret`: the exit state flows to the matched return sites;
//!   unmatched `ret` and `iret` leave the analyzed region (re-entry is
//!   covered by root seeds, handler transparency by the documented
//!   interrupt assumption).
//!
//! The product the engine consumes is [`Taint::concrete_only`]: blocks
//! in which no instruction can ever *observe* a symbolic register, in
//! exactly the sense of the engine's dynamic `touches_symbolic` check
//! (see [`crate::defuse::observed`]). Such blocks skip per-instruction
//! symbolic dispatch entirely.

use crate::defuse::{observed, RegSet};
use crate::graph::{run_worklist, AnalysisConfig, BoundExceeded, FlowGraph, TaintSeed, Term};
use s2e_vm::isa::{reg, Instr, Opcode, S2Op, INSTR_SIZE};
use std::collections::{BTreeMap, BTreeSet};

/// May-be-symbolic state at a program point.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TaintState {
    /// Registers that may hold symbolic values.
    pub regs: RegSet,
    /// Whether memory may hold symbolic bytes.
    pub mem: bool,
}

impl TaintState {
    fn join(self, other: TaintState) -> TaintState {
        TaintState { regs: self.regs.union(other.regs), mem: self.mem || other.mem }
    }

    fn includes(self, other: TaintState) -> bool {
        other.regs.minus(self.regs).is_empty() && (self.mem || !other.mem)
    }

    /// Fully tainted.
    pub fn all() -> TaintState {
        TaintState { regs: RegSet::ALL, mem: true }
    }
}

/// Taint fixpoint over one program.
#[derive(Clone, Debug, Default)]
pub struct Taint {
    /// Entry state per reached block (unreached blocks are absent and
    /// trivially concrete-only, but also never execute).
    pub entry: BTreeMap<u32, TaintState>,
    /// Blocks in which no instruction can observe a symbolic register.
    pub concrete_only: BTreeSet<u32>,
    /// Instruction pcs (in reached blocks) that can never observe a
    /// symbolic register — per-instruction refinement of
    /// `concrete_only`, used for the refined annotator's instruction
    /// masks. A block is `concrete_only` iff all its pcs are here.
    pub concrete_pcs: BTreeSet<u32>,
    /// Worklist pops used to reach the fixpoint.
    pub iterations: usize,
}

/// One instruction's forward taint transfer.
fn transfer(i: &Instr, s: &mut TaintState, cfg: &AnalysisConfig) {
    let t = |s: &TaintState, r: u8| s.regs.contains(r);
    match i.op {
        Opcode::MovI => s.regs = s.regs.without(i.rd),
        Opcode::Mov | Opcode::Not => {
            s.regs = if t(s, i.rs1) { s.regs.with(i.rd) } else { s.regs.without(i.rd) }
        }
        Opcode::AddI
        | Opcode::SubI
        | Opcode::MulI
        | Opcode::AndI
        | Opcode::OrI
        | Opcode::XorI
        | Opcode::ShlI
        | Opcode::ShrI
        | Opcode::SarI => {
            s.regs = if t(s, i.rs1) { s.regs.with(i.rd) } else { s.regs.without(i.rd) }
        }
        Opcode::Add
        | Opcode::Sub
        | Opcode::Mul
        | Opcode::Divu
        | Opcode::Divs
        | Opcode::Remu
        | Opcode::Rems
        | Opcode::And
        | Opcode::Or
        | Opcode::Xor
        | Opcode::Shl
        | Opcode::Shr
        | Opcode::Sar => {
            s.regs = if t(s, i.rs1) || t(s, i.rs2) {
                s.regs.with(i.rd)
            } else {
                s.regs.without(i.rd)
            }
        }
        Opcode::Ld8 | Opcode::Ld16 | Opcode::Ld32 => {
            // A load observes memory and (via address forking) the base.
            s.regs = if s.mem || t(s, i.rs1) { s.regs.with(i.rd) } else { s.regs.without(i.rd) }
        }
        Opcode::Pop => {
            let sp = t(s, reg::SP);
            s.regs = if s.mem || sp { s.regs.with(i.rd) } else { s.regs.without(i.rd) };
        }
        Opcode::Push => s.mem = s.mem || t(s, i.rs1) || t(s, reg::SP),
        Opcode::St8 | Opcode::St16 | Opcode::St32 => {
            s.mem = s.mem || t(s, i.rs1) || t(s, i.rs2)
        }
        // Port I/O read: the canonical symbolic source (symbolic
        // hardware); always a seed.
        Opcode::In => s.regs = s.regs.with(i.rd),
        Opcode::Call | Opcode::CallR => s.regs = s.regs.without(reg::LR),
        Opcode::S2eOp => match S2Op::from_u32(i.imm) {
            Some(S2Op::SymbolicReg) => s.regs = s.regs.with(reg::R0),
            Some(S2Op::SymbolicMem) => s.mem = true,
            Some(_) => {}
            // Undecodable sub-op faults at runtime; widen anyway.
            None => {
                s.regs = s.regs.with(reg::R0);
                s.mem = true;
            }
        },
        Opcode::Syscall => {
            // Applied here (not at the edge) so the return-site state
            // sees the environment's effects exactly once.
            s.regs = s.regs.union(cfg.env_clobbers);
            s.mem = s.mem || cfg.env_taints_memory;
        }
        _ => {}
    }
}

/// Runs the taint fixpoint on `g`. `roots` pairs each root block with
/// the embedder-declared entry state; roots of `g` not named here start
/// clean.
pub fn analyze(
    g: &FlowGraph,
    roots: &[(u32, TaintSeed)],
    cfg: &AnalysisConfig,
) -> Result<Taint, BoundExceeded> {
    let mut entry: BTreeMap<u32, TaintState> = BTreeMap::new();
    let mut seeds: Vec<u32> = Vec::new();
    for &r in &g.roots {
        entry.insert(r, TaintState::default());
        seeds.push(r);
    }
    for &(r, seed) in roots {
        if g.cfg.blocks.contains_key(&r) {
            let st = TaintState { regs: seed.regs, mem: seed.mem };
            entry.insert(r, entry.get(&r).copied().unwrap_or_default().join(st));
            if !seeds.contains(&r) {
                seeds.push(r);
            }
        }
    }
    fixpoint(g, entry, seeds, cfg)
}

/// Incremental restart after the graph grew (see
/// [`crate::interproc::IncrementalPrepass`]): resume from `prev`'s
/// fixpoint with `dirty` blocks re-queued and any new roots seeded.
/// Sound because the pass is monotone join-only and a rebuild only adds
/// blocks and edges, so the previous fixpoint is below the new one.
pub fn analyze_from(
    g: &FlowGraph,
    prev: &Taint,
    roots: &[(u32, TaintSeed)],
    dirty: &[u32],
    cfg: &AnalysisConfig,
) -> Result<Taint, BoundExceeded> {
    let mut entry = prev.entry.clone();
    let mut seeds: Vec<u32> = Vec::new();
    for &r in &g.roots {
        if !entry.contains_key(&r) {
            entry.insert(r, TaintState::default());
            seeds.push(r);
        }
    }
    for &(r, seed) in roots {
        if g.cfg.blocks.contains_key(&r) {
            let st = TaintState { regs: seed.regs, mem: seed.mem };
            let cur = entry.get(&r).copied().unwrap_or_default();
            if !cur.includes(st) || !entry.contains_key(&r) {
                entry.insert(r, cur.join(st));
                if !seeds.contains(&r) {
                    seeds.push(r);
                }
            }
        }
    }
    seeds.extend(dirty.iter().copied());
    fixpoint(g, entry, seeds, cfg)
}

fn fixpoint(
    g: &FlowGraph,
    entry: BTreeMap<u32, TaintState>,
    seeds: Vec<u32>,
    cfg: &AnalysisConfig,
) -> Result<Taint, BoundExceeded> {
    // `entry` only ever grows (pointwise union), so the fixpoint is
    // monotone and the bound argument of `graph::iteration_bound`
    // applies.
    let mut states = entry;
    let iterations = run_worklist("taint", seeds, g.bound(), |b, changed| {
        let Some(&inn) = states.get(&b) else { return };
        let Some(block) = g.cfg.blocks.get(&b) else { return };
        let mut s = inn;
        for i in &block.instrs {
            transfer(i, &mut s, cfg);
        }
        let mut flow = |target: u32, st: TaintState, changed: &mut Vec<u32>| {
            if !g.cfg.blocks.contains_key(&target) {
                return;
            }
            let cur = states.get(&target).copied().unwrap_or_default();
            if !cur.includes(st) {
                states.insert(target, cur.join(st));
                changed.push(target);
            } else if !states.contains_key(&target) {
                states.insert(target, cur);
                changed.push(target);
            }
        };
        match g.term.get(&b) {
            Some(Term::Goto(t)) => flow(*t, s, changed),
            Some(Term::Branch { taken, fall }) => {
                flow(*taken, s, changed);
                flow(*fall, s, changed);
            }
            Some(Term::Call { callee, ret: _ }) => {
                // The return site is fed by the callee's matched rets,
                // not directly — otherwise the callee's effects would be
                // bypassed.
                flow(*callee, s, changed);
            }
            Some(Term::CallUnknown { ret }) => {
                if let Some(targets) = g.resolved.get(&b) {
                    // Proven-complete callee set: exactly like a direct
                    // call — the return site is fed by the callees'
                    // matched rets, not widened to fully tainted.
                    for &t in targets {
                        flow(t, s, changed);
                    }
                } else {
                    for &t in &g.address_taken {
                        flow(t, s, changed);
                    }
                    // Unknown callee: anything may come back.
                    flow(*ret, TaintState::all(), changed);
                }
            }
            Some(Term::Syscall { ret }) => flow(*ret, s, changed),
            Some(Term::Ret) => {
                if let Some(sites) = g.ret_sites.get(&b) {
                    for &t in sites {
                        flow(t, s, changed);
                    }
                }
                // Unmatched: leaves the region; root seeds cover re-entry.
            }
            Some(Term::IndirectJump) => {
                if let Some(targets) = g.resolved.get(&b) {
                    for &t in targets {
                        flow(t, s, changed);
                    }
                } else {
                    for &t in &g.address_taken {
                        flow(t, s, changed);
                    }
                }
            }
            Some(Term::Iret) | Some(Term::Halt) | None => {}
        }
    })?;

    // Classify: walk each reached block once more, checking every
    // instruction's observed set against the running state.
    let mut result = Taint { iterations, ..Taint::default() };
    for (&b, block) in &g.cfg.blocks {
        let Some(&inn) = states.get(&b) else {
            // Unreached from the analyzed roots. If the root set really
            // covers every entry this block never executes, but stay
            // conservative rather than trusting that silently.
            continue;
        };
        result.entry.insert(b, inn);
        let mut s = inn;
        let mut clean = true;
        for (idx, i) in block.instrs.iter().enumerate() {
            if observed(i).inter(s.regs).is_empty() {
                result.concrete_pcs.insert(b + idx as u32 * INSTR_SIZE);
            } else {
                clean = false;
            }
            transfer(i, &mut s, cfg);
        }
        if clean {
            result.concrete_only.insert(b);
        }
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2e_vm::asm::Assembler;
    use s2e_vm::isa::reg;

    fn cfg() -> AnalysisConfig {
        AnalysisConfig::default()
    }

    #[test]
    fn port_read_seeds_taint() {
        let mut a = Assembler::new(0x2000);
        a.movi(reg::R1, 0x10);
        a.inp(reg::R2, reg::R1); // r2 <- symbolic hardware
        a.jmp("use");
        a.label("use");
        a.add(reg::R3, reg::R2, reg::R2); // observes r2
        a.halt();
        let p = a.finish();
        let g = FlowGraph::build(&p, &[p.entry]);
        let t = analyze(&g, &[], &cfg()).unwrap();
        let use_b = p.symbol("use");
        assert!(t.entry[&use_b].regs.contains(reg::R2));
        assert!(!t.concrete_only.contains(&use_b));
        // The seeding block itself never *reads* a symbolic register.
        assert!(t.concrete_only.contains(&0x2000));
    }

    #[test]
    fn movi_kills_taint() {
        let mut a = Assembler::new(0x2000);
        a.inp(reg::R2, reg::R1);
        a.jmp("next");
        a.label("next");
        a.movi(reg::R2, 0); // kill before any read
        a.add(reg::R3, reg::R2, reg::R2);
        a.halt();
        let p = a.finish();
        let g = FlowGraph::build(&p, &[p.entry]);
        let t = analyze(&g, &[], &cfg()).unwrap();
        let next = p.symbol("next");
        assert!(t.entry[&next].regs.contains(reg::R2));
        // Entry taint is killed before the only read: concrete-only.
        assert!(t.concrete_only.contains(&next));
    }

    #[test]
    fn memory_taint_reaches_loads() {
        let mut a = Assembler::new(0x2000);
        a.movi(reg::R1, 0x10);
        a.inp(reg::R2, reg::R1);
        a.movi(reg::R4, 0x8000);
        a.st32(reg::R4, 0, reg::R2); // symbolic into memory
        a.jmp("later");
        a.label("later");
        a.movi(reg::R5, 0x9000);
        a.ld32(reg::R6, reg::R5, 0); // any load may now see it
        a.outp(reg::R1, reg::R6);
        a.halt();
        let p = a.finish();
        let g = FlowGraph::build(&p, &[p.entry]);
        let t = analyze(&g, &[], &cfg()).unwrap();
        let later = p.symbol("later");
        assert!(t.entry[&later].mem);
        assert!(!t.concrete_only.contains(&later));
    }

    #[test]
    fn root_seed_declares_injected_symbolics() {
        let mut a = Assembler::new(0x2000);
        a.add(reg::R3, reg::R0, reg::R0);
        a.halt();
        let p = a.finish();
        let g = FlowGraph::build(&p, &[p.entry]);
        let clean = analyze(&g, &[], &cfg()).unwrap();
        assert!(clean.concrete_only.contains(&0x2000));
        let seeded = analyze(
            &g,
            &[(p.entry, TaintSeed { regs: RegSet::single(reg::R0), mem: false })],
            &cfg(),
        )
        .unwrap();
        assert!(!seeded.concrete_only.contains(&0x2000));
    }

    #[test]
    fn syscall_clobbers_are_configurable() {
        let mut a = Assembler::new(0x2000);
        a.syscall(5);
        a.add(reg::R3, reg::R0, reg::R0); // reads the env's return value
        a.halt();
        let p = a.finish();
        let g = FlowGraph::build(&p, &[p.entry]);
        let t = analyze(&g, &[], &cfg()).unwrap();
        let ret_site = 0x2008;
        assert!(t.entry[&ret_site].regs.contains(reg::R0));
        assert!(t.entry[&ret_site].mem);
        assert!(!t.concrete_only.contains(&ret_site));
        // With a narrow clobber convention that spares r0 the read is
        // clean (not our kernel's convention — just exercising the knob).
        let narrow = AnalysisConfig {
            env_clobbers: RegSet::single(reg::R10),
            env_taints_memory: false,
        };
        let t2 = analyze(&g, &[], &narrow).unwrap();
        assert!(t2.concrete_only.contains(&ret_site));
    }

    #[test]
    fn matched_ret_does_not_leak_across_functions() {
        // main: call f (tainted work), then call h (clean); h's body must
        // stay concrete-only even though f's ret carries taint.
        let mut a = Assembler::new(0x2000);
        a.call("f");
        a.call("h");
        a.halt();
        a.label("f");
        a.inp(reg::R2, reg::R1);
        a.ret();
        a.label("h");
        a.movi(reg::R6, 1);
        a.add(reg::R7, reg::R6, reg::R6);
        a.ret();
        let p = a.finish();
        let g = FlowGraph::build(&p, &[p.entry]);
        let t = analyze(&g, &[], &cfg()).unwrap();
        assert!(t.concrete_only.contains(&p.symbol("h")));
        // f's return site (the `call h` block) sees f's tainted r2 but
        // doesn't read it: still concrete-only.
        assert!(t.concrete_only.contains(&0x2008));
        assert!(t.entry[&0x2008].regs.contains(reg::R2));
    }
}
