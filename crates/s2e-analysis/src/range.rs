//! Forward value-range (interval) analysis over guest registers.
//!
//! The domain goes beyond `constprop`'s flat constants: a register's
//! abstract value is a small explicit set, a strided interval, or ⊤.
//! Transfer reuses the interpreter's own [`apply_binop`], folding small
//! operand sets *pairwise exactly* (so division-by-zero, wrapping, and
//! shift-overflow semantics are inherited rather than re-derived), and
//! falls back to sound interval rules only when an operand is too wide
//! to enumerate. The pass is interprocedural: direct (and resolved
//! indirect) calls flow the caller's state into the callee with
//! `LR = exact(return site)`, and return sites are havocked only by the
//! callee's *clobber summary* (see `interproc`), so root-seeded facts
//! survive `Call`/`Ret` boundaries instead of dying at every call.
//!
//! Termination is enforced by widening, not lattice height: each block
//! entry may strictly grow at most [`WIDEN_LIMIT`] times; past that,
//! any register that still changes snaps to ⊤ (which is absorbing), so
//! the per-block change count — and with it the worklist pop count — is
//! bounded well inside [`crate::graph::iteration_bound`].

use crate::defuse::{defs, RegSet};
use crate::graph::{run_worklist, AnalysisConfig, BoundExceeded, FlowGraph, Term};
use s2e_expr::fold::apply_binop;
use s2e_expr::{BinOp, Width};
use s2e_vm::interp::alu_binop;
use s2e_vm::isa::{reg, Instr, Opcode};
use std::collections::{BTreeMap, BTreeSet};

/// Largest explicit set before a value degrades to a strided interval.
pub const SET_MAX: usize = 8;

/// Largest operand-pair product folded exactly through [`apply_binop`];
/// also the enumeration cap for indirect-target resolution.
pub const ENUM_MAX: usize = 64;

/// Block-entry strict-growth budget before widening to ⊤ kicks in.
const WIDEN_LIMIT: u32 = 32;

/// Abstract value of one register.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ValueRange {
    /// A small explicit value set (sorted, deduplicated, non-empty,
    /// at most [`SET_MAX`] entries).
    Set(Vec<u32>),
    /// `{lo, lo+stride, …, hi}` with `stride ≥ 1`, `lo ≤ hi`, and
    /// `(hi − lo) % stride == 0`. Never wraps around `u32::MAX`.
    Interval { lo: u32, hi: u32, stride: u32 },
    /// Any value.
    Top,
}

impl ValueRange {
    /// The singleton range `{v}`.
    pub fn exact(v: u32) -> ValueRange {
        ValueRange::Set(vec![v])
    }

    /// The tightest representable range covering `values`.
    pub fn from_values(values: impl IntoIterator<Item = u32>) -> ValueRange {
        let set: BTreeSet<u32> = values.into_iter().collect();
        assert!(!set.is_empty(), "a value range is never empty");
        if set.len() <= SET_MAX {
            return ValueRange::Set(set.into_iter().collect());
        }
        let lo = *set.iter().next().expect("non-empty");
        let hi = *set.iter().next_back().expect("non-empty");
        let mut stride = 0u32;
        for &v in &set {
            stride = gcd(stride, v - lo);
        }
        normalize(lo, hi, stride.max(1))
    }

    /// Whether `v` is possibly in this range.
    pub fn contains(&self, v: u32) -> bool {
        match self {
            ValueRange::Set(vs) => vs.binary_search(&v).is_ok(),
            ValueRange::Interval { lo, hi, stride } => {
                v >= *lo && v <= *hi && (v - lo) % stride == 0
            }
            ValueRange::Top => true,
        }
    }

    /// Number of concrete values, or `None` for ⊤.
    pub fn count(&self) -> Option<u64> {
        match self {
            ValueRange::Set(vs) => Some(vs.len() as u64),
            ValueRange::Interval { lo, hi, stride } => {
                Some(u64::from((hi - lo) / stride) + 1)
            }
            ValueRange::Top => None,
        }
    }

    /// The concrete values, if there are at most `limit` of them.
    pub fn enumerate(&self, limit: usize) -> Option<Vec<u32>> {
        match self {
            ValueRange::Set(vs) if vs.len() <= limit => Some(vs.clone()),
            ValueRange::Interval { lo, hi: _, stride } => {
                let n = self.count().expect("interval is finite");
                if n > limit as u64 {
                    return None;
                }
                Some((0..n as u32).map(|k| lo + k * stride).collect())
            }
            _ => None,
        }
    }

    /// Whether every value of `other` is contained in `self`.
    pub fn includes(&self, other: &ValueRange) -> bool {
        match (self, other) {
            (ValueRange::Top, _) => true,
            (_, ValueRange::Top) => false,
            (_, ValueRange::Set(vs)) => vs.iter().all(|&v| self.contains(v)),
            (
                ValueRange::Interval { lo, hi, stride },
                ValueRange::Interval { lo: lo2, hi: hi2, stride: stride2 },
            ) => {
                lo2 >= lo
                    && hi2 <= hi
                    && (lo2 - lo) % stride == 0
                    && (if lo2 == hi2 { true } else { stride2 % stride == 0 })
            }
            (ValueRange::Set(_), ValueRange::Interval { .. }) => other
                .enumerate(SET_MAX)
                .is_some_and(|vs| vs.iter().all(|&v| self.contains(v))),
        }
    }

    /// Least representable upper bound of `self` and `other`.
    pub fn join(&self, other: &ValueRange) -> ValueRange {
        if self.includes(other) {
            return self.clone();
        }
        if other.includes(self) {
            return other.clone();
        }
        match (self, other) {
            (ValueRange::Top, _) | (_, ValueRange::Top) => ValueRange::Top,
            (ValueRange::Set(a), ValueRange::Set(b)) => {
                ValueRange::from_values(a.iter().chain(b.iter()).copied())
            }
            _ => {
                let (lo1, hi1, s1) = self.bounds().expect("not top");
                let (lo2, hi2, s2) = other.bounds().expect("not top");
                let lo = lo1.min(lo2);
                let hi = hi1.max(hi2);
                let stride = gcd(gcd(s1, s2), lo1.abs_diff(lo2)).max(1);
                normalize(lo, hi, stride)
            }
        }
    }

    /// `(lo, hi, stride)` cover of a finite range (`None` for ⊤). A
    /// set's stride is the gcd of its gaps.
    fn bounds(&self) -> Option<(u32, u32, u32)> {
        match self {
            ValueRange::Set(vs) => {
                let lo = vs[0];
                let hi = *vs.last().expect("non-empty");
                let mut stride = 0u32;
                for &v in vs {
                    stride = gcd(stride, v - lo);
                }
                Some((lo, hi, stride.max(1)))
            }
            ValueRange::Interval { lo, hi, stride } => Some((*lo, *hi, *stride)),
            ValueRange::Top => None,
        }
    }
}

fn gcd(a: u32, b: u32) -> u32 {
    let (mut a, mut b) = (a, b);
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Canonicalizes `(lo, hi, stride)` — clamping `hi` onto the stride grid
/// and materializing an explicit set when small enough.
fn normalize(lo: u32, hi: u32, stride: u32) -> ValueRange {
    debug_assert!(stride >= 1 && lo <= hi);
    let hi = lo + ((hi - lo) / stride) * stride;
    let count = u64::from((hi - lo) / stride) + 1;
    if count <= SET_MAX as u64 {
        ValueRange::Set((0..count as u32).map(|k| lo + k * stride).collect())
    } else {
        ValueRange::Interval { lo, hi, stride }
    }
}

/// Per-block-entry register state.
pub type RegRanges = [ValueRange; reg::NUM_REGS];

/// The no-information state (all registers ⊤).
pub fn havoc() -> RegRanges {
    std::array::from_fn(|_| ValueRange::Top)
}

fn join_into(dst: &mut RegRanges, src: &RegRanges) -> RegSet {
    let mut changed = RegSet::EMPTY;
    for (r, (d, s)) in dst.iter_mut().zip(src.iter()).enumerate() {
        let j = d.join(s);
        if j != *d {
            *d = j;
            changed = changed.with(r as u8);
        }
    }
    changed
}

/// The abstract counterpart of one `apply_binop` application. Exact
/// (pairwise through the interpreter's own fold) whenever both operands
/// enumerate within [`ENUM_MAX`] pairs; otherwise sound interval rules
/// for the shapes jump-table math uses (add/sub/mul/shift by a constant,
/// masking, remainder), and ⊤ for the rest.
pub fn range_binop(op: BinOp, a: &ValueRange, b: &ValueRange) -> ValueRange {
    if let (Some(na), Some(nb)) = (a.count(), b.count()) {
        if na.saturating_mul(nb) <= ENUM_MAX as u64 {
            let av = a.enumerate(ENUM_MAX).expect("within cap");
            let bv = b.enumerate(ENUM_MAX).expect("within cap");
            let vals = av.iter().flat_map(|&x| {
                bv.iter()
                    .map(move |&y| apply_binop(op, x as u64, y as u64, Width::W32) as u32)
            });
            return ValueRange::from_values(vals);
        }
    }
    let k_b = b.enumerate(1).map(|v| v[0]);
    let k_a = a.enumerate(1).map(|v| v[0]);
    match op {
        // x ± k / k − x: shift the cover when no u32 wraparound is
        // possible; x·k and x<<k likewise scale it.
        BinOp::Add => match (a.bounds(), k_b, b.bounds(), k_a) {
            (Some((lo, hi, s)), Some(k), _, _) | (_, _, Some((lo, hi, s)), Some(k)) => {
                if u64::from(hi) + u64::from(k) <= u64::from(u32::MAX) {
                    normalize(lo + k, hi + k, s)
                } else {
                    ValueRange::Top
                }
            }
            _ => ValueRange::Top,
        },
        BinOp::Sub => match (a.bounds(), k_b, k_a, b.bounds()) {
            (Some((lo, hi, s)), Some(k), _, _) if lo >= k => normalize(lo - k, hi - k, s),
            (_, _, Some(k), Some((lo, hi, s))) if k >= hi => normalize(k - hi, k - lo, s),
            _ => ValueRange::Top,
        },
        BinOp::Mul => match (a.bounds(), k_b, b.bounds(), k_a) {
            (Some((lo, hi, s)), Some(k), _, _) | (_, _, Some((lo, hi, s)), Some(k)) => {
                if k == 0 {
                    ValueRange::exact(0)
                } else if u64::from(hi) * u64::from(k) <= u64::from(u32::MAX) {
                    normalize(lo * k, hi * k, s * k)
                } else {
                    ValueRange::Top
                }
            }
            _ => ValueRange::Top,
        },
        BinOp::Shl => match (a.bounds(), k_b) {
            (_, Some(k)) if k >= 32 => ValueRange::exact(0),
            (Some((lo, hi, s)), Some(k)) if (u64::from(hi) << k) <= u64::from(u32::MAX) => {
                normalize(lo << k, hi << k, (s << k).max(1))
            }
            _ => ValueRange::Top,
        },
        BinOp::LShr => match (a.bounds(), k_b) {
            (_, Some(k)) if k >= 32 => ValueRange::exact(0),
            (Some((lo, hi, _)), Some(k)) => normalize(lo >> k, hi >> k, 1),
            _ => ValueRange::Top,
        },
        // x & m ≤ min(x, m): sound even for an ⊤ operand, which is what
        // re-bounds a widened loop counter at an `andi` mask.
        BinOp::And => {
            let bound = |r: &ValueRange, k: u32| {
                let hi = r.bounds().map(|(_, hi, _)| hi.min(k)).unwrap_or(k);
                normalize(0, hi, 1)
            };
            match (k_a, k_b) {
                (_, Some(k)) => bound(a, k),
                (Some(k), _) => bound(b, k),
                _ => ValueRange::Top,
            }
        }
        // x % k ∈ [0, k−1] for k > 0 (k == 0 keeps x per VM semantics).
        BinOp::URem => match k_b {
            Some(0) => a.clone(),
            Some(k) => {
                let hi = a.bounds().map(|(_, hi, _)| hi.min(k - 1)).unwrap_or(k - 1);
                normalize(0, hi, 1)
            }
            None => ValueRange::Top,
        },
        _ => ValueRange::Top,
    }
}

/// One instruction's forward range transfer. Mirrors
/// [`crate::constprop::transfer`]'s structure; any opcode without a
/// precise rule havocs exactly its def set.
pub fn transfer(i: &Instr, s: &mut RegRanges, cfg: &AnalysisConfig) {
    let rd = i.rd as usize & 0xf;
    let get = |s: &RegRanges, r: u8| s[r as usize & 0xf].clone();
    match i.op {
        Opcode::MovI => s[rd] = ValueRange::exact(i.imm),
        Opcode::Mov => s[rd] = get(s, i.rs1),
        Opcode::Not => {
            s[rd] = match get(s, i.rs1).enumerate(SET_MAX) {
                Some(vs) => ValueRange::from_values(vs.into_iter().map(|v| !v)),
                None => ValueRange::Top,
            }
        }
        Opcode::Add
        | Opcode::Sub
        | Opcode::Mul
        | Opcode::Divu
        | Opcode::Divs
        | Opcode::Remu
        | Opcode::Rems
        | Opcode::And
        | Opcode::Or
        | Opcode::Xor
        | Opcode::Shl
        | Opcode::Shr
        | Opcode::Sar => {
            let op = alu_binop(i.op).expect("ALU opcode");
            s[rd] = range_binop(op, &get(s, i.rs1), &get(s, i.rs2));
        }
        Opcode::AddI
        | Opcode::SubI
        | Opcode::MulI
        | Opcode::AndI
        | Opcode::OrI
        | Opcode::XorI
        | Opcode::ShlI
        | Opcode::ShrI
        | Opcode::SarI => {
            let op = alu_binop(i.op).expect("ALU opcode");
            s[rd] = range_binop(op, &get(s, i.rs1), &ValueRange::exact(i.imm));
        }
        Opcode::Ld8 | Opcode::Ld16 | Opcode::Ld32 | Opcode::In => s[rd] = ValueRange::Top,
        Opcode::Pop => {
            s[rd] = ValueRange::Top;
            let sp = reg::SP as usize;
            s[sp] = range_binop(BinOp::Add, &s[sp], &ValueRange::exact(4));
        }
        Opcode::Push => {
            let sp = reg::SP as usize;
            s[sp] = range_binop(BinOp::Sub, &s[sp], &ValueRange::exact(4));
        }
        // The link value a call installs is modeled precisely at the
        // interprocedural edge; inside a straight-line walk it is ⊤.
        Opcode::Call | Opcode::CallR => s[reg::LR as usize] = ValueRange::Top,
        Opcode::Syscall => {
            for r in cfg.env_clobbers.iter() {
                s[r as usize] = ValueRange::Top;
            }
        }
        // `SymbolicReg` writes a fresh symbolic word into r0, which can
        // then hold any concretized value ([`crate::defuse::defs`]
        // reports no defs for `S2eOp`, so the default arm would miss it).
        Opcode::S2eOp => s[reg::R0 as usize] = ValueRange::Top,
        Opcode::St8 | Opcode::St16 | Opcode::St32 | Opcode::Out | Opcode::Nop => {}
        // Anything else (Iret, branches, …): havoc what it defines.
        _ => {
            for r in defs(i).iter() {
                s[r as usize] = ValueRange::Top;
            }
        }
    }
}

/// Restricts `r` (the range of a branch's variable operand) along one
/// side of a comparison against the constant `k`. Only equality and the
/// unsigned orders are refined — the shapes a jump-table bounds check
/// takes; everything else passes through. A refinement that would be
/// empty (statically infeasible edge) degrades to the unrestricted
/// range: edge pruning is `constprop`'s job, not this pass's.
fn restrict(r: &ValueRange, op: Opcode, k: u32, taken: bool, var_is_lhs: bool) -> ValueRange {
    // Normalize to a predicate on the variable side.
    enum Rel {
        Eq,
        Ne,
        Lt,  // var < k (unsigned)
        Ge,  // var >= k (unsigned)
        Gt,  // var > k (unsigned)
        Le,  // var <= k (unsigned)
        Any,
    }
    let rel = match (op, var_is_lhs, taken) {
        (Opcode::Beq, _, true) | (Opcode::Bne, _, false) => Rel::Eq,
        (Opcode::Beq, _, false) | (Opcode::Bne, _, true) => Rel::Ne,
        (Opcode::Bltu, true, true) | (Opcode::Bgeu, true, false) => Rel::Lt,
        (Opcode::Bltu, true, false) | (Opcode::Bgeu, true, true) => Rel::Ge,
        (Opcode::Bltu, false, true) | (Opcode::Bgeu, false, false) => Rel::Gt,
        (Opcode::Bltu, false, false) | (Opcode::Bgeu, false, true) => Rel::Le,
        _ => Rel::Any,
    };
    let clamped: Option<ValueRange> = match rel {
        Rel::Eq => Some(ValueRange::exact(k)),
        Rel::Ne => match r {
            ValueRange::Set(vs) if vs.contains(&k) && vs.len() > 1 => Some(
                ValueRange::from_values(vs.iter().copied().filter(|&v| v != k)),
            ),
            _ => None,
        },
        Rel::Lt | Rel::Le => {
            let ub = if matches!(rel, Rel::Lt) { k.checked_sub(1) } else { Some(k) };
            ub.and_then(|ub| clamp(r, 0, ub))
        }
        Rel::Ge | Rel::Gt => {
            let lb = if matches!(rel, Rel::Gt) { k.checked_add(1) } else { Some(k) };
            lb.and_then(|lb| clamp(r, lb, u32::MAX))
        }
        Rel::Any => None,
    };
    match clamped {
        Some(c) if r.includes(&c) => c,
        _ => r.clone(),
    }
}

/// Intersects `r` with `[lb, ub]`; `None` if the intersection is empty.
fn clamp(r: &ValueRange, lb: u32, ub: u32) -> Option<ValueRange> {
    if lb > ub {
        return None;
    }
    match r {
        ValueRange::Top => {
            if lb == 0 && ub == u32::MAX {
                Some(ValueRange::Top)
            } else {
                Some(normalize(lb, ub, 1))
            }
        }
        ValueRange::Set(vs) => {
            let kept: Vec<u32> = vs.iter().copied().filter(|&v| v >= lb && v <= ub).collect();
            if kept.is_empty() {
                None
            } else {
                Some(ValueRange::from_values(kept))
            }
        }
        ValueRange::Interval { lo, hi, stride } => {
            // Disjoint clamp window (entirely below lo or above hi):
            // empty intersection, not an underflowing subtraction.
            if ub < *lo || lb > *hi {
                return None;
            }
            let (lo64, s64) = (u64::from(*lo), u64::from(*stride));
            let new_lo = if lb <= *lo {
                u64::from(*lo)
            } else {
                lo64 + (u64::from(lb) - lo64).div_ceil(s64) * s64
            };
            let new_hi =
                if ub >= *hi { u64::from(*hi) } else { lo64 + (u64::from(ub) - lo64) / s64 * s64 };
            if new_lo > new_hi || new_lo > u64::from(*hi) {
                None
            } else {
                Some(normalize(new_lo as u32, new_hi as u32, *stride))
            }
        }
    }
}

/// Range-analysis fixpoint result.
#[derive(Clone, Debug, Default)]
pub struct RangeAnalysis {
    /// Entry register ranges per reached block.
    pub entry: BTreeMap<u32, RegRanges>,
    /// Blocks whose entry hit the widening budget.
    pub widened_blocks: usize,
    /// Worklist pops used to reach the fixpoint.
    pub iterations: usize,
}

impl RangeAnalysis {
    /// The register state right *before* block `b`'s terminator — what
    /// an indirect terminator's target register holds. `None` if `b`
    /// was never reached.
    pub fn state_before_term(&self, g: &FlowGraph, b: u32) -> Option<RegRanges> {
        let entry = self.entry.get(&b)?;
        let block = g.cfg.blocks.get(&b)?;
        let mut s = entry.clone();
        let n = block.instrs.len();
        for i in &block.instrs[..n.saturating_sub(1)] {
            transfer(i, &mut s, &AnalysisConfig::default());
        }
        Some(s)
    }
}

/// Runs the interprocedural range fixpoint on `g` from its roots.
///
/// `summaries` maps a callee entry block to the registers any path
/// through it may clobber (lookup miss ⇒ all registers — the sound
/// default for a callee whose body escapes analysis).
pub fn analyze(
    g: &FlowGraph,
    summaries: &BTreeMap<u32, RegSet>,
    cfg: &AnalysisConfig,
) -> Result<RangeAnalysis, BoundExceeded> {
    let mut states: BTreeMap<u32, RegRanges> = BTreeMap::new();
    for &r in &g.roots {
        states.insert(r, havoc());
    }
    let seeds: Vec<u32> = g.roots.clone();
    let mut growth: BTreeMap<u32, u32> = BTreeMap::new();
    let mut widened: BTreeSet<u32> = BTreeSet::new();

    let summary = |callee: u32| summaries.get(&callee).copied().unwrap_or(RegSet::ALL);
    let apply_call_return = |s: &RegRanges, clobbers: RegSet, ret: u32| -> RegRanges {
        let mut out = s.clone();
        for r in clobbers.iter() {
            out[r as usize] = ValueRange::Top;
        }
        if !clobbers.contains(reg::LR) {
            // The call wrote `ret` into LR and the callee provably
            // never touches it, so it still names the return site here.
            out[reg::LR as usize] = ValueRange::exact(ret);
        }
        out
    };

    let iterations = run_worklist("range", seeds, g.bound(), |b, changed| {
        let Some(inn) = states.get(&b).cloned() else { return };
        let Some(block) = g.cfg.blocks.get(&b) else { return };
        let mut s = inn;
        for i in &block.instrs {
            transfer(i, &mut s, cfg);
        }
        let mut flow = |target: u32, st: &RegRanges, changed: &mut Vec<u32>| {
            if !g.cfg.blocks.contains_key(&target) {
                return;
            }
            match states.get_mut(&target) {
                Some(cur) => {
                    let grew = join_into(cur, st);
                    if grew.is_empty() {
                        return;
                    }
                    let n = growth.entry(target).or_insert(0);
                    *n += 1;
                    if *n > WIDEN_LIMIT {
                        // Widen: every register still in motion snaps to
                        // ⊤ (absorbing), bounding this block's changes.
                        widened.insert(target);
                        for r in grew.iter() {
                            cur[r as usize] = ValueRange::Top;
                        }
                    }
                    changed.push(target);
                }
                None => {
                    states.insert(target, st.clone());
                    growth.insert(target, 0);
                    changed.push(target);
                }
            }
        };
        match g.term.get(&b) {
            Some(Term::Goto(t)) => flow(*t, &s, changed),
            Some(Term::Branch { taken, fall }) => {
                let last = block.instrs.last().expect("branch block nonempty");
                let (r1, r2) = (last.rs1 as usize & 0xf, last.rs2 as usize & 0xf);
                for (side, is_taken) in [(*taken, true), (*fall, false)] {
                    let mut st = s.clone();
                    if let Some(k) = s[r2].enumerate(1).map(|v| v[0]) {
                        st[r1] = restrict(&s[r1], last.op, k, is_taken, true);
                    }
                    if let Some(k) = s[r1].enumerate(1).map(|v| v[0]) {
                        st[r2] = restrict(&s[r2], last.op, k, is_taken, false);
                    }
                    flow(side, &st, changed);
                }
            }
            Some(Term::Call { callee, ret }) => {
                let mut into = s.clone();
                into[reg::LR as usize] = ValueRange::exact(*ret);
                flow(*callee, &into, changed);
                flow(*ret, &apply_call_return(&s, summary(*callee), *ret), changed);
            }
            Some(Term::CallUnknown { ret }) => {
                if let Some(targets) = g.resolved.get(&b) {
                    let mut clobbers = RegSet::EMPTY;
                    for &t in targets {
                        let mut into = s.clone();
                        into[reg::LR as usize] = ValueRange::exact(*ret);
                        flow(t, &into, changed);
                        clobbers = clobbers.union(summary(t));
                    }
                    flow(*ret, &apply_call_return(&s, clobbers, *ret), changed);
                } else {
                    // Unknown callee: the call still installs the link
                    // register, but the callee may compute anything by
                    // the time control returns here.
                    let mut into = s.clone();
                    into[reg::LR as usize] = ValueRange::exact(*ret);
                    for &t in &g.address_taken {
                        flow(t, &into, changed);
                    }
                    flow(*ret, &havoc(), changed);
                }
            }
            Some(Term::Syscall { ret }) => {
                // `transfer` already applied the env clobbers.
                flow(*ret, &s, changed);
            }
            // The matched call sites' summary-havoc edges already
            // over-approximate every state a `ret` can deliver.
            Some(Term::Ret) => {}
            Some(Term::IndirectJump) => {
                if let Some(targets) = g.resolved.get(&b) {
                    for &t in targets {
                        flow(t, &s, changed);
                    }
                } else {
                    for &t in &g.address_taken {
                        flow(t, &s, changed);
                    }
                }
            }
            Some(Term::Iret) | Some(Term::Halt) | None => {}
        }
    })?;

    Ok(RangeAnalysis { entry: states, widened_blocks: widened.len(), iterations })
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2e_vm::asm::Assembler;

    #[test]
    fn set_arithmetic_is_exact_pairwise() {
        let a = ValueRange::from_values([1, 2, 3]);
        let b = ValueRange::from_values([10, 20]);
        let r = range_binop(BinOp::Add, &a, &b);
        assert_eq!(r, ValueRange::from_values([11, 12, 13, 21, 22, 23]));
        // Division by zero inherits the VM's all-ones result.
        let z = range_binop(BinOp::UDiv, &ValueRange::exact(7), &ValueRange::exact(0));
        assert_eq!(z, ValueRange::exact(u32::MAX));
    }

    #[test]
    fn interval_rules_cover_big_operands() {
        let big = ValueRange::Interval { lo: 0, hi: 1000, stride: 1 };
        // Masking bounds even ⊤.
        assert_eq!(
            range_binop(BinOp::And, &ValueRange::Top, &ValueRange::exact(3)),
            ValueRange::from_values([0, 1, 2, 3])
        );
        // Shifted interval keeps its grid.
        let r = range_binop(BinOp::Shl, &big, &ValueRange::exact(4));
        assert_eq!(r, ValueRange::Interval { lo: 0, hi: 16000, stride: 16 });
        // A small wrapping add folds exactly through the interpreter.
        let high = ValueRange::Interval { lo: u32::MAX - 10, hi: u32::MAX, stride: 1 };
        assert_eq!(
            range_binop(BinOp::Add, &high, &ValueRange::exact(20)),
            ValueRange::Interval { lo: 9, hi: 19, stride: 1 }
        );
        // Too wide to enumerate and possibly wrapping: give up soundly.
        let huge = ValueRange::Interval { lo: u32::MAX - 1000, hi: u32::MAX, stride: 1 };
        assert_eq!(range_binop(BinOp::Add, &huge, &ValueRange::exact(20)), ValueRange::Top);
    }

    #[test]
    fn join_covers_and_widens_representation() {
        let a = ValueRange::from_values([0, 16, 32]);
        let b = ValueRange::from_values([48]);
        let j = a.join(&b);
        assert_eq!(j, ValueRange::from_values([0, 16, 32, 48]));
        assert!(j.includes(&a) && j.includes(&b));
        let many: Vec<u32> = (0..40).map(|k| k * 8).collect();
        let wide = ValueRange::from_values(many.clone());
        assert_eq!(wide, ValueRange::Interval { lo: 0, hi: 312, stride: 8 });
        for v in many {
            assert!(wide.contains(v));
        }
    }

    #[test]
    fn jump_table_address_math_enumerates() {
        // The canonical dispatch shape: idx & 3, << 4, + table.
        let mut s = havoc();
        let instrs = |a: &mut Assembler| {
            a.andi(2, 1, 3);
            a.shli(2, 2, 4);
            a.movi(3, 0x9000);
            a.add(4, 2, 3);
        };
        let mut a = Assembler::new(0x100);
        instrs(&mut a);
        let p = a.finish();
        let cfg = s2e_dbt::cfg::build_cfg(&p, &[0x100]);
        for i in &cfg.blocks[&0x100].instrs {
            transfer(i, &mut s, &AnalysisConfig::default());
        }
        assert_eq!(
            s[4].enumerate(ENUM_MAX).expect("bounded"),
            vec![0x9000, 0x9010, 0x9020, 0x9030]
        );
    }

    #[test]
    fn interprocedural_summary_preserves_untouched_registers() {
        // main: movi r5, 7; call f; jmpr-ish use of r5 — f clobbers only
        // r1, so r5 survives the call under the summary.
        let mut a = Assembler::new(0x2000);
        a.movi(5, 7);
        a.call("f");
        a.halt();
        a.label("f");
        a.movi(1, 9);
        a.ret();
        let p = a.finish();
        let g = FlowGraph::build(&p, &[p.entry]);
        let mut summaries = BTreeMap::new();
        summaries.insert(p.symbol("f"), RegSet::single(1));
        let ra = analyze(&g, &summaries, &AnalysisConfig::default()).unwrap();
        let ret_site = 0x2010;
        let at_ret = &ra.entry[&ret_site];
        assert_eq!(at_ret[5], ValueRange::exact(7));
        assert_eq!(at_ret[1], ValueRange::Top);
        // LR untouched by f: still names the return site.
        assert_eq!(at_ret[reg::LR as usize], ValueRange::exact(ret_site));
        // Without a summary the callee havocs everything.
        let ra2 = analyze(&g, &BTreeMap::new(), &AnalysisConfig::default()).unwrap();
        assert_eq!(ra2.entry[&ret_site][5], ValueRange::Top);
    }

    #[test]
    fn branch_restriction_bounds_the_taken_side() {
        let mut a = Assembler::new(0x3000);
        a.ld32(1, 2, 0); // r1 unknown
        a.movi(3, 10);
        a.bltu(1, 3, "small");
        a.halt();
        a.label("small");
        a.halt();
        let p = a.finish();
        let g = FlowGraph::build(&p, &[p.entry]);
        let ra = analyze(&g, &BTreeMap::new(), &AnalysisConfig::default()).unwrap();
        let small = &ra.entry[&p.symbol("small")];
        assert_eq!(small[1], normalize(0, 9, 1));
    }

    #[test]
    fn widening_terminates_unbounded_loops() {
        // r1 grows without bound; the fixpoint must still terminate and
        // the loop-carried register must end at ⊤.
        let mut a = Assembler::new(0x4000);
        a.movi(1, 0);
        a.label("loop");
        a.addi(1, 1, 1);
        a.jmp("loop");
        let p = a.finish();
        let g = FlowGraph::build(&p, &[p.entry]);
        let ra = analyze(&g, &BTreeMap::new(), &AnalysisConfig::default()).unwrap();
        assert!(ra.iterations <= g.bound());
        assert!(ra.widened_blocks >= 1);
        assert_eq!(ra.entry[&p.symbol("loop")][1], ValueRange::Top);
    }
}
