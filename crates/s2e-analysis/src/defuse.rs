//! Per-instruction register def/use sets.
//!
//! Three views of the same instruction, used by different passes:
//!
//! - [`defs`]: registers the instruction writes (liveness kill set,
//!   taint/constant transfer targets);
//! - [`uses`]: registers whose *values* the instruction semantics read
//!   (liveness gen set — conservative, includes environment reads);
//! - [`observed`]: registers whose symbolic-ness the engine's dynamic
//!   `touches_symbolic` check inspects. This is the set that matters for
//!   the concrete-only claim: a block is concrete-only exactly when no
//!   instruction in it can observe a symbolic register, and `observed`
//!   mirrors the engine's per-instruction read set instruction for
//!   instruction.
//!
//! `uses` is always a superset of `observed` except for `Syscall` and
//! `S2eOp`, where the engine checks fewer registers than the environment
//! may semantically read; liveness needs the wide set (a dead-write
//! replacement must never change a value the environment reads), taint
//! needs the narrow one plus its own environment modeling.

use s2e_vm::isa::{reg, Instr, Opcode};

/// A set of the 16 architectural registers, as a bitmask.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct RegSet(pub u16);

impl RegSet {
    /// The empty set.
    pub const EMPTY: RegSet = RegSet(0);
    /// All sixteen registers.
    pub const ALL: RegSet = RegSet(0xffff);

    /// The singleton set `{r}`.
    pub fn single(r: u8) -> RegSet {
        RegSet(1 << (r as u16 & 0xf))
    }

    /// Set membership.
    pub fn contains(self, r: u8) -> bool {
        self.0 & (1 << (r as u16 & 0xf)) != 0
    }

    /// Inserts `r`, returning the new set.
    pub fn with(self, r: u8) -> RegSet {
        RegSet(self.0 | RegSet::single(r).0)
    }

    /// Removes `r`, returning the new set.
    pub fn without(self, r: u8) -> RegSet {
        RegSet(self.0 & !RegSet::single(r).0)
    }

    /// Set union.
    pub fn union(self, other: RegSet) -> RegSet {
        RegSet(self.0 | other.0)
    }

    /// Set intersection.
    pub fn inter(self, other: RegSet) -> RegSet {
        RegSet(self.0 & other.0)
    }

    /// Set difference.
    pub fn minus(self, other: RegSet) -> RegSet {
        RegSet(self.0 & !other.0)
    }

    /// True when no register is in the set.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of registers in the set.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Iterates the register numbers in the set, ascending.
    pub fn iter(self) -> impl Iterator<Item = u8> {
        (0u8..16).filter(move |&r| self.contains(r))
    }
}

fn is_alu3(op: Opcode) -> bool {
    matches!(
        op,
        Opcode::Add
            | Opcode::Sub
            | Opcode::Mul
            | Opcode::Divu
            | Opcode::Divs
            | Opcode::Remu
            | Opcode::Rems
            | Opcode::And
            | Opcode::Or
            | Opcode::Xor
            | Opcode::Shl
            | Opcode::Shr
            | Opcode::Sar
    )
}

fn is_alui(op: Opcode) -> bool {
    matches!(
        op,
        Opcode::AddI
            | Opcode::SubI
            | Opcode::MulI
            | Opcode::AndI
            | Opcode::OrI
            | Opcode::XorI
            | Opcode::ShlI
            | Opcode::ShrI
            | Opcode::SarI
    )
}

/// Registers written by `i`.
///
/// `Syscall` reports no defs here: what the environment clobbers is a
/// software convention, so the passes model it separately (see
/// `AnalysisConfig::env_clobbers`). Reporting no defs is conservative
/// for liveness (nothing is killed across the call).
pub fn defs(i: &Instr) -> RegSet {
    match i.op {
        Opcode::MovI | Opcode::Mov | Opcode::Not | Opcode::In => RegSet::single(i.rd),
        op if is_alu3(op) || is_alui(op) => RegSet::single(i.rd),
        Opcode::Ld8 | Opcode::Ld16 | Opcode::Ld32 => RegSet::single(i.rd),
        Opcode::Pop => RegSet::single(i.rd).with(reg::SP),
        Opcode::Push => RegSet::single(reg::SP),
        Opcode::Call | Opcode::CallR => RegSet::single(reg::LR),
        _ => RegSet::EMPTY,
    }
}

/// Registers whose values `i` semantically reads, including reads the
/// environment may perform on the instruction's behalf (`Syscall` passes
/// the whole register file to the kernel; `S2eOp` sub-operations read
/// `R0`/`R1`).
pub fn uses(i: &Instr) -> RegSet {
    match i.op {
        Opcode::Mov | Opcode::Not => RegSet::single(i.rs1),
        op if is_alui(op) => RegSet::single(i.rs1),
        op if is_alu3(op) => RegSet::single(i.rs1).with(i.rs2),
        Opcode::Ld8 | Opcode::Ld16 | Opcode::Ld32 => RegSet::single(i.rs1),
        Opcode::St8 | Opcode::St16 | Opcode::St32 => RegSet::single(i.rs1).with(i.rs2),
        Opcode::Push => RegSet::single(i.rs1).with(reg::SP),
        Opcode::Pop | Opcode::Iret => RegSet::single(reg::SP),
        Opcode::In => RegSet::single(i.rs1),
        Opcode::Out => RegSet::single(i.rs1).with(i.rs2),
        Opcode::JmpR | Opcode::CallR => RegSet::single(i.rs1),
        Opcode::Ret => RegSet::single(reg::LR),
        Opcode::Beq | Opcode::Bne | Opcode::Bltu | Opcode::Bgeu | Opcode::Blts | Opcode::Bges => {
            RegSet::single(i.rs1).with(i.rs2)
        }
        Opcode::Syscall => RegSet::ALL,
        Opcode::S2eOp => RegSet::single(reg::R0).with(reg::R1),
        _ => RegSet::EMPTY,
    }
}

/// Registers the engine's dynamic `touches_symbolic` check inspects for
/// `i` — the exact read set that decides whether an instruction counts
/// as symbolic at execution time.
pub fn observed(i: &Instr) -> RegSet {
    match i.op {
        Opcode::Syscall => RegSet::single(reg::SP),
        Opcode::S2eOp => RegSet::EMPTY,
        _ => uses(i),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2e_vm::isa::Instr;

    fn ins(op: Opcode, rd: u8, rs1: u8, rs2: u8, imm: u32) -> Instr {
        Instr { op, rd, rs1, rs2, imm }
    }

    #[test]
    fn regset_basics() {
        let s = RegSet::single(3).with(7).with(15);
        assert!(s.contains(3) && s.contains(7) && s.contains(15));
        assert!(!s.contains(0));
        assert_eq!(s.len(), 3);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 7, 15]);
        assert_eq!(s.without(7).len(), 2);
        assert_eq!(s.minus(RegSet::single(3)).len(), 2);
        assert_eq!(s.inter(RegSet::single(3)), RegSet::single(3));
        assert!(RegSet::EMPTY.is_empty());
        assert_eq!(RegSet::ALL.len(), 16);
    }

    #[test]
    fn alu_def_use() {
        let i = ins(Opcode::Add, 1, 2, 3, 0);
        assert_eq!(defs(&i), RegSet::single(1));
        assert_eq!(uses(&i), RegSet::single(2).with(3));
        assert_eq!(observed(&i), uses(&i));
        let j = ins(Opcode::AddI, 4, 5, 0, 9);
        assert_eq!(defs(&j), RegSet::single(4));
        assert_eq!(uses(&j), RegSet::single(5));
    }

    #[test]
    fn stack_and_env_def_use() {
        let push = ins(Opcode::Push, 0, 6, 0, 0);
        assert_eq!(defs(&push), RegSet::single(reg::SP));
        assert_eq!(uses(&push), RegSet::single(6).with(reg::SP));
        let pop = ins(Opcode::Pop, 6, 0, 0, 0);
        assert_eq!(defs(&pop), RegSet::single(6).with(reg::SP));
        assert_eq!(uses(&pop), RegSet::single(reg::SP));
        let sys = ins(Opcode::Syscall, 0, 0, 0, 1);
        assert_eq!(defs(&sys), RegSet::EMPTY);
        assert_eq!(uses(&sys), RegSet::ALL);
        // The engine only checks SP for a syscall's symbolic-ness.
        assert_eq!(observed(&sys), RegSet::single(reg::SP));
        let s2e = ins(Opcode::S2eOp, 0, 0, 0, 1);
        assert_eq!(uses(&s2e), RegSet::single(reg::R0).with(reg::R1));
        assert_eq!(observed(&s2e), RegSet::EMPTY);
    }
}
