//! Interprocedural glue: clobber summaries, range-driven indirect-target
//! resolution, and the dynamic-discovery absorption path.
//!
//! Three layers, each feeding the next:
//!
//! 1. **Clobber summaries** ([`summaries`]) — per function entry, the
//!    may-write register set of any path through its body, computed as
//!    the least fixpoint of `S(f) = defs(body f) ∪ ⋃ S(callees of f)`,
//!    widened to all registers when the body escapes analysis
//!    (unresolved indirect, `iret`). Summaries let `range` and
//!    `constprop` havoc only what a callee can actually touch at return
//!    sites, so root-seeded facts survive call boundaries.
//! 2. **Refinement loop** ([`refine`]) — build the merged whole-system
//!    flow graph, run the range fixpoint under current summaries,
//!    enumerate each unresolved `jmpr`/`callr` target register's range,
//!    and where it proves a bounded in-image target set, record the site
//!    as resolved and re-root the CFG at the proven targets. Rebuilding
//!    grows the graph (new blocks, tighter edges), which can resolve
//!    more sites, so the loop iterates to a fixpoint (bounded by
//!    [`MAX_ROUNDS`]). The proven edges replace `UNKNOWN_SINK` in the
//!    underlying [`StaticCfg`] and become [`IndirectPredictions`] for
//!    the engine's retirement check.
//! 3. **Incremental absorption** ([`IncrementalPrepass`]) — when the
//!    engine retires an indirect target the static model did not
//!    predict, [`IncrementalPrepass::absorb_discovery`] extends the
//!    model (never narrows it): the target joins the prediction set and
//!    the root set, the graph is rebuilt, and taint/const-prop restart
//!    from their previous fixpoints with only the blocks the rebuild
//!    actually changed re-queued — monotone join-only passes over a
//!    graph that only grows reach the same fixpoint as a from-scratch
//!    run, within the same iteration bound.

use crate::constprop::{self, ConstProp};
use crate::defuse::{defs, RegSet};
use crate::graph::{AnalysisConfig, BoundExceeded, FlowGraph, TaintSeed, Term};
use crate::range::{self, RangeAnalysis, ENUM_MAX};
use crate::taint::{self, Taint};
use s2e_dbt::{IndirectPredictions, IndirectSite};
use s2e_vm::asm::Program;
use s2e_vm::isa::{reg, Opcode, INSTR_SIZE};
use std::collections::{BTreeMap, BTreeSet};

/// Function entry block → registers any path through it may clobber.
pub type ClobberSummaries = BTreeMap<u32, RegSet>;

/// Cap on refinement rebuild rounds. Each productive round resolves at
/// least one new site or adds one new root, and the corpora resolve in
/// one or two; the cap only guards against a pathological image.
pub const MAX_ROUNDS: usize = 8;

/// Intra-procedural body of the function entered at `entry`: blocks
/// reachable without leaving the function (calls step over via their
/// return site; a resolved computed jump stays inside; `ret`, escapes,
/// and halts stop the walk).
fn function_body(g: &FlowGraph, entry: u32) -> BTreeSet<u32> {
    let mut body = BTreeSet::new();
    let mut stack = vec![entry];
    while let Some(b) = stack.pop() {
        if !g.cfg.blocks.contains_key(&b) || !body.insert(b) {
            continue;
        }
        match g.term.get(&b) {
            Some(Term::Goto(t)) => stack.push(*t),
            Some(Term::Branch { taken, fall }) => {
                stack.push(*taken);
                stack.push(*fall);
            }
            Some(Term::Call { ret, .. })
            | Some(Term::CallUnknown { ret })
            | Some(Term::Syscall { ret }) => stack.push(*ret),
            Some(Term::IndirectJump) => {
                if let Some(targets) = g.resolved.get(&b) {
                    stack.extend(targets.iter().copied());
                }
            }
            _ => {}
        }
    }
    body
}

/// May-clobber effect of one body under the current summary map.
/// Returns all registers as soon as the body escapes analysis.
fn body_effect(
    g: &FlowGraph,
    body: &BTreeSet<u32>,
    sums: &ClobberSummaries,
    cfg: &AnalysisConfig,
) -> RegSet {
    let callee_sum = |c: u32| sums.get(&c).copied().unwrap_or(RegSet::ALL);
    let mut s = RegSet::EMPTY;
    for &b in body {
        let Some(blk) = g.cfg.blocks.get(&b) else { continue };
        for i in &blk.instrs {
            s = s.union(defs(i));
            if i.op == Opcode::S2eOp {
                // `SymbolicReg` writes r0; `defs` reports none for S2eOp.
                s = s.with(reg::R0);
            }
        }
        match g.term.get(&b) {
            Some(Term::Call { callee, .. }) => s = s.union(callee_sum(*callee)),
            Some(Term::CallUnknown { .. }) => match g.resolved.get(&b) {
                Some(targets) => {
                    for &t in targets {
                        s = s.union(callee_sum(t));
                    }
                }
                None => return RegSet::ALL,
            },
            Some(Term::IndirectJump) if g.resolved.get(&b).is_none() => return RegSet::ALL,
            Some(Term::Iret) => return RegSet::ALL,
            Some(Term::Syscall { .. }) => s = s.union(cfg.env_clobbers),
            _ => {}
        }
        if s == RegSet::ALL {
            return s;
        }
    }
    s
}

/// Computes per-function clobber summaries for every block that can be
/// entered as a function (roots, address-taken blocks, direct and
/// resolved-indirect callees) as a least fixpoint over the call graph.
pub fn summaries(g: &FlowGraph, cfg: &AnalysisConfig) -> ClobberSummaries {
    let mut entries: BTreeSet<u32> = g.roots.iter().copied().collect();
    entries.extend(g.address_taken.iter().copied());
    for (b, t) in &g.term {
        match t {
            Term::Call { callee, .. } => {
                entries.insert(*callee);
            }
            Term::CallUnknown { .. } => {
                if let Some(targets) = g.resolved.get(b) {
                    entries.extend(targets.iter().copied());
                }
            }
            _ => {}
        }
    }
    let bodies: BTreeMap<u32, BTreeSet<u32>> =
        entries.iter().map(|&e| (e, function_body(g, e))).collect();
    let mut sums: ClobberSummaries = entries.iter().map(|&e| (e, RegSet::EMPTY)).collect();
    // Union-only recomputation from EMPTY: at most 16·|entries| sweeps,
    // in practice two or three.
    loop {
        let mut changed = false;
        for &e in &entries {
            let s = body_effect(g, &bodies[&e], &sums, cfg);
            if sums[&e] != s {
                sums.insert(e, s);
                changed = true;
            }
        }
        if !changed {
            return sums;
        }
    }
}

/// Whether `pc` is an instruction-aligned address inside one of the
/// analyzed program images.
fn in_image(progs: &[&Program], pc: u32) -> bool {
    progs.iter().any(|p| pc >= p.base && pc < p.end() && (pc - p.base) % INSTR_SIZE == 0)
}

/// Enumerates every provable indirect site from the range fixpoint:
/// `jmpr`/`callr` blocks whose target register holds a bounded range of
/// in-image instruction addresses. Keyed by the indirect instruction's
/// pc. The range over-approximates the runtime value, so its
/// enumeration is a *complete* successor set — but it is only usable if
/// every member is a plausible code address; one stray value
/// disqualifies the site rather than narrowing it.
///
/// Already-resolved sites are re-proposed, not skipped: resolving a
/// site grows the graph, which can widen the range at that very site on
/// the next round, so a frozen first-round set would silently
/// under-approximate. The refinement loop compares proposals across
/// rounds and only stops at a self-consistent map.
fn resolve_sites(
    g: &FlowGraph,
    ranges: &RangeAnalysis,
    progs: &[&Program],
) -> BTreeMap<u32, Vec<u32>> {
    let mut found = BTreeMap::new();
    for (&b, t) in &g.term {
        if !matches!(t, Term::CallUnknown { .. } | Term::IndirectJump) {
            continue;
        }
        let Some(blk) = g.cfg.blocks.get(&b) else { continue };
        let Some(last) = blk.instrs.last() else { continue };
        let Some(state) = ranges.state_before_term(g, b) else { continue };
        let Some(vals) = state[last.rs1 as usize & 0xf].enumerate(ENUM_MAX) else { continue };
        if !vals.is_empty() && vals.iter().all(|&v| in_image(progs, v)) {
            let site = b + (blk.instrs.len() as u32 - 1) * INSTR_SIZE;
            found.insert(site, vals);
        }
    }
    found
}

/// Result of the static refinement loop over one merged system image.
pub struct Refinement {
    /// The final merged flow graph; resolved blocks' `UNKNOWN_SINK`
    /// successors in its `cfg` have been replaced by the proven sets.
    pub graph: FlowGraph,
    /// Clobber summaries over the final graph.
    pub summaries: ClobberSummaries,
    /// Range fixpoint over the final graph.
    pub ranges: RangeAnalysis,
    /// Proven indirect sites, keyed by the indirect instruction's pc.
    pub resolved_sites: BTreeMap<u32, Vec<u32>>,
    /// Roots added beyond the embedder's (resolved targets that were
    /// not statically address-taken).
    pub extra_roots: Vec<u32>,
    /// Refinement rounds used (1 = nothing newly resolved).
    pub rounds: usize,
    /// Blocks with an `UNKNOWN_SINK` successor before/after refinement.
    pub unknown_edges_before: usize,
    pub unknown_edges_after: usize,
}

impl Refinement {
    /// The engine-facing prediction table: every indirect site's
    /// statically known target set. Unresolved sites predict nothing
    /// (their first retirement reports as discovered); unmatched `ret`s
    /// escape the analyzed region by construction.
    pub fn predictions(&self) -> IndirectPredictions {
        let mut sites = BTreeMap::new();
        for (&b, t) in &self.graph.term {
            let Some(pc) = self.graph.indirect_site_pc(b) else { continue };
            let site = match t {
                Term::CallUnknown { .. } | Term::IndirectJump => match self.graph.resolved.get(&b)
                {
                    Some(targets) => IndirectSite {
                        targets: targets.iter().copied().collect(),
                        escapes: false,
                    },
                    None => IndirectSite::default(),
                },
                Term::Ret => match self.graph.ret_sites.get(&b) {
                    Some(s) => {
                        IndirectSite { targets: s.iter().copied().collect(), escapes: false }
                    }
                    None => IndirectSite { targets: BTreeSet::new(), escapes: true },
                },
                _ => continue,
            };
            sites.insert(pc, site);
        }
        IndirectPredictions { sites }
    }
}

/// How many blocks still end in a genuinely unknown edge: an
/// unresolved indirect, or a `ret` with no matched call site.
pub fn unresolved_blocks(g: &FlowGraph) -> usize {
    g.term
        .iter()
        .filter(|(b, t)| match t {
            Term::CallUnknown { .. } | Term::IndirectJump => !g.resolved.contains_key(b),
            Term::Ret => !g.ret_sites.contains_key(b),
            _ => false,
        })
        .count()
}

/// Replaces `UNKNOWN_SINK` successors of proven blocks in the CFG with
/// their proven sets (resolved indirects and matched rets).
fn apply_cfg_refinement(g: &mut FlowGraph) {
    let proven: Vec<(u32, Vec<u32>)> = g
        .term
        .iter()
        .filter_map(|(&b, t)| match t {
            Term::CallUnknown { .. } | Term::IndirectJump => {
                g.resolved.get(&b).map(|v| (b, v.clone()))
            }
            Term::Ret => g.ret_sites.get(&b).map(|v| (b, v.clone())),
            _ => None,
        })
        .collect();
    for (b, targets) in proven {
        g.cfg.refine_successors(b, &targets);
    }
}

/// Runs the static refinement loop over the merged system image.
pub fn refine(
    progs: &[&Program],
    roots: &[u32],
    cfg: &AnalysisConfig,
) -> Result<Refinement, BoundExceeded> {
    let mut resolved_sites: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
    let mut extra_roots: Vec<u32> = Vec::new();
    let mut g = FlowGraph::build_merged(progs, roots, &resolved_sites);
    let unknown_edges_before = g.cfg.unknown_edge_count();
    let mut rounds = 0usize;
    let (sums, ranges) = loop {
        rounds += 1;
        let sums = summaries(&g, cfg);
        let ranges = range::analyze(&g, &sums, cfg)?;
        // Full re-proposal every round: resolving a site adds blocks,
        // which can widen ranges at sites resolved earlier. The loop is
        // done only when the proposal reproduces the map the graph was
        // built from (a self-consistent fixpoint).
        let proposal = resolve_sites(&g, &ranges, progs);
        if proposal == resolved_sites {
            break (sums, ranges);
        }
        if rounds >= MAX_ROUNDS {
            // Round budget exhausted while the proposal was still
            // moving. Keep only sites whose proven set is stable and
            // demote the rest to unresolved (always sound: they fall
            // back to havoc + `UNKNOWN_SINK`), then recompute the
            // fixpoints so the returned facts match the returned graph.
            resolved_sites.retain(|s, t| proposal.get(s) == Some(t));
            let mut all_roots = roots.to_vec();
            all_roots.extend(extra_roots.iter().copied());
            g = FlowGraph::build_merged(progs, &all_roots, &resolved_sites);
            let sums = summaries(&g, cfg);
            let ranges = range::analyze(&g, &sums, cfg)?;
            break (sums, ranges);
        }
        for targets in proposal.values() {
            for &t in targets {
                if !roots.contains(&t) && !extra_roots.contains(&t) {
                    // Sticky: targets stay roots even if their site is
                    // later demoted, so the graph only ever grows.
                    extra_roots.push(t);
                }
            }
        }
        resolved_sites = proposal;
        let mut all_roots = roots.to_vec();
        all_roots.extend(extra_roots.iter().copied());
        g = FlowGraph::build_merged(progs, &all_roots, &resolved_sites);
    };
    apply_cfg_refinement(&mut g);
    let unknown_edges_after = g.cfg.unknown_edge_count();
    Ok(Refinement {
        summaries: sums,
        ranges,
        resolved_sites,
        extra_roots,
        rounds,
        unknown_edges_before,
        unknown_edges_after,
        graph: g,
    })
}

/// Blocks of `new` whose transfer or outgoing edges differ from `old`:
/// the worklist seeds for an incremental restart after a graph rebuild.
/// Blocks the rebuild did not touch keep their fixpoint states and are
/// not re-queued (they re-enter the worklist only if a changed
/// predecessor grows their entry, exactly as in a from-scratch run).
pub fn affected_blocks(old: &FlowGraph, new: &FlowGraph) -> Vec<u32> {
    let widening_changed =
        old.address_taken != new.address_taken || old.roots != new.roots;
    new.cfg
        .blocks
        .iter()
        .filter_map(|(&b, blk)| {
            let changed = match old.cfg.blocks.get(&b) {
                // Brand-new block: seeding is harmless (no state yet ⇒
                // the step is a no-op until a predecessor reaches it).
                None => true,
                Some(oblk) => {
                    oblk.instrs.len() != blk.instrs.len()
                        || old.term.get(&b) != new.term.get(&b)
                        || old.resolved.get(&b) != new.resolved.get(&b)
                        || old.ret_sites.get(&b) != new.ret_sites.get(&b)
                        || (widening_changed
                            && !new.resolved.contains_key(&b)
                            && matches!(
                                new.term.get(&b),
                                Some(Term::CallUnknown { .. } | Term::IndirectJump)
                            ))
                }
            };
            changed.then_some(b)
        })
        .collect()
}

/// The whole-system static model plus the taint/const-prop fixpoints
/// over it, retained across execution so dynamically discovered
/// indirect targets can be absorbed incrementally.
pub struct IncrementalPrepass {
    /// The analyzed program images.
    pub progs: Vec<Program>,
    /// Embedder-declared entry points.
    pub base_roots: Vec<u32>,
    /// Embedder-declared taint seeds per root.
    pub taint_roots: Vec<(u32, TaintSeed)>,
    /// Environment conventions.
    pub config: AnalysisConfig,
    /// The current static refinement.
    pub refinement: Refinement,
    /// Taint fixpoint over the refinement's graph.
    pub taint: Taint,
    /// Const-prop fixpoint over the refinement's graph.
    pub constprop: ConstProp,
    /// Runtime-discovered targets absorbed so far, by site pc. Kept as
    /// an overlay so predictions rebuilt from a new static model never
    /// forget a dynamically observed edge.
    pub absorbed: BTreeMap<u32, BTreeSet<u32>>,
    /// Discovered targets that behave like region re-entries (escaping
    /// `ret`s): seeded fully tainted, like any other external entry.
    escape_roots: Vec<u32>,
    /// Worklist pops used by the most recent incremental restart
    /// (taint + const-prop), for bound accounting.
    pub last_incremental_iterations: usize,
}

impl IncrementalPrepass {
    /// Builds the refined static model and both dependent fixpoints.
    pub fn build(
        progs: Vec<Program>,
        roots: Vec<u32>,
        taint_roots: Vec<(u32, TaintSeed)>,
        config: AnalysisConfig,
    ) -> Result<IncrementalPrepass, BoundExceeded> {
        let prog_refs: Vec<&Program> = progs.iter().collect();
        let refinement = refine(&prog_refs, &roots, &config)?;
        let taint = taint::analyze(&refinement.graph, &taint_roots, &config)?;
        let constprop =
            constprop::analyze_with(&refinement.graph, &refinement.summaries, &config)?;
        Ok(IncrementalPrepass {
            progs,
            base_roots: roots,
            taint_roots,
            config,
            refinement,
            taint,
            constprop,
            absorbed: BTreeMap::new(),
            escape_roots: Vec::new(),
            last_incremental_iterations: 0,
        })
    }

    /// The current prediction table: static predictions plus every
    /// absorbed runtime discovery.
    pub fn predictions(&self) -> IndirectPredictions {
        let mut p = self.refinement.predictions();
        for (&pc, targets) in &self.absorbed {
            let site = p.sites.entry(pc).or_default();
            site.targets.extend(targets.iter().copied());
        }
        p
    }

    /// Absorbs one dynamically retired `(site pc, target)` the static
    /// model did not predict. The prediction table is extended (never
    /// narrowed), the target joins the analyzed root set if it lies in
    /// an image, the graph is rebuilt, and taint/const-prop restart
    /// from their previous fixpoints with only the changed blocks
    /// re-queued.
    pub fn absorb_discovery(&mut self, site_pc: u32, target: u32) -> Result<(), BoundExceeded> {
        self.absorbed.entry(site_pc).or_default().insert(target);

        let prog_refs: Vec<&Program> = self.progs.iter().collect();
        if !in_image(&prog_refs, target) {
            // Retired into unanalyzed space (embedder trampoline, say):
            // nothing static to grow; the overlay already records it.
            return Ok(());
        }

        // Classify the site in the current graph to repair the model.
        let g = &self.refinement.graph;
        let site_block =
            g.term.keys().copied().find(|&b| g.indirect_site_pc(b) == Some(site_pc));
        match site_block.and_then(|b| g.term.get(&b).map(|t| (b, t.clone()))) {
            Some((b, Term::CallUnknown { .. } | Term::IndirectJump))
                if g.resolved.contains_key(&b) =>
            {
                // A "complete" proven set turned out incomplete (the
                // soundness invariant was violated upstream): extend it.
                self.refinement
                    .resolved_sites
                    .entry(site_pc)
                    .or_default()
                    .push(target);
            }
            Some((_, Term::Ret)) | None => {
                // Control re-enters the region at `target` with state the
                // graph does not model: treat it like an external entry.
                if !self.escape_roots.contains(&target) {
                    self.escape_roots.push(target);
                }
            }
            _ => {}
        }
        if !self.refinement.extra_roots.contains(&target)
            && !self.base_roots.contains(&target)
            && !self.escape_roots.contains(&target)
        {
            self.refinement.extra_roots.push(target);
        }

        // Rebuild the graph over the grown model and restart the
        // dependent fixpoints from the previous ones, seeded at the
        // blocks the rebuild changed.
        let mut all_roots = self.base_roots.clone();
        all_roots.extend(self.refinement.extra_roots.iter().copied());
        all_roots.extend(self.escape_roots.iter().copied());
        all_roots.dedup();
        let mut new_g =
            FlowGraph::build_merged(&prog_refs, &all_roots, &self.refinement.resolved_sites);
        apply_cfg_refinement(&mut new_g);
        let dirty = affected_blocks(&self.refinement.graph, &new_g);

        let mut taint_roots = self.taint_roots.clone();
        for &r in &self.escape_roots {
            taint_roots.push((r, TaintSeed::all()));
        }
        let taint = taint::analyze_from(&new_g, &self.taint, &taint_roots, &dirty, &self.config)?;
        let sums = summaries(&new_g, &self.config);
        let cp = constprop::analyze_from(&new_g, &self.constprop, &sums, &dirty, &self.config)?;

        self.last_incremental_iterations = taint.iterations + cp.iterations;
        self.refinement.summaries = sums;
        self.refinement.unknown_edges_after = new_g.cfg.unknown_edge_count();
        self.refinement.graph = new_g;
        self.taint = taint;
        self.constprop = cp;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use s2e_vm::asm::Assembler;

    /// main calls f directly and g through a register; f clobbers r1,
    /// g clobbers r2.
    fn call_prog() -> Program {
        let mut a = Assembler::new(0x1000);
        a.movi(5, 7);
        a.call("f");
        a.movi_label(6, "g");
        a.callr(6);
        a.halt();
        a.label("f");
        a.movi(1, 1);
        a.ret();
        a.label("g");
        a.movi(2, 2);
        a.ret();
        a.finish()
    }

    #[test]
    fn summaries_are_per_function_def_sets() {
        let p = call_prog();
        let g = FlowGraph::build(&p, &[p.entry]);
        let sums = summaries(&g, &AnalysisConfig::default());
        // f writes only r1 (and its `ret` reads LR without writing).
        assert_eq!(sums[&p.symbol("f")], RegSet::single(1));
        // g is reached only through the register call: invisible to the
        // unrefined graph (not a decoded block), so no summary yet.
        assert!(!sums.contains_key(&p.symbol("g")));
        // Refinement roots it and the summary appears.
        let r = refine(&[&p], &[p.entry], &AnalysisConfig::default()).unwrap();
        assert_eq!(r.summaries[&p.symbol("g")], RegSet::single(2));
    }

    #[test]
    fn refine_resolves_register_call_and_keeps_summaries_tight() {
        let p = call_prog();
        let r = refine(&[&p], &[p.entry], &AnalysisConfig::default()).unwrap();
        // The callr's target register is a movi'd label: resolved.
        assert_eq!(r.resolved_sites.len(), 1);
        assert_eq!(r.resolved_sites.values().next().unwrap(), &vec![p.symbol("g")]);
        assert!(r.unknown_edges_after < r.unknown_edges_before);
        // main's entry r5 survives both calls under the summaries.
        let preds = r.predictions();
        assert!(preds
            .sites
            .values()
            .filter(|s| !s.targets.is_empty())
            .count()
            >= 1);
    }

    #[test]
    fn discovery_absorption_extends_and_stays_bounded() {
        // A jmpr whose target comes from memory: statically opaque.
        let mut a = Assembler::new(0x1000);
        a.movi(1, 0x2000);
        a.ld32(2, 1, 0);
        a.jmpr(2);
        a.label("landing");
        a.halt();
        let p = a.finish();
        let landing = p.symbol("landing");
        let site_pc = 0x1010;
        let mut ip = IncrementalPrepass::build(
            vec![p],
            vec![0x1000],
            vec![],
            AnalysisConfig::default(),
        )
        .unwrap();
        assert_eq!(
            ip.predictions().classify(site_pc, landing),
            s2e_dbt::IndirectClass::Discovered
        );
        ip.absorb_discovery(site_pc, landing).unwrap();
        assert_eq!(
            ip.predictions().classify(site_pc, landing),
            s2e_dbt::IndirectClass::Resolved
        );
        assert!(ip.last_incremental_iterations <= ip.refinement.graph.bound());
        // The landing pad is now an analyzed block.
        assert!(ip.refinement.graph.cfg.blocks.contains_key(&landing));
    }
}
