//! Conditional constant propagation and infeasible-branch detection.
//!
//! Lattice: per block entry, `Option<[Const; 16]>` — `None` for "not
//! yet reached", otherwise one flat constant lattice per register
//! (`Val(k)` ⊓ `Val(k)` = `Val(k)`, anything else = `NonConst`). The
//! height per block is 33 (a reached bit plus at most two liftings per
//! register), so the worklist bound of [`crate::graph::iteration_bound`]
//! holds.
//!
//! ALU and branch evaluation reuse the interpreter's own
//! [`apply_binop`]/[`branch_taken`], so a branch judged one-sided here
//! is one-sided under the VM's exact wrapping/shift/division semantics
//! — that is what makes it safe to feed the dead edges to `pathkiller`
//! as statically-infeasible path cutoffs.
//!
//! Call boundaries use clobber summaries ([`crate::interproc`]): a call
//! propagates the argument state into the callee (with the link
//! register pinned to the return address) and havocs at the return site
//! only the registers the callee's summary says any path through it may
//! write — `ret` itself flows nothing, since the call-site edge already
//! over-approximates every exit state. Unresolved indirect edges flow
//! the pre-jump state to the address-taken set (the same modeled-edges ⊇
//! real-edges argument the taint pass uses); with no summary available
//! a callee havocs everything.

use crate::defuse::RegSet;
use crate::graph::{run_worklist, AnalysisConfig, BoundExceeded, FlowGraph, Term};
use crate::interproc::ClobberSummaries;
use s2e_expr::fold::apply_binop;
use s2e_vm::interp::{alu_binop, branch_taken};
use s2e_vm::isa::{reg, Instr, Opcode};
use std::collections::{BTreeMap, BTreeSet};

/// Flat constant lattice element.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Const {
    /// Statically known value.
    Val(u32),
    /// Possibly many values.
    NonConst,
}

impl Const {
    fn join(self, other: Const) -> Const {
        match (self, other) {
            (Const::Val(a), Const::Val(b)) if a == b => Const::Val(a),
            _ => Const::NonConst,
        }
    }
}

/// Per-block-entry register state.
pub type RegConsts = [Const; reg::NUM_REGS];

fn havoc() -> RegConsts {
    [Const::NonConst; reg::NUM_REGS]
}

fn join_into(dst: &mut RegConsts, src: &RegConsts) -> bool {
    let mut changed = false;
    for (d, s) in dst.iter_mut().zip(src.iter()) {
        let j = d.join(*s);
        if j != *d {
            *d = j;
            changed = true;
        }
    }
    changed
}

/// Constant-propagation fixpoint over one program.
#[derive(Clone, Debug, Default)]
pub struct ConstProp {
    /// Entry register state per reached block.
    pub entry: BTreeMap<u32, RegConsts>,
    /// CFG edges `(from_block, to_block)` proven never taken: the
    /// source block's branch condition is a compile-time constant that
    /// always selects the other side.
    pub dead_edges: BTreeSet<(u32, u32)>,
    /// CFG blocks never reached once dead edges are pruned.
    pub unreachable: BTreeSet<u32>,
    /// Conditional branches whose condition folded to a constant.
    pub folded_branches: usize,
    /// Worklist pops used to reach the fixpoint.
    pub iterations: usize,
}

/// One instruction's forward constant transfer.
fn transfer(i: &Instr, s: &mut RegConsts, cfg: &AnalysisConfig) {
    let rd = i.rd as usize & 0xf;
    let get = |s: &RegConsts, r: u8| s[r as usize & 0xf];
    match i.op {
        Opcode::MovI => s[rd] = Const::Val(i.imm),
        Opcode::Mov => s[rd] = get(s, i.rs1),
        Opcode::Not => {
            s[rd] = match get(s, i.rs1) {
                Const::Val(v) => Const::Val(!v),
                Const::NonConst => Const::NonConst,
            }
        }
        Opcode::Add
        | Opcode::Sub
        | Opcode::Mul
        | Opcode::Divu
        | Opcode::Divs
        | Opcode::Remu
        | Opcode::Rems
        | Opcode::And
        | Opcode::Or
        | Opcode::Xor
        | Opcode::Shl
        | Opcode::Shr
        | Opcode::Sar => {
            s[rd] = match (get(s, i.rs1), get(s, i.rs2), alu_binop(i.op)) {
                (Const::Val(a), Const::Val(b), Some(op)) => {
                    Const::Val(apply_binop(op, a as u64, b as u64, s2e_expr::Width::W32) as u32)
                }
                _ => Const::NonConst,
            }
        }
        Opcode::AddI
        | Opcode::SubI
        | Opcode::MulI
        | Opcode::AndI
        | Opcode::OrI
        | Opcode::XorI
        | Opcode::ShlI
        | Opcode::ShrI
        | Opcode::SarI => {
            s[rd] = match (get(s, i.rs1), alu_binop(i.op)) {
                (Const::Val(a), Some(op)) => {
                    Const::Val(apply_binop(op, a as u64, i.imm as u64, s2e_expr::Width::W32) as u32)
                }
                _ => Const::NonConst,
            }
        }
        // Anything read from memory, a port, or the environment is
        // unknown; stack pointer arithmetic stays tracked.
        Opcode::Ld8 | Opcode::Ld16 | Opcode::Ld32 | Opcode::In => s[rd] = Const::NonConst,
        Opcode::Pop => {
            s[rd] = Const::NonConst;
            let sp = reg::SP as usize;
            s[sp] = match s[sp] {
                Const::Val(v) => Const::Val(v.wrapping_add(4)),
                Const::NonConst => Const::NonConst,
            };
        }
        Opcode::Push => {
            let sp = reg::SP as usize;
            s[sp] = match s[sp] {
                Const::Val(v) => Const::Val(v.wrapping_sub(4)),
                Const::NonConst => Const::NonConst,
            };
        }
        Opcode::Call | Opcode::CallR => s[reg::LR as usize] = Const::NonConst,
        Opcode::Syscall => {
            for r in cfg.env_clobbers.iter() {
                s[r as usize] = Const::NonConst;
            }
        }
        // `SymbolicReg` hands r0 a fresh symbolic word: any value.
        Opcode::S2eOp => s[reg::R0 as usize] = Const::NonConst,
        _ => {}
    }
}

/// Runs conditional constant propagation on `g` from its roots with no
/// callee summaries (every call havocs its return site).
pub fn analyze(g: &FlowGraph, cfg: &AnalysisConfig) -> Result<ConstProp, BoundExceeded> {
    analyze_with(g, &ClobberSummaries::new(), cfg)
}

/// Runs conditional constant propagation with per-callee clobber
/// summaries narrowing what each call havocs at its return site
/// (summary lookup misses havoc everything).
pub fn analyze_with(
    g: &FlowGraph,
    sums: &ClobberSummaries,
    cfg: &AnalysisConfig,
) -> Result<ConstProp, BoundExceeded> {
    let mut states: BTreeMap<u32, RegConsts> = BTreeMap::new();
    for &r in &g.roots {
        states.insert(r, havoc());
    }
    let seeds: Vec<u32> = g.roots.clone();
    fixpoint(g, sums, cfg, states, seeds)
}

/// Incremental restart after the graph grew (see
/// [`crate::interproc::IncrementalPrepass`]): resume from `prev`'s
/// fixpoint with `dirty` blocks re-queued. Sound because the pass is
/// monotone join-only and a rebuild only adds blocks and edges, so the
/// previous fixpoint is below the new one and re-queueing exactly the
/// changed blocks converges to it.
pub fn analyze_from(
    g: &FlowGraph,
    prev: &ConstProp,
    sums: &ClobberSummaries,
    dirty: &[u32],
    cfg: &AnalysisConfig,
) -> Result<ConstProp, BoundExceeded> {
    let mut states = prev.entry.clone();
    let mut seeds: Vec<u32> = Vec::new();
    for &r in &g.roots {
        if !states.contains_key(&r) {
            states.insert(r, havoc());
            seeds.push(r);
        }
    }
    seeds.extend(dirty.iter().copied());
    fixpoint(g, sums, cfg, states, seeds)
}

fn fixpoint(
    g: &FlowGraph,
    sums: &ClobberSummaries,
    cfg: &AnalysisConfig,
    mut states: BTreeMap<u32, RegConsts>,
    seeds: Vec<u32>,
) -> Result<ConstProp, BoundExceeded> {
    let summary = |callee: u32| sums.get(&callee).copied().unwrap_or(RegSet::ALL);
    // State delivered to a call's return site: the caller's, with the
    // callee's may-write set havocked; if the callee provably never
    // touches LR, it still names the return site on arrival.
    let call_return = |s: &RegConsts, clobbers: RegSet, ret: u32| -> RegConsts {
        let mut out = *s;
        for r in clobbers.iter() {
            out[r as usize] = Const::NonConst;
        }
        if !clobbers.contains(reg::LR) {
            out[reg::LR as usize] = Const::Val(ret);
        }
        out
    };
    let iterations = run_worklist("constprop", seeds, g.bound(), |b, changed| {
        let Some(&inn) = states.get(&b) else { return };
        let Some(block) = g.cfg.blocks.get(&b) else { return };
        let mut s = inn;
        for i in &block.instrs {
            transfer(i, &mut s, cfg);
        }
        let mut flow = |target: u32, st: &RegConsts, changed: &mut Vec<u32>| {
            if !g.cfg.blocks.contains_key(&target) {
                return;
            }
            match states.get_mut(&target) {
                Some(cur) => {
                    if join_into(cur, st) {
                        changed.push(target);
                    }
                }
                None => {
                    states.insert(target, *st);
                    changed.push(target);
                }
            }
        };
        match g.term.get(&b) {
            Some(Term::Goto(t)) => flow(*t, &s, changed),
            Some(Term::Branch { taken, fall }) => {
                let last = block.instrs.last().expect("branch block nonempty");
                let a = s[last.rs1 as usize & 0xf];
                let c = s[last.rs2 as usize & 0xf];
                match (a, c) {
                    (Const::Val(x), Const::Val(y)) => {
                        // One-sided: propagate only along the feasible edge.
                        if branch_taken(last.op, x, y) {
                            flow(*taken, &s, changed);
                        } else {
                            flow(*fall, &s, changed);
                        }
                    }
                    _ => {
                        flow(*taken, &s, changed);
                        flow(*fall, &s, changed);
                    }
                }
            }
            Some(Term::Call { callee, ret }) => {
                let mut into = s;
                into[reg::LR as usize] = Const::Val(*ret);
                flow(*callee, &into, changed);
                flow(*ret, &call_return(&s, summary(*callee), *ret), changed);
            }
            Some(Term::CallUnknown { ret }) => {
                if let Some(targets) = g.resolved.get(&b) {
                    // Proven-complete callee set: exactly like direct
                    // calls, with the clobber union at the return site.
                    let mut clobbers = RegSet::EMPTY;
                    let mut into = s;
                    into[reg::LR as usize] = Const::Val(*ret);
                    for &t in targets {
                        flow(t, &into, changed);
                        clobbers = clobbers.union(summary(t));
                    }
                    flow(*ret, &call_return(&s, clobbers, *ret), changed);
                } else {
                    let mut into = s;
                    into[reg::LR as usize] = Const::Val(*ret);
                    for &t in &g.address_taken {
                        flow(t, &into, changed);
                    }
                    flow(*ret, &havoc(), changed);
                }
            }
            Some(Term::Syscall { ret }) => flow(*ret, &s, changed),
            // The matched call sites' summary-havoc edges already
            // over-approximate every state a `ret` can deliver.
            Some(Term::Ret) => {}
            Some(Term::IndirectJump) => {
                if let Some(targets) = g.resolved.get(&b) {
                    for &t in targets {
                        flow(t, &s, changed);
                    }
                } else {
                    for &t in &g.address_taken {
                        flow(t, &s, changed);
                    }
                }
            }
            Some(Term::Iret) | Some(Term::Halt) | None => {}
        }
    })?;

    // Classify from the fixpoint: re-evaluate each reached branch and
    // record the never-taken side; blocks with no final state are
    // unreachable under the pruned edges.
    let mut result = ConstProp { iterations, ..ConstProp::default() };
    for (&b, block) in &g.cfg.blocks {
        let Some(&inn) = states.get(&b) else {
            result.unreachable.insert(b);
            continue;
        };
        result.entry.insert(b, inn);
        if let Some(Term::Branch { taken, fall }) = g.term.get(&b) {
            let mut s = inn;
            for i in &block.instrs {
                transfer(i, &mut s, cfg);
            }
            let last = block.instrs.last().expect("branch block nonempty");
            if let (Const::Val(x), Const::Val(y)) =
                (s[last.rs1 as usize & 0xf], s[last.rs2 as usize & 0xf])
            {
                result.folded_branches += 1;
                if branch_taken(last.op, x, y) {
                    if taken != fall {
                        result.dead_edges.insert((b, *fall));
                    }
                } else if taken != fall {
                    result.dead_edges.insert((b, *taken));
                }
            }
        }
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::defuse::RegSet;
    use s2e_vm::asm::Assembler;
    use s2e_vm::isa::reg;

    fn cfg() -> AnalysisConfig {
        AnalysisConfig::default()
    }

    #[test]
    fn constant_branch_kills_edge_and_block() {
        let mut a = Assembler::new(0x2000);
        a.movi(reg::R1, 3);
        a.movi(reg::R2, 5);
        a.bltu(reg::R1, reg::R2, "live"); // 3 < 5: always taken
        a.label("dead");
        a.movi(reg::R9, 1); // never executes
        a.halt();
        a.label("live");
        a.halt();
        let p = a.finish();
        let g = FlowGraph::build(&p, &[p.entry]);
        let c = analyze(&g, &cfg()).unwrap();
        let dead = p.symbol("dead");
        assert_eq!(c.folded_branches, 1);
        assert!(c.dead_edges.contains(&(0x2000, dead)));
        assert!(c.unreachable.contains(&dead));
        assert!(!c.unreachable.contains(&p.symbol("live")));
    }

    #[test]
    fn loads_widen_to_nonconst() {
        let mut a = Assembler::new(0x2000);
        a.movi(reg::R1, 0x8000);
        a.ld32(reg::R2, reg::R1, 0);
        a.movi(reg::R3, 0);
        a.beq(reg::R2, reg::R3, "maybe"); // data-dependent: both live
        a.halt();
        a.label("maybe");
        a.halt();
        let p = a.finish();
        let g = FlowGraph::build(&p, &[p.entry]);
        let c = analyze(&g, &cfg()).unwrap();
        assert!(c.dead_edges.is_empty());
        assert!(c.unreachable.is_empty());
        assert_eq!(c.folded_branches, 0);
    }

    #[test]
    fn alu_folds_with_vm_semantics() {
        let mut a = Assembler::new(0x2000);
        a.movi(reg::R1, 7);
        a.movi(reg::R2, 0);
        a.divu(reg::R3, reg::R1, reg::R2); // division by zero: all-ones
        a.movi(reg::R4, 0xffff_ffff);
        a.beq(reg::R3, reg::R4, "allones"); // must fold taken
        a.label("dead");
        a.halt();
        a.label("allones");
        a.halt();
        let p = a.finish();
        let g = FlowGraph::build(&p, &[p.entry]);
        let c = analyze(&g, &cfg()).unwrap();
        assert!(c.unreachable.contains(&p.symbol("dead")));
    }

    #[test]
    fn call_havocs_return_site() {
        let mut a = Assembler::new(0x2000);
        a.movi(reg::R5, 1);
        a.call("f");
        // r5 could have been changed by f: this branch must not fold.
        a.movi(reg::R6, 1);
        a.beq(reg::R5, reg::R6, "maybe");
        a.halt();
        a.label("maybe");
        a.halt();
        a.label("f");
        a.movi(reg::R5, 2);
        a.ret();
        let p = a.finish();
        let g = FlowGraph::build(&p, &[p.entry]);
        let c = analyze(&g, &cfg()).unwrap();
        assert!(c.dead_edges.is_empty());
    }

    #[test]
    fn summary_narrows_call_havoc() {
        // f writes only r5; under its clobber summary the branch on the
        // untouched r7 folds, where summary-less analysis must not fold.
        let mut a = Assembler::new(0x2000);
        a.movi(reg::R7, 1);
        a.call("f");
        a.movi(reg::R6, 1);
        a.beq(reg::R7, reg::R6, "always");
        a.label("dead");
        a.halt();
        a.label("always");
        a.halt();
        a.label("f");
        a.movi(reg::R5, 2);
        a.ret();
        let p = a.finish();
        let g = FlowGraph::build(&p, &[p.entry]);
        let c = analyze(&g, &cfg()).unwrap();
        assert!(c.dead_edges.is_empty());
        let sums = crate::interproc::summaries(&g, &cfg());
        let c2 = analyze_with(&g, &sums, &cfg()).unwrap();
        assert!(c2.unreachable.contains(&p.symbol("dead")));
        assert!(!c2.unreachable.contains(&p.symbol("always")));
    }

    #[test]
    fn environment_clobbers_widen() {
        let mut a = Assembler::new(0x2000);
        a.movi(reg::R0, 1);
        a.syscall(3);
        a.movi(reg::R1, 1);
        a.beq(reg::R0, reg::R1, "maybe"); // r0 clobbered by env
        a.halt();
        a.label("maybe");
        a.halt();
        let p = a.finish();
        let g = FlowGraph::build(&p, &[p.entry]);
        let c = analyze(&g, &cfg()).unwrap();
        assert!(c.dead_edges.is_empty());
        // With r0 spared from the clobber set, the branch folds.
        let narrow = AnalysisConfig { env_clobbers: RegSet::single(10), env_taints_memory: true };
        let c2 = analyze(&g, &narrow).unwrap();
        assert_eq!(c2.dead_edges.len(), 1);
    }
}
